//! Error types for the accelerator model.

use std::error::Error;
use std::fmt;

/// Errors returned when building accelerator models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccelError {
    /// The PE configuration does not match the model's layer count.
    ConfigMismatch {
        /// Hidden layers in the model.
        expected: usize,
        /// PE groups in the configuration.
        actual: usize,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::ConfigMismatch { expected, actual } => {
                write!(f, "configuration provides {actual} PE groups for {expected} hidden layers")
            }
        }
    }
}

impl Error for AccelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = AccelError::ConfigMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains("2 PE groups"));
        assert!(e.to_string().contains("3 hidden layers"));
    }
}
