//! Fixed-bucket latency histogram for tail-latency accounting.
//!
//! Serving percentiles (p50/p95/p99/p999) must be computable online —
//! completions arrive from many worker threads and the runtime cannot
//! retain every sample. [`LatencyHistogram`] uses a fixed set of
//! geometrically spaced buckets over microseconds, so recording is O(1),
//! merging is element-wise, and any quantile is a single cumulative walk.
//! Bucket edges grow by ~7.5% per bucket, which bounds the relative error
//! of a reported percentile at one bucket width.

/// Number of buckets: one underflow bucket (`< 1 us`), 254 geometric
/// buckets spanning `[1 us, 100 s)`, and one overflow bucket.
const BUCKETS: usize = 256;

/// Upper edge of the tracked range in microseconds (100 seconds).
const MAX_TRACKED_US: f64 = 1e8;

/// Index of the last geometric bucket (255 is the overflow bucket).
const LAST_GEOMETRIC: usize = BUCKETS - 2;

/// Latency percentiles in microseconds, as read out of a
/// [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
}

/// A fixed-bucket, geometrically spaced latency histogram (microseconds).
///
/// # Examples
///
/// ```
/// use microrec_core::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=1000u32 {
///     h.record_us(f64::from(us));
/// }
/// let p = h.percentiles();
/// assert!((p.p50_us - 500.0).abs() / 500.0 < 0.08, "p50 {}", p.p50_us);
/// assert!(p.p50_us <= p.p99_us && p.p99_us <= p.p999_us);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(us: f64) -> usize {
    if us < 1.0 || us.is_nan() {
        // Negative/NaN inputs also land in the underflow bucket.
        return 0;
    }
    let frac = us.ln() / MAX_TRACKED_US.ln();
    let idx = 1 + (frac * (LAST_GEOMETRIC - 1) as f64) as usize;
    idx.min(BUCKETS - 1)
}

fn bucket_upper_us(idx: usize) -> f64 {
    if idx == 0 {
        1.0
    } else {
        (MAX_TRACKED_US.ln() * idx as f64 / (LAST_GEOMETRIC - 1) as f64).exp()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    /// Records one latency sample, in microseconds.
    pub fn record_us(&mut self, us: f64) {
        let us = if us.is_finite() && us > 0.0 { us } else { 0.0 };
        self.counts[bucket_index(us)] += 1;
        self.total += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records one latency sample from a wall-clock duration.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record_us(d.as_secs_f64() * 1e6);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us / self.total as f64
        }
    }

    /// Largest recorded sample in microseconds (exact, not bucketed).
    #[must_use]
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Smallest recorded sample in microseconds (exact; 0 when empty).
    #[must_use]
    pub fn min_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min_us
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) in microseconds: the upper edge of
    /// the bucket holding the `ceil(q * count)`-th smallest sample,
    /// clamped to the exact observed maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                if idx == BUCKETS - 1 {
                    // Overflow bucket has no upper edge: report the exact
                    // observed maximum.
                    return self.max_us;
                }
                return bucket_upper_us(idx).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The standard serving percentiles (p50/p95/p99/p999).
    #[must_use]
    pub fn percentiles(&self) -> LatencyPercentiles {
        LatencyPercentiles {
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            p999_us: self.quantile_us(0.999),
        }
    }

    /// Adds every sample of `other` into `self` (bucket-wise).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0.0);
        assert_eq!(h.percentiles(), LatencyPercentiles::default());
    }

    #[test]
    fn uniform_samples_quantiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u32 {
            h.record_us(f64::from(us));
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile_us(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.08, "q{q}: got {got}, expect {expect} (rel {rel:.3})");
        }
        assert!((h.mean_us() - 5_000.5).abs() < 1.0);
        assert_eq!(h.max_us(), 10_000.0);
        assert_eq!(h.min_us(), 1.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 0..5_000u32 {
            // Heavy-tailed: mostly fast, occasional slow.
            let us = if i % 100 == 0 { 50_000.0 } else { f64::from(i % 37) + 1.0 };
            h.record_us(us);
        }
        let p = h.percentiles();
        assert!(p.p50_us <= p.p95_us);
        assert!(p.p95_us <= p.p99_us);
        assert!(p.p99_us <= p.p999_us);
        assert!(p.p999_us <= h.max_us() * 1.0 + 1e-9);
        // The tail spike must be visible at p999 but not at p50.
        assert!(p.p999_us > 10_000.0, "p999 {}", p.p999_us);
        assert!(p.p50_us < 100.0, "p50 {}", p.p50_us);
    }

    #[test]
    fn overflow_and_underflow_are_captured() {
        let mut h = LatencyHistogram::new();
        h.record_us(0.25); // underflow bucket
        h.record_us(1e12); // overflow bucket (beyond 100 s)
        h.record_us(-3.0); // nonsense clamps to underflow
        h.record_us(f64::NAN);
        assert_eq!(h.count(), 4);
        assert!(h.quantile_us(1.0) >= 1e12 * 0.9);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1_000u32 {
            let us = f64::from(i * 7 % 977) + 1.0;
            if i % 2 == 0 {
                a.record_us(us);
            } else {
                b.record_us(us);
            }
            whole.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.percentiles(), whole.percentiles());
        assert!((a.mean_us() - whole.mean_us()).abs() < 1e-9);
    }

    #[test]
    fn duration_recording_converts_to_us() {
        let mut h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::from_millis(3));
        assert!((h.mean_us() - 3_000.0).abs() < 1.0);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0usize;
        let mut us = 0.5f64;
        while us < 1e9 {
            let idx = bucket_index(us);
            assert!(idx >= last, "bucket index regressed at {us}");
            assert!(idx < BUCKETS);
            last = idx;
            us *= 1.13;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e12), BUCKETS - 1);
    }
}
