//! Zipf-aware hot-row cache for embedding lookups.
//!
//! Recommendation traffic is heavily skewed — our workload generator
//! produces Zipf(1.05) keys, and at that exponent a small fraction of
//! rows serves most lookups. [`HotRowCache`] exploits this: a
//! fixed-capacity, set-associative cache of **dequantized f32 rows**
//! keyed by `(table, row)`, with CLOCK (second-chance) eviction. Because
//! it stores the exact f32 values the source read would have produced,
//! cache-on output is bit-identical to cache-off by construction — the
//! cache changes where bytes come from, never what they are.
//!
//! All storage is allocated in [`HotRowCache::new`]; `lookup_into` and
//! `insert` are allocation-free, so the steady-state (warm-cache) lookup
//! path performs zero allocations. Per-table hit/miss counters and
//! bytes-moved accounting are maintained inline and surfaced through the
//! serving runtime's stats.

use crate::table::splitmix64;

/// Set-associative CLOCK cache of dequantized embedding rows.
///
/// # Examples
///
/// ```
/// use microrec_embedding::HotRowCache;
///
/// // Two tables of dim 4, room for 8 rows, 4-way sets.
/// let mut cache = HotRowCache::new(&[4, 4], 8, 4);
/// let mut out = [0.0f32; 4];
/// assert!(!cache.lookup_into(0, 17, &mut out)); // cold miss
/// cache.insert(0, 17, &[1.0, 2.0, 3.0, 4.0], 16);
/// assert!(cache.lookup_into(0, 17, &mut out)); // warm hit
/// assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HotRowCache {
    /// Packed `(table << 48) | row` key per slot; [`EMPTY`] marks an
    /// invalid slot (one load per way instead of a separate valid bitmap).
    keys: Vec<u64>,
    refbit: Vec<bool>,
    /// CLOCK hand per set.
    hand: Vec<usize>,
    /// Row data, `max_dim` elements per slot.
    data: Vec<f32>,
    dims: Vec<u32>,
    /// `sets - 1`; sets is a power of two so the set index is a mask, not
    /// a division, on the per-lookup path.
    set_mask: usize,
    ways: usize,
    max_dim: usize,
    hits: Vec<u64>,
    misses: Vec<u64>,
    bytes_from_cache: u64,
    bytes_from_memory: u64,
}

/// Key sentinel for an invalid slot. Unreachable from [`pack_key`] for any
/// real table: it would need table 65535 *and* row 2^48 - 1.
const EMPTY: u64 = u64::MAX;

/// Largest power of two `<= n` (n must be nonzero).
#[inline]
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n > 0);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Packs a `(table, row)` key. Row indices fit 48 bits (the largest
/// production table has 26M rows).
#[inline]
fn pack_key(table: usize, row: u64) -> u64 {
    debug_assert!(row < 1 << 48);
    let key = ((table as u64) << 48) | row;
    debug_assert!(key != EMPTY);
    key
}

impl HotRowCache {
    /// Builds a cache holding up to `rows` dequantized rows for tables of
    /// the given dims, organized as `ways`-associative sets. The set count
    /// is `rows / ways` rounded down to a power of two (minimum one set),
    /// keeping the per-lookup set index a mask rather than a division.
    #[must_use]
    pub fn new(dims: &[u32], rows: usize, ways: usize) -> Self {
        let ways = ways.max(1);
        let sets = prev_power_of_two((rows / ways).max(1));
        let slots = sets * ways;
        let max_dim = dims.iter().copied().max().unwrap_or(0) as usize;
        HotRowCache {
            keys: vec![EMPTY; slots],
            refbit: vec![false; slots],
            hand: vec![0; sets],
            data: vec![0.0; slots * max_dim],
            dims: dims.to_vec(),
            set_mask: sets - 1,
            ways,
            max_dim,
            hits: vec![0; dims.len()],
            misses: vec![0; dims.len()],
            bytes_from_cache: 0,
            bytes_from_memory: 0,
        }
    }

    /// Total row capacity (sets × ways).
    #[must_use]
    pub fn capacity(&self) -> usize {
        (self.set_mask + 1) * self.ways
    }

    /// Set associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        // Deterministic spread of (table, row) keys across sets.
        (splitmix64(key) as usize) & self.set_mask
    }

    /// Looks up `(table, row)`; on a hit copies the cached row into `out`
    /// (first `dim` elements), marks the slot recently used, and counts a
    /// hit. On a miss counts a miss. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range or `out` is shorter than the
    /// table's dim.
    #[inline]
    pub fn lookup_into(&mut self, table: usize, row: u64, out: &mut [f32]) -> bool {
        let dim = self.dims[table] as usize;
        let key = pack_key(table, row);
        let base = self.set_of(key) * self.ways;
        let set_keys = &self.keys[base..base + self.ways];
        if let Some(way) = set_keys.iter().position(|&k| k == key) {
            let slot = base + way;
            self.refbit[slot] = true;
            let start = slot * self.max_dim;
            out[..dim].copy_from_slice(&self.data[start..start + dim]);
            self.hits[table] += 1;
            self.bytes_from_cache += dim as u64 * 4;
            return true;
        }
        self.misses[table] += 1;
        false
    }

    /// Probes one whole lookup round (one row index per table, in table
    /// order) against the cache. Hit rows are copied into their slice of
    /// `out` (concatenated table dims); missing table indices are appended
    /// to `misses` (cleared first) for the caller to read from backing
    /// storage and [`HotRowCache::insert`].
    ///
    /// Identical in observable effect to calling
    /// [`HotRowCache::lookup_into`] per table, but the probe loop carries
    /// no backing-storage work in its shadow, so the CPU overlaps the
    /// per-table cache-line fetches instead of serializing a
    /// probe→read→insert dependency chain on every miss. Allocation-free
    /// when `misses` has capacity for one entry per table.
    ///
    /// # Panics
    ///
    /// Panics if `indices` has more entries than the cache has tables or
    /// `out` is shorter than the summed dims.
    #[inline]
    pub fn probe_round(&mut self, indices: &[u64], out: &mut [f32], misses: &mut Vec<usize>) {
        misses.clear();
        let mut offset = 0usize;
        for (table, &row) in indices.iter().enumerate() {
            let dim = self.dims[table] as usize;
            let key = pack_key(table, row);
            let base = self.set_of(key) * self.ways;
            let set_keys = &self.keys[base..base + self.ways];
            if let Some(way) = set_keys.iter().position(|&k| k == key) {
                let slot = base + way;
                self.refbit[slot] = true;
                let start = slot * self.max_dim;
                out[offset..offset + dim].copy_from_slice(&self.data[start..start + dim]);
                self.hits[table] += 1;
                self.bytes_from_cache += dim as u64 * 4;
            } else {
                self.misses[table] += 1;
                misses.push(table);
            }
            offset += dim;
        }
    }

    /// Inserts a freshly read row, evicting a victim from its set with the
    /// CLOCK second-chance policy. `source_bytes` is what the backing read
    /// moved from memory (row bytes in the arena's storage format) and is
    /// added to the bytes-from-memory counter. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range or `values` is shorter than the
    /// table's dim.
    #[inline]
    pub fn insert(&mut self, table: usize, row: u64, values: &[f32], source_bytes: usize) {
        self.bytes_from_memory += source_bytes as u64;
        let dim = self.dims[table] as usize;
        let key = pack_key(table, row);
        let set = self.set_of(key);
        let base = set * self.ways;
        // CLOCK: prefer an invalid slot, else sweep clearing reference
        // bits; after two sweeps every bit is clear, so this terminates.
        let set_keys = &self.keys[base..base + self.ways];
        let mut victim = set_keys.iter().position(|&k| k == EMPTY).map(|way| base + way);
        if victim.is_none() {
            let mut hand = self.hand[set];
            for _ in 0..2 * self.ways {
                let slot = base + hand;
                hand += 1;
                if hand == self.ways {
                    hand = 0;
                }
                if self.refbit[slot] {
                    self.refbit[slot] = false;
                } else {
                    victim = Some(slot);
                    break;
                }
            }
            self.hand[set] = hand;
        }
        let slot = victim.unwrap_or(base);
        let start = slot * self.max_dim;
        self.data[start..start + dim].copy_from_slice(&values[..dim]);
        self.keys[slot] = key;
        self.refbit[slot] = true;
    }

    /// Invalidates every slot (counters are kept; see
    /// [`HotRowCache::reset_stats`]).
    pub fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = EMPTY);
        self.refbit.iter_mut().for_each(|r| *r = false);
        self.hand.iter_mut().for_each(|h| *h = 0);
    }

    /// Zeroes all hit/miss/bytes counters.
    pub fn reset_stats(&mut self) {
        self.hits.iter_mut().for_each(|h| *h = 0);
        self.misses.iter_mut().for_each(|m| *m = 0);
        self.bytes_from_cache = 0;
        self.bytes_from_memory = 0;
    }

    /// Total hits across tables.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Total misses across tables.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Per-table hit counters, in logical table order.
    #[must_use]
    pub fn per_table_hits(&self) -> &[u64] {
        &self.hits
    }

    /// Per-table miss counters, in logical table order.
    #[must_use]
    pub fn per_table_misses(&self) -> &[u64] {
        &self.misses
    }

    /// Hit fraction over all lookups so far (0 when none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let total = h + self.misses();
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// Bytes served from the cache (dequantized f32 rows).
    #[must_use]
    pub fn bytes_from_cache(&self) -> u64 {
        self.bytes_from_cache
    }

    /// Bytes moved from backing memory on misses (storage-format rows).
    #[must_use]
    pub fn bytes_from_memory(&self) -> u64 {
        self.bytes_from_memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32, dim: usize) -> Vec<f32> {
        (0..dim).map(|i| v + i as f32).collect()
    }

    #[test]
    fn hit_returns_inserted_values_exactly() {
        let mut c = HotRowCache::new(&[8, 4], 16, 4);
        c.insert(0, 3, &row(1.0, 8), 32);
        c.insert(1, 3, &row(9.0, 4), 16);
        let mut out = [0.0f32; 8];
        assert!(c.lookup_into(0, 3, &mut out));
        assert_eq!(&out[..], &row(1.0, 8)[..]);
        assert!(c.lookup_into(1, 3, &mut out[..4]));
        assert_eq!(&out[..4], &row(9.0, 4)[..]);
        // Same row index in different tables are distinct keys.
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn counters_and_bytes_account_per_table() {
        let mut c = HotRowCache::new(&[8, 4], 16, 4);
        let mut out = [0.0f32; 8];
        assert!(!c.lookup_into(0, 1, &mut out));
        c.insert(0, 1, &row(0.5, 8), 16); // e.g. f16 source row
        assert!(c.lookup_into(0, 1, &mut out));
        assert!(c.lookup_into(0, 1, &mut out));
        assert!(!c.lookup_into(1, 1, &mut out[..4]));
        assert_eq!(c.per_table_hits(), &[2, 0]);
        assert_eq!(c.per_table_misses(), &[1, 1]);
        assert_eq!(c.bytes_from_cache(), 64); // 2 hits x 8 elems x 4 bytes
        assert_eq!(c.bytes_from_memory(), 16);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.bytes_from_cache(), 0);
    }

    #[test]
    fn clock_gives_referenced_rows_a_second_chance() {
        // One set, 2 ways: fill with A and B, touch A, insert C.
        // CLOCK must evict B (refbit clear) and keep A.
        let mut c = HotRowCache::new(&[2], 2, 2);
        assert_eq!(c.capacity(), 2);
        // Find three rows that map to the single set (sets == 1, so all do).
        c.insert(0, 10, &[1.0, 1.0], 8);
        c.insert(0, 11, &[2.0, 2.0], 8);
        let mut out = [0.0f32; 2];
        // Inserts set refbits; sweep will clear both, then evict at the
        // hand. Touch row 10 AFTER a full sweep to test second chance:
        c.insert(0, 12, &[3.0, 3.0], 8); // clears both refbits, evicts slot 0
                                         // Exactly one of 10/11 was evicted; the survivor + 12 are present.
        let present: Vec<u64> =
            [10u64, 11, 12].iter().copied().filter(|&r| c.lookup_into(0, r, &mut out)).collect();
        assert_eq!(present.len(), 2);
        assert!(present.contains(&12));
        // Now touch the survivor (refbit set), insert another row: the
        // survivor must survive again, 12 (untouched... but just looked
        // up) — make it deterministic: lookups above set refbits on both.
        // Clear state and test the pure second-chance sequence instead.
        let mut c = HotRowCache::new(&[2], 2, 2);
        c.insert(0, 10, &[1.0, 1.0], 8);
        c.insert(0, 11, &[2.0, 2.0], 8);
        // Sweep 1 (insert 12): both refbits set -> cleared; evicts at hand
        // wrap; 12 lands with refbit set.
        c.insert(0, 12, &[3.0, 3.0], 8);
        // Touch 12, then insert 13: the non-12 slot has refbit clear and
        // must be the victim; 12 survives.
        assert!(c.lookup_into(0, 12, &mut out));
        c.insert(0, 13, &[4.0, 4.0], 8);
        assert!(c.lookup_into(0, 12, &mut out), "recently used row evicted");
        assert!(c.lookup_into(0, 13, &mut out));
    }

    #[test]
    fn associativity_isolates_sets() {
        // Many sets: rows landing in different sets never evict each other.
        let mut c = HotRowCache::new(&[4], 64, 4);
        let mut out = [0.0f32; 4];
        for r in 0..16u64 {
            c.insert(0, r, &row(r as f32, 4), 16);
        }
        let resident = (0..16u64).filter(|&r| c.lookup_into(0, r, &mut out)).count();
        assert_eq!(resident, 16, "64-row cache must hold 16 distinct rows");
    }

    #[test]
    fn eviction_is_deterministic() {
        let ops: Vec<u64> = (0..200).map(|i| splitmix64(i) % 40).collect();
        let run = || {
            let mut c = HotRowCache::new(&[4], 8, 2);
            let mut out = [0.0f32; 4];
            for &r in &ops {
                if !c.lookup_into(0, r, &mut out) {
                    c.insert(0, r, &row(r as f32, 4), 16);
                }
            }
            (c.hits(), c.misses(), c.bytes_from_cache(), c.bytes_from_memory())
        };
        assert_eq!(run(), run());
        let (hits, misses, _, _) = run();
        assert_eq!(hits + misses, 200);
        assert!(hits > 0, "a 40-row key space over 200 ops must re-hit");
    }

    #[test]
    fn probe_round_matches_per_row_lookups() {
        // Drive the same trace through probe_round and through per-row
        // lookup_into/insert on a twin cache: output values must agree
        // bit-exactly every round. Counters may differ — probe-then-insert
        // reorders probes relative to inserts within a round, and sets are
        // shared across tables, so an insert can evict a row the per-row
        // order would still have hit — but each twin must stay internally
        // consistent (hits + misses == lookups, per table and in total).
        let dims = [4u32, 2, 4];
        let rows = |t: usize, r: u64| row((t * 100) as f32 + r as f32, dims[t] as usize);
        let trace: Vec<Vec<u64>> =
            (0..50u64).map(|i| vec![splitmix64(i) % 9, splitmix64(i + 99) % 9, i % 3]).collect();

        let mut batched = HotRowCache::new(&dims, 16, 4);
        let mut per_row = HotRowCache::new(&dims, 16, 4);
        let mut misses = Vec::with_capacity(dims.len());
        let mut out_a = [0.0f32; 10];
        let mut out_b = [0.0f32; 10];
        let offsets = [0usize, 4, 6];
        for q in &trace {
            batched.probe_round(q, &mut out_a, &mut misses);
            for &t in &misses {
                let dim = dims[t] as usize;
                let values = rows(t, q[t]);
                out_a[offsets[t]..offsets[t] + dim].copy_from_slice(&values);
                batched.insert(t, q[t], &values, dim * 4);
            }
            for (t, &r) in q.iter().enumerate() {
                let dim = dims[t] as usize;
                let slot = &mut out_b[offsets[t]..offsets[t] + dim];
                if !per_row.lookup_into(t, r, slot) {
                    slot.copy_from_slice(&rows(t, r));
                    per_row.insert(t, r, slot, dim * 4);
                }
            }
            assert_eq!(out_a, out_b);
        }
        let rounds = trace.len() as u64;
        for c in [&batched, &per_row] {
            for t in 0..dims.len() {
                assert_eq!(c.per_table_hits()[t] + c.per_table_misses()[t], rounds);
            }
            assert_eq!(c.hits() + c.misses(), rounds * dims.len() as u64);
            assert!(c.hits() > 0 && c.misses() > 0);
        }
    }

    #[test]
    fn tiny_capacity_still_works() {
        let mut c = HotRowCache::new(&[4], 0, 8);
        // Rounds up to one set of 8 ways.
        assert_eq!(c.capacity(), 8);
        c.insert(0, 1, &row(1.0, 4), 16);
        let mut out = [0.0f32; 4];
        assert!(c.lookup_into(0, 1, &mut out));
    }
}
