//! Dense (fully connected) layers.

use microrec_rng::Rng;

use crate::error::DnnError;
use crate::fixed::FixedNum;
use crate::gemm::gemv;
use crate::tensor::Matrix;

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (used on the final CTR neuron).
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[must_use]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Activation::Identity => v,
        }
    }
}

/// One fully connected layer: `y = act(W x + b)`.
///
/// The weights are stored in `f32`; quantized forward passes convert on the
/// fly (matching the accelerator, which keeps a quantized copy of the same
/// master weights in on-chip memory).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `bias.len() !=
    /// weights.rows()`.
    pub fn new(weights: Matrix, bias: Vec<f32>, activation: Activation) -> Result<Self, DnnError> {
        if bias.len() != weights.rows() {
            return Err(DnnError::ShapeMismatch {
                context: "DenseLayer bias",
                expected: weights.rows(),
                actual: bias.len(),
            });
        }
        Ok(DenseLayer { weights, bias, activation })
    }

    /// Creates a layer with Xavier-uniform weights from a deterministic
    /// seed.
    #[must_use]
    pub fn xavier(input: usize, output: usize, activation: Activation, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let bound = (6.0 / (input + output) as f32).sqrt();
        let weights = Matrix::from_fn(output, input, |_, _| rng.gen_range_f32(-bound, bound));
        let bias = (0..output).map(|_| rng.gen_range_f32(-0.01, 0.01)).collect();
        DenseLayer { weights, bias, activation }
    }

    /// Input width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix (`output × input`).
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// The activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Multiply–accumulate operations per forward item.
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.weights.rows() as u64 * self.weights.cols() as u64
    }

    /// Forward pass at precision `T`.
    ///
    /// The matrix–vector product and bias-add run in `T`; activations are
    /// evaluated in `f32` and re-quantized, matching an FPGA datapath with a
    /// piecewise activation unit.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for wrong buffer sizes.
    pub fn forward<T: FixedNum>(&self, input: &[T], output: &mut [T]) -> Result<(), DnnError> {
        gemv(&self.weights, input, output)?;
        for (slot, &b) in output.iter_mut().zip(&self.bias) {
            let pre = *slot + T::from_f32(b);
            *slot = match self.activation {
                Activation::Relu => pre.relu(),
                Activation::Identity => pre,
                Activation::Sigmoid => T::from_f32(Activation::Sigmoid.apply(pre.to_f32())),
            };
        }
        Ok(())
    }

    /// Convenience allocating forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for a wrong input size.
    pub fn forward_vec<T: FixedNum>(&self, input: &[T]) -> Result<Vec<T>, DnnError> {
        let mut out = vec![T::ZERO; self.output_dim()];
        self.forward(input, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Q32;

    #[test]
    fn activation_math() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Identity.apply(-2.0), -2.0);
        let s = Activation::Sigmoid.apply(0.0);
        assert!((s - 0.5).abs() < 1e-6);
        assert!(Activation::Sigmoid.apply(10.0) > 0.999);
    }

    #[test]
    fn forward_computes_wx_plus_b() {
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let layer = DenseLayer::new(w, vec![0.5, -20.0], Activation::Relu).unwrap();
        let out = layer.forward_vec(&[1.0f32, 1.0]).unwrap();
        assert_eq!(out, vec![3.5, 0.0]);
    }

    #[test]
    fn bias_shape_checked() {
        let w = Matrix::zeros(2, 2);
        assert!(DenseLayer::new(w, vec![0.0; 3], Activation::Identity).is_err());
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = DenseLayer::xavier(64, 32, Activation::Relu, 7);
        let b = DenseLayer::xavier(64, 32, Activation::Relu, 7);
        let c = DenseLayer::xavier(64, 32, Activation::Relu, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let bound = (6.0 / 96.0f32).sqrt();
        assert!(a.weights().max_abs() <= bound);
        assert_eq!(a.input_dim(), 64);
        assert_eq!(a.output_dim(), 32);
        assert_eq!(a.flops(), 2 * 64 * 32);
    }

    #[test]
    fn quantized_forward_tracks_f32() {
        let layer = DenseLayer::xavier(32, 16, Activation::Relu, 42);
        let x_f: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.7).sin() * 0.8).collect();
        let y_f = layer.forward_vec(&x_f).unwrap();
        let x_q: Vec<Q32> = x_f.iter().map(|&v| Q32::from_f32(v)).collect();
        let y_q = layer.forward_vec(&x_q).unwrap();
        for (f, q) in y_f.iter().zip(&y_q) {
            assert!((f - q.to_f32()).abs() < 1e-2);
        }
    }

    #[test]
    fn sigmoid_layer_outputs_probability() {
        let layer = DenseLayer::xavier(8, 1, Activation::Sigmoid, 3);
        let out = layer.forward_vec(&[0.5f32; 8]).unwrap();
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }
}
