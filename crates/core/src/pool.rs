//! A thread-safe engine pool for concurrent query serving.
//!
//! The functional [`MicroRec`] engine is stateful (memory statistics,
//! row-buffer state), so it takes `&mut self` per prediction. A serving
//! host wants many request threads; [`EnginePool`] holds N engine replicas
//! behind mutexes and hands each caller an *uncontended* one: dispatch
//! first try-locks every replica (starting from a rotating hint so load
//! spreads evenly) and only blocks when all replicas are busy. Batches are
//! sharded across replicas so a single caller drives the whole pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use microrec_embedding::{ModelSpec, Precision};

use crate::engine::{MicroRec, MicroRecBuilder};
use crate::error::MicroRecError;
use crate::sync::lock_or_recover;

/// A pool of identical engines for multi-threaded prediction.
///
/// # Examples
///
/// ```
/// use microrec_core::EnginePool;
/// use microrec_embedding::{ModelSpec, Precision};
///
/// let pool = EnginePool::build(ModelSpec::dlrm_rmc2(4, 4), Precision::Fixed32, 2, 7)?;
/// let ctr = pool.predict(&vec![3u64; 16])?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
#[derive(Debug)]
pub struct EnginePool {
    engines: Vec<Mutex<MicroRec>>,
    next: AtomicUsize,
}

impl EnginePool {
    /// Builds `replicas` identical engines (same seed: identical tables and
    /// weights, so every replica answers every query identically).
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the engine cannot be built.
    pub fn build(
        model: ModelSpec,
        precision: Precision,
        replicas: usize,
        seed: u64,
    ) -> Result<Self, MicroRecError> {
        Self::from_builder(MicroRecBuilder::new(model).precision(precision).seed(seed), replicas)
    }

    /// Builds `replicas` identical engines from one configured builder.
    /// When the builder enables an embedding arena, it is materialized
    /// once and shared read-only (`Arc`) across all replicas, so pool
    /// memory no longer scales with the worker count.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the engine cannot be built.
    pub fn from_builder(
        mut builder: MicroRecBuilder,
        replicas: usize,
    ) -> Result<Self, MicroRecError> {
        let replicas = replicas.max(1);
        builder.prepare_shared_arena()?;
        let mut engines = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            engines.push(Mutex::new(builder.clone().build()?));
        }
        Ok(EnginePool { engines, next: AtomicUsize::new(0) })
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    /// Acquires an uncontended replica if any is free (work stealing),
    /// falling back to a blocking lock on the rotation hint otherwise.
    fn acquire(&self) -> MutexGuard<'_, MicroRec> {
        let start = self.next.fetch_add(1, Ordering::Relaxed) % self.engines.len();
        for probe in 0..self.engines.len() {
            let idx = (start + probe) % self.engines.len();
            match self.engines[idx].try_lock() {
                Ok(guard) => return guard,
                Err(std::sync::TryLockError::Poisoned(poisoned)) => return poisoned.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {}
            }
        }
        // All replicas busy: queue on the hinted one. Engine state stays
        // consistent per query, so a replica poisoned by a panicked caller
        // is recovered rather than retired.
        lock_or_recover(&self.engines[start])
    }

    /// Predicts a CTR on the first uncontended replica (try-lock scan),
    /// blocking only when every replica is busy.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict(&self, query: &[u64]) -> Result<f32, MicroRecError> {
        self.acquire().predict(query)
    }

    /// Predicts a batch by sharding it into contiguous per-replica chunks
    /// served in parallel, each through the engine's batched fast path.
    /// Results come back in query order and are bit-identical to
    /// [`EnginePool::predict`] called per item.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict_batch(&self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // Tiny batches (≤ one query per replica) would shard into
        // single-query chunks and pay a thread spawn per item; one
        // replica's batched fast path beats that.
        if queries.len() <= self.engines.len() {
            // lint: allow(blocking-under-lock) a tiered engine's prefetch workers block in their own threads on their own rings, never under this replica's guard
            return self.acquire().predict_batch(queries);
        }
        let shards = microrec_par::par_chunks(queries.len(), self.engines.len(), |_, range| {
            // lint: allow(blocking-under-lock) same thread-boundary chain as above: the spawned prefetch loop owns its rings
            self.acquire().predict_batch(&queries[range])
        });
        let mut out = Vec::with_capacity(queries.len());
        for shard in shards {
            out.extend(shard?);
        }
        Ok(out)
    }

    /// Total simulated memory reads across all replicas.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.engines.iter().map(|e| lock_or_recover(e).memory().stats().total().reads).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pool() -> Arc<EnginePool> {
        Arc::new(EnginePool::build(ModelSpec::dlrm_rmc2(4, 8), Precision::Fixed32, 3, 5).unwrap())
    }

    #[test]
    fn replicas_answer_identically() {
        let p = pool();
        let q = vec![123u64; 16];
        // Dispatch rotates through all replicas; answers must agree.
        let first = p.predict(&q).unwrap();
        for _ in 0..5 {
            assert_eq!(p.predict(&q).unwrap(), first);
        }
    }

    #[test]
    fn concurrent_prediction_from_many_threads() {
        let p = pool();
        let queries_per_thread = 50;
        let threads = 8;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let p = Arc::clone(&p);
                handles.push(scope.spawn(move || {
                    for k in 0..queries_per_thread {
                        let q: Vec<u64> =
                            (0..16).map(|j| ((t * 97 + k * 13 + j) % 500_000) as u64).collect();
                        let ctr = p.predict(&q).unwrap();
                        assert!(ctr > 0.0 && ctr < 1.0);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        // Every query drove 4 physical reads x 4 rounds.
        assert_eq!(p.total_reads(), (threads * queries_per_thread * 16) as u64);
    }

    #[test]
    fn poisoned_replica_keeps_serving() {
        // A request thread that panics while holding a replica must not
        // retire that replica: the next caller recovers the lock and the
        // engine still answers bit-identically to its siblings.
        let p = EnginePool::build(ModelSpec::dlrm_rmc2(4, 4), Precision::Fixed32, 1, 5).unwrap();
        let q = vec![9u64; 16];
        let expected = p.predict(&q).unwrap();
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = p.engines[0].lock().unwrap();
                    panic!("request thread dies holding the only replica");
                })
                .join()
        });
        assert!(p.engines[0].is_poisoned(), "the panic must have poisoned the replica");
        assert_eq!(p.predict(&q).unwrap().to_bits(), expected.to_bits());
        assert!(p.total_reads() > 0, "stats remain readable through the poisoned lock");
    }

    #[test]
    fn pool_of_one_still_works() {
        let p = EnginePool::build(ModelSpec::dlrm_rmc2(4, 4), Precision::Fixed16, 0, 1).unwrap();
        assert_eq!(p.replicas(), 1, "replicas clamp to >= 1");
        let out = p.predict_batch(&vec![vec![0u64; 16]; 4]).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn contended_mixed_traffic_stays_bit_identical() {
        // Many threads hammer the pool with interleaved single and batched
        // requests; every answer must match the uncontended ground truth.
        let p = pool();
        let queries: Vec<Vec<u64>> = (0..32)
            .map(|i| (0..16).map(|j| ((i * 131 + j * 17) % 500_000) as u64).collect())
            .collect();
        let expected: Vec<u32> = queries.iter().map(|q| p.predict(q).unwrap().to_bits()).collect();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let p = Arc::clone(&p);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..10 {
                        if (t + round) % 2 == 0 {
                            let got = p.predict_batch(queries).unwrap();
                            for (g, e) in got.iter().zip(expected) {
                                assert_eq!(g.to_bits(), *e);
                            }
                        } else {
                            for (q, e) in queries.iter().zip(expected) {
                                assert_eq!(p.predict(q).unwrap().to_bits(), *e);
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn tiny_batches_below_replica_count_stay_correct() {
        // Regression: batch < replicas must not shard into degenerate
        // chunks — every size from empty through replicas+1 must match
        // item-by-item results bit for bit.
        let p = pool();
        assert!(p.predict_batch(&[]).unwrap().is_empty());
        for batch in 1..=p.replicas() + 1 {
            let queries: Vec<Vec<u64>> = (0..batch)
                .map(|i| (0..16).map(|j| ((i * 53 + j * 19) % 500_000) as u64).collect())
                .collect();
            let singles: Vec<f32> = queries.iter().map(|q| p.predict(q).unwrap()).collect();
            let batched = p.predict_batch(&queries).unwrap();
            assert_eq!(batched.len(), batch);
            for (i, (b, s)) in batched.iter().zip(&singles).enumerate() {
                assert_eq!(b.to_bits(), s.to_bits(), "batch {batch} item {i}");
            }
        }
    }

    #[test]
    fn pool_replicas_share_one_arena() {
        use microrec_embedding::RowFormat;
        // Pre-warmed replicas must not scale arena memory with worker
        // count: every replica holds the same Arc allocation.
        let builder = MicroRecBuilder::new(ModelSpec::dlrm_rmc2(4, 8))
            .precision(Precision::Fixed16)
            .seed(5)
            .embedding_arena(RowFormat::F16)
            .hot_row_cache(64);
        let p = EnginePool::from_builder(builder, 4).unwrap();
        let arenas: Vec<_> = p
            .engines
            .iter()
            .map(|e| Arc::clone(lock_or_recover(e).arena().expect("arena configured")))
            .collect();
        for other in &arenas[1..] {
            assert!(Arc::ptr_eq(&arenas[0], other), "replica built a private arena copy");
        }
        // 4 replicas + the 4 guards above = 8 strong refs, one allocation.
        assert_eq!(Arc::strong_count(&arenas[0]), 8);
        // The pool still predicts identically across replicas.
        let q = vec![7u64; 16];
        let first = p.predict(&q).unwrap();
        for _ in 0..4 {
            assert_eq!(p.predict(&q).unwrap().to_bits(), first.to_bits());
        }
    }

    #[test]
    fn every_replica_observes_a_published_generation() {
        use crate::epoch::{ArenaGeneration, GenerationCell};
        use microrec_embedding::RowFormat;
        // A generation published through the epoch cell must reach every
        // pooled replica at its next prediction — and change no bits.
        let mut builder = MicroRecBuilder::new(ModelSpec::dlrm_rmc2(4, 8))
            .precision(Precision::Fixed16)
            .seed(5)
            .embedding_arena(RowFormat::F16);
        builder.prepare_shared_arena().unwrap();
        let arena = Arc::clone(builder.shared_arena_handle().unwrap());
        let cell = GenerationCell::new(ArenaGeneration::from_arena(Arc::clone(&arena)));
        let p = EnginePool::from_builder(builder.epoch_cell(Arc::clone(&cell)), 3).unwrap();

        let queries: Vec<Vec<u64>> = (0..12)
            .map(|i| (0..16).map(|j| ((i * 211 + j * 37) % 500_000) as u64).collect())
            .collect();
        let expected: Vec<u32> =
            queries.iter().map(|q| p.predict(q).unwrap().to_bits()).collect();

        // Re-shard the shared arena onto a different channel layout and
        // publish it as generation 1.
        let channels: Vec<usize> = (0..arena.num_tables()).map(|i| (i + 1) % 2).collect();
        let rebuilt = arena.rebuild_with_channels(&channels, 1).unwrap();
        cell.publish(ArenaGeneration::from_arena(Arc::new(rebuilt)));

        // Drive each replica directly: all of them adopt, bits unchanged.
        for engine in &p.engines {
            let mut guard = lock_or_recover(engine);
            for (q, e) in queries.iter().zip(&expected) {
                assert_eq!(guard.predict(q).unwrap().to_bits(), *e, "bits changed across swap");
            }
            assert_eq!(guard.store_generation(), 1, "replica missed the published generation");
        }
        // The sharded batch path sees the same generation and bits.
        let batched = p.predict_batch(&queries).unwrap();
        for (b, e) in batched.iter().zip(&expected) {
            assert_eq!(b.to_bits(), *e);
        }
    }

    #[test]
    fn sharded_batch_matches_item_by_item() {
        let p = pool();
        let queries: Vec<Vec<u64>> = (0..23)
            .map(|i| (0..16).map(|j| ((i * 31 + j * 7) % 500_000) as u64).collect())
            .collect();
        let singles: Vec<f32> = queries.iter().map(|q| p.predict(q).unwrap()).collect();
        let batched = p.predict_batch(&queries).unwrap();
        assert_eq!(batched.len(), singles.len());
        for (b, s) in batched.iter().zip(&singles) {
            assert_eq!(b.to_bits(), s.to_bits(), "batch result drifted");
        }
    }
}
