//! Bank allocation: heuristic rule 4 plus balanced DRAM assignment.
//!
//! Given the physical tables produced by a merge plan, the allocator
//!
//! 1. caches the smallest tables on chip (rule 4), subject to bank capacity
//!    and to the co-location constraint that a bank's serialized lookups
//!    must not exceed the time of one off-chip access (otherwise caching is
//!    "meaningless", §3.4.2);
//! 2. spreads the remaining tables over the DRAM channels, balancing the
//!    *number of tables per channel* — the paper's "DRAM access rounds"
//!    model of §3.3, where a channel holding two tables takes two rounds;
//! 3. optionally *replicates* tables across idle channels when the model
//!    looks tables up several times per inference (DLRM-RMC2's 4 lookups),
//!    which is how 32 lookups over 8 tables can still finish in one HBM
//!    round (Table 5).
//!
//! Two DRAM strategies are provided. [`AllocStrategy::RoundRobin`] balances
//! table counts (largest tables first, highest-capacity channels first) and
//! reproduces the paper's reported round structure and latency ratios.
//! [`AllocStrategy::Lpt`] balances per-channel *time* instead
//! (longest-processing-time-first), a natural alternative evaluated in the
//! ablation benches — it produces flatter channel times but can mask the
//! benefit of merging when a giant-table channel dominates.

use std::collections::BTreeMap;

use microrec_embedding::{cartesian, MergePlan, ModelSpec, Precision, TableSpec};
use microrec_memsim::{BankId, MemoryConfig, SimTime};

use crate::error::PlacementError;
use crate::plan::{PlacedTable, Plan};
use crate::traffic::TrafficProfile;

/// Builds the physical table specs for `model` under `merge`, in catalog
/// order (merged groups first, then unmerged singles in logical order).
///
/// # Errors
///
/// Returns an error if the merge plan does not fit the model or a product
/// overflows.
pub fn physical_specs(
    model: &ModelSpec,
    merge: &MergePlan,
) -> Result<Vec<(TableSpec, Vec<usize>)>, PlacementError> {
    merge.validate(model.num_tables())?;
    let mut in_group = vec![false; model.num_tables()];
    let mut out = Vec::new();
    for group in &merge.groups {
        let members: Vec<&TableSpec> = group.iter().map(|&i| &model.tables[i]).collect();
        let spec = cartesian::product_spec(&members)?;
        for &i in group {
            in_group[i] = true;
        }
        out.push((spec, group.clone()));
    }
    for (i, spec) in model.tables.iter().enumerate() {
        if !in_group[i] {
            out.push((spec.clone(), vec![i]));
        }
    }
    Ok(out)
}

/// How remaining tables are spread over the DRAM channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocStrategy {
    /// Balance the table *count* per channel (largest tables first,
    /// largest-capacity channels first). This is the paper's rounds model
    /// and the default.
    #[default]
    RoundRobin,
    /// Balance the per-channel *time* (longest-processing-time-first
    /// makespan greedy). Ablation alternative.
    Lpt,
}

/// Mutable state of one bank during allocation.
#[derive(Debug, Clone)]
struct BankState {
    id: BankId,
    capacity: u64,
    free: u64,
    serial: SimTime,
    count: u32,
    reads: u32,
}

/// Allocates the physical tables of (`model`, `merge`) onto `config` using
/// the default [`AllocStrategy::RoundRobin`].
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] if some table fits no bank.
pub fn allocate(
    model: &ModelSpec,
    merge: &MergePlan,
    config: &MemoryConfig,
    precision: Precision,
) -> Result<Plan, PlacementError> {
    allocate_with(model, merge, config, precision, AllocStrategy::RoundRobin)
}

/// Allocates with an explicit DRAM strategy.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] if some table fits no bank.
pub fn allocate_with(
    model: &ModelSpec,
    merge: &MergePlan,
    config: &MemoryConfig,
    precision: Precision,
    strategy: AllocStrategy,
) -> Result<Plan, PlacementError> {
    allocate_with_traffic(model, merge, config, precision, strategy, &TrafficProfile::uniform())
}

/// Allocates with the DRAM assignment *order* driven by an observed
/// [`TrafficProfile`]: the hottest tables (weighted access time) are
/// placed first, so the count-balancing strategies spread them across
/// distinct channels before cold tables fill in around them. Under a
/// uniform profile this is bit-identical to [`allocate_with`] (the
/// original size-ordered placement), which keeps the default path and
/// every recorded Table 3 structure unchanged.
///
/// Residency decisions (rule-4 on-chip caching, phase-3 replication) stay
/// structural: traffic only reorders the channel assignment, which is the
/// one decision an online re-shard can revisit without rebuilding tables.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] if some table fits no bank.
pub fn allocate_with_traffic(
    model: &ModelSpec,
    merge: &MergePlan,
    config: &MemoryConfig,
    precision: Precision,
    strategy: AllocStrategy,
    profile: &TrafficProfile,
) -> Result<Plan, PlacementError> {
    let specs = physical_specs(model, merge)?;
    let lookups = model.lookups_per_table;

    let new_state = |b: &microrec_memsim::BankSpec| BankState {
        id: b.id,
        capacity: b.capacity,
        free: b.capacity,
        serial: SimTime::ZERO,
        count: 0,
        reads: 0,
    };
    let mut onchip: Vec<BankState> =
        config.banks.iter().filter(|b| b.id.kind.is_on_chip()).map(new_state).collect();
    let mut dram: Vec<BankState> =
        config.banks.iter().filter(|b| b.id.kind.is_dram()).map(new_state).collect();
    if dram.is_empty() {
        return Err(PlacementError::Infeasible("configuration has no DRAM banks".into()));
    }

    // Rule-4 latency cap: co-located on-chip lookups must not exceed one
    // off-chip access of the largest row this model reads from DRAM.
    let max_row_bytes = specs.iter().map(|(s, _)| s.row_bytes(precision)).max().unwrap_or(4);
    let offchip_access = config
        .banks
        .iter()
        .filter(|b| b.id.kind.is_dram())
        .map(|b| b.timing.access_time(max_row_bytes))
        .min()
        .unwrap_or(SimTime::ZERO);

    // Phase 1 — on-chip caching, smallest tables first.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| (specs[i].0.bytes(precision), i));
    let mut assignment: Vec<Option<Vec<BankId>>> = vec![None; specs.len()];
    for &i in &order {
        let (spec, _) = &specs[i];
        let bytes = spec.bytes(precision);
        let read = lookup_time_on(config, spec, precision, lookups);
        // Best-fit: the fullest on-chip bank that still satisfies both
        // rule-4 constraints.
        let candidate = onchip
            .iter_mut()
            .filter(|b| b.free >= bytes)
            .filter(|b| {
                let t = config.bank_spec(b.id).expect("bank from config").timing.clone();
                b.serial + t.access_time(spec.row_bytes(precision)) * u64::from(lookups)
                    <= offchip_access
            })
            .min_by_key(|b| b.free);
        if let Some(bank) = candidate {
            bank.free -= bytes;
            bank.serial += read;
            bank.reads += lookups;
            assignment[i] = Some(vec![bank.id]);
        }
    }

    // Phase 2 — spread everything still unplaced over the DRAM channels,
    // largest access first. With an observed traffic profile the order key
    // becomes the *weighted* access time (access × mean member count), so
    // the hottest tables claim distinct channels before cold tables pile
    // onto them; a uniform profile reproduces the size order exactly.
    let weighted = !profile.is_uniform();
    let mut remaining: Vec<usize> = (0..specs.len()).filter(|&i| assignment[i].is_none()).collect();
    remaining.sort_by(|&a, &b| {
        let ta = dram_access_estimate(config, &specs[a].0, precision) * u64::from(lookups);
        let tb = dram_access_estimate(config, &specs[b].0, precision) * u64::from(lookups);
        if weighted {
            // Hotness ∝ ta · (Σ member counts / |members|); compared by
            // cross-multiplication so no precision is lost.
            let wa: u128 = specs[a].1.iter().map(|&m| u128::from(profile.count(m))).sum();
            let wb: u128 = specs[b].1.iter().map(|&m| u128::from(profile.count(m))).sum();
            let ka = u128::from(ta.as_ps()) * wa * specs[b].1.len() as u128;
            let kb = u128::from(tb.as_ps()) * wb * specs[a].1.len() as u128;
            kb.cmp(&ka)
                .then_with(|| tb.cmp(&ta))
                .then_with(|| specs[b].0.bytes(precision).cmp(&specs[a].0.bytes(precision)))
        } else {
            tb.cmp(&ta).then_with(|| specs[b].0.bytes(precision).cmp(&specs[a].0.bytes(precision)))
        }
    });
    for &i in &remaining {
        let (spec, _) = &specs[i];
        let bytes = spec.bytes(precision);
        let row_bytes = spec.row_bytes(precision);
        let fits = dram.iter_mut().filter(|b| b.free >= bytes);
        let best = match strategy {
            // Fewest tables so far; ties go to the largest channel (the DDR
            // channels absorb the giant tables first), then lowest id.
            AllocStrategy::RoundRobin => {
                fits.min_by_key(|b| (b.count, u64::MAX - b.capacity, b.id))
            }
            // Smallest resulting serial time.
            AllocStrategy::Lpt => fits.min_by_key(|b| {
                let t = &config.bank_spec(b.id).expect("bank from config").timing;
                (b.serial + t.access_time(row_bytes) * u64::from(lookups), b.id)
            }),
        }
        .ok_or_else(|| {
            PlacementError::Infeasible(format!(
                "table `{}` ({} bytes) fits no DRAM bank",
                spec.name, bytes
            ))
        })?;
        let t = &config.bank_spec(best.id).expect("bank from config").timing;
        best.free -= bytes;
        best.serial += t.access_time(row_bytes) * u64::from(lookups);
        best.count += 1;
        best.reads += lookups;
        assignment[i] = Some(vec![best.id]);
    }

    let mut plan = Plan {
        model_name: model.name.clone(),
        merge: merge.clone(),
        placed: specs
            .iter()
            .zip(assignment)
            .map(|((spec, members), banks)| PlacedTable {
                spec: spec.clone(),
                members: members.clone(),
                banks: banks.expect("every table assigned"),
            })
            .collect(),
        precision,
    };

    // Phase 3 — replication for multi-lookup models.
    if lookups > 1 {
        replicate_hot_tables(&mut plan, model, config);
    }
    Ok(plan)
}

/// Lookup time for `lookups` reads of `spec` from its cheapest on-chip bank
/// (used only for the rule-4 accounting above).
fn lookup_time_on(
    config: &MemoryConfig,
    spec: &TableSpec,
    precision: Precision,
    lookups: u32,
) -> SimTime {
    config
        .banks
        .iter()
        .filter(|b| b.id.kind.is_on_chip())
        .map(|b| b.timing.access_time(spec.row_bytes(precision)))
        .min()
        .unwrap_or(SimTime::ZERO)
        * u64::from(lookups)
}

/// One DRAM access of `spec` on the fastest DRAM technology available.
fn dram_access_estimate(config: &MemoryConfig, spec: &TableSpec, precision: Precision) -> SimTime {
    config
        .banks
        .iter()
        .filter(|b| b.id.kind.is_dram())
        .map(|b| b.timing.access_time(spec.row_bytes(precision)))
        .min()
        .unwrap_or(SimTime::ZERO)
}

/// Replicates DRAM-resident tables across idle channels so the
/// `lookups_per_table` reads of each table spread out, lowering the
/// per-bank read count ("rounds") globally.
///
/// Works level by level: while every DRAM table needs `M > 1` serialized
/// reads per replica, grow each table's replica set to `ceil(L / (M-1))`
/// copies — replicating *all* tables together, since lowering one table's
/// reads cannot improve the bottleneck while siblings still take `M`. The
/// pass keeps whichever of (original, replicated) plan costs less.
fn replicate_hot_tables(plan: &mut Plan, model: &ModelSpec, config: &MemoryConfig) {
    let lookups = u64::from(model.lookups_per_table);
    let original = plan.clone();
    let before = original.cost(config, model.lookups_per_table);

    // Free bytes per DRAM bank, and tables assigned per bank, under the
    // current plan.
    let mut free: BTreeMap<BankId, u64> =
        config.banks.iter().filter(|b| b.id.kind.is_dram()).map(|b| (b.id, b.capacity)).collect();
    let mut load: BTreeMap<BankId, u32> = free.keys().map(|&id| (id, 0)).collect();
    for t in &plan.placed {
        for &b in &t.banks {
            if let Some(f) = free.get_mut(&b) {
                *f = f.saturating_sub(t.spec.bytes(plan.precision));
                *load.get_mut(&b).expect("dram bank") += 1;
            }
        }
    }

    let dram_tables: Vec<usize> =
        (0..plan.placed.len()).filter(|&i| plan.placed[i].banks[0].kind.is_dram()).collect();

    loop {
        let reads_of = |t: &PlacedTable| lookups.div_ceil(t.banks.len() as u64);
        let m = dram_tables.iter().map(|&i| reads_of(&plan.placed[i])).max().unwrap_or(1);
        if m <= 1 {
            break;
        }
        let target_replicas = lookups.div_ceil(m - 1);
        let mut progressed = false;
        for &i in &dram_tables {
            let bytes = plan.placed[i].spec.bytes(plan.precision);
            while (plan.placed[i].banks.len() as u64) < target_replicas {
                let existing = plan.placed[i].banks.clone();
                let Some((&bank, _)) = load
                    .iter()
                    .filter(|(id, _)| !existing.contains(id))
                    .filter(|(id, _)| free.get(id).copied().unwrap_or(0) >= bytes)
                    .min_by_key(|(id, &n)| (n, **id))
                else {
                    break;
                };
                plan.placed[i].banks.push(bank);
                *free.get_mut(&bank).expect("dram bank") -= bytes;
                *load.get_mut(&bank).expect("dram bank") += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let after = plan.cost(config, model.lookups_per_table);
    if !after.better_than(&before) && after != before {
        *plan = original;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_memsim::MemoryKind;

    #[test]
    fn physical_specs_order_matches_catalog() {
        let model = ModelSpec::new(
            "toy",
            vec![
                TableSpec::new("a", 10, 4),
                TableSpec::new("b", 20, 4),
                TableSpec::new("c", 30, 4),
                TableSpec::new("d", 40, 4),
            ],
            vec![8],
            1,
        );
        let merge = MergePlan::pairs(&[(1, 3)]);
        let specs = physical_specs(&model, &merge).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].1, vec![1, 3]);
        assert_eq!(specs[0].0.rows, 800);
        assert_eq!(specs[1].1, vec![0]);
        assert_eq!(specs[2].1, vec![2]);
    }

    #[test]
    fn allocate_unmerged_toy_model() {
        let model = ModelSpec::new(
            "toy",
            (0..5).map(|i| TableSpec::new(format!("t{i}"), 1000, 8)).collect(),
            vec![8],
            1,
        );
        let plan =
            allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32).unwrap();
        plan.validate(&model, &MemoryConfig::u280()).unwrap();
        let cost = plan.cost(&MemoryConfig::u280(), 1);
        assert_eq!(cost.dram_rounds, 1, "5 tables over 34 channels need one round");
    }

    #[test]
    fn tiny_tables_get_cached_on_chip() {
        let model = ModelSpec::new(
            "toy",
            vec![
                TableSpec::new("tiny", 100, 4),    // 1.6 kB, fits a 4 kB BRAM bank
                TableSpec::new("big", 100_000, 8), // 3.2 MB, DRAM only
            ],
            vec![8],
            1,
        );
        let plan =
            allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32).unwrap();
        let cost = plan.cost(&MemoryConfig::u280(), 1);
        assert_eq!(cost.tables_on_chip, 1);
        assert_eq!(cost.tables_in_dram, 1);
        let tiny = plan.placed.iter().find(|t| t.spec.name == "tiny").unwrap();
        assert!(tiny.banks[0].kind.is_on_chip());
    }

    #[test]
    fn oversized_table_is_infeasible() {
        let model = ModelSpec::new(
            "toy",
            // 200 GB table exceeds even a 16 GB DDR channel.
            vec![TableSpec::new("huge", 800_000_000, 64)],
            vec![8],
            1,
        );
        assert!(matches!(
            allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32),
            Err(PlacementError::Infeasible(_))
        ));
    }

    #[test]
    fn lpt_balances_rounds() {
        // 68 identical tables over 34 DRAM channels -> exactly 2 per channel.
        let model = ModelSpec::new(
            "toy",
            (0..68).map(|i| TableSpec::new(format!("t{i}"), 100_000, 8)).collect(),
            vec![8],
            1,
        );
        let plan =
            allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32).unwrap();
        let cost = plan.cost(&MemoryConfig::u280(), 1);
        assert_eq!(cost.dram_rounds, 2);
    }

    #[test]
    fn giant_tables_go_to_ddr() {
        // 1 GB table cannot fit a 256 MB HBM pseudo-channel.
        let model = ModelSpec::new(
            "toy",
            vec![TableSpec::new("giant", 4_000_000, 64), TableSpec::new("small", 1_000, 8)],
            vec![8],
            1,
        );
        let plan =
            allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32).unwrap();
        let giant = plan.placed.iter().find(|t| t.spec.name == "giant").unwrap();
        assert_eq!(giant.banks[0].kind, MemoryKind::Ddr);
    }

    #[test]
    fn traffic_allocation_spreads_hot_tables_across_channels() {
        // Two big and two small DRAM tables over two DDR channels. The
        // size order places [big0, big1, small0, small1], co-locating the
        // two hot tables (big0, small0) on channel 0. The traffic order
        // places the hot pair first, spreading it across both channels.
        let model = ModelSpec::new(
            "skewed",
            vec![
                TableSpec::new("hot-big", 200_000, 16),
                TableSpec::new("hot-small", 100_000, 8),
                TableSpec::new("cold-big", 200_000, 16),
                TableSpec::new("cold-small", 100_000, 8),
            ],
            vec![8],
            1,
        );
        let config = MemoryConfig::fpga_without_hbm(2);
        let profile = TrafficProfile::from_counts(vec![100, 100, 1, 1]);
        let plain = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        let traffic = allocate_with_traffic(
            &model,
            &MergePlan::none(),
            &config,
            Precision::F32,
            AllocStrategy::RoundRobin,
            &profile,
        )
        .unwrap();
        traffic.validate(&model, &config).unwrap();
        let weighted_plain = plain.cost_with_traffic(&config, 1, &profile);
        let weighted_traffic = traffic.cost_with_traffic(&config, 1, &profile);
        assert!(
            weighted_traffic.lookup_latency < weighted_plain.lookup_latency,
            "hot tables must spread: traffic {:?} vs plain {:?}",
            weighted_traffic.lookup_latency,
            weighted_plain.lookup_latency
        );
        // The two hot tables land on different banks under traffic order.
        assert_ne!(traffic.placed[0].banks[0], traffic.placed[1].banks[0]);
    }

    #[test]
    fn uniform_traffic_allocation_is_bit_identical() {
        let model = ModelSpec::small_production();
        let config = MemoryConfig::u280();
        let plain = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        for profile in
            [TrafficProfile::uniform(), TrafficProfile::from_counts(vec![9; model.num_tables()])]
        {
            let traffic = allocate_with_traffic(
                &model,
                &MergePlan::none(),
                &config,
                Precision::F32,
                AllocStrategy::RoundRobin,
                &profile,
            )
            .unwrap();
            assert_eq!(traffic, plain);
        }
    }

    #[test]
    fn multi_lookup_model_replicates_across_idle_channels() {
        // DLRM-RMC2 shape: 8 tables x 4 lookups with 32 HBM channels free.
        let model = ModelSpec::dlrm_rmc2(8, 16);
        let plan =
            allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32).unwrap();
        plan.validate(&model, &MemoryConfig::u280()).unwrap();
        let cost = plan.cost(&MemoryConfig::u280(), 4);
        assert_eq!(
            cost.dram_rounds, 1,
            "32 lookups over 34 channels should replicate down to one round"
        );
    }

    #[test]
    fn twelve_table_dlrm_needs_two_rounds() {
        // 12 tables x 4 = 48 lookups > 34 channels -> 2 rounds (Table 5's
        // "speedup lower bound" case).
        let model = ModelSpec::dlrm_rmc2(12, 16);
        let plan =
            allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32).unwrap();
        let cost = plan.cost(&MemoryConfig::u280(), 4);
        assert_eq!(cost.dram_rounds, 2);
    }
}
