//! End-to-end tests for the tiered embedding parameter store: a model
//! bigger than the resident budget serving through [`ServingRuntime`]
//! bit-identically to the all-resident arena with bounded resident
//! memory, per-tier counters in the serving report, and cold-tier fault
//! injection (I/O failures fail only the affected items while the
//! runtime keeps draining).

use microrec_core::{
    ExecutionMode, LookupCountersRecord, MicroRec, MicroRecBuilder, RuntimeConfig, RuntimeError,
    ServingRuntime,
};
use microrec_embedding::{ModelSpec, RowFormat, TableSpec};
use microrec_workload::{QueryGenConfig, RequestTrace};

/// A scaled synthetic model whose embedding bytes comfortably exceed the
/// budgets the tests use: 8 tables × 20 000 rows × dim 16 (≈ 10 MB at
/// f32), 4 lookup rounds.
fn model() -> ModelSpec {
    ModelSpec::new(
        "tiered-e2e",
        (0..8).map(|i| TableSpec::new(format!("t{i}"), 20_000, 16)).collect(),
        vec![64, 32],
        4,
    )
}

/// Encoded embedding bytes of [`model`] in `format`.
fn model_bytes(model: &ModelSpec, format: RowFormat) -> u64 {
    let extra = if format == RowFormat::I8 { 4 } else { 0 };
    model
        .tables
        .iter()
        .map(|t| t.rows * (t.dim as usize * format.bytes_per_elem() + extra) as u64)
        .sum()
}

fn queries(model: &ModelSpec, n: usize) -> Vec<Vec<u64>> {
    RequestTrace::generate(model, 10_000.0, n, QueryGenConfig::default())
        .expect("trace")
        .queries()
        .to_vec()
}

fn tiered_builder(model: &ModelSpec, budget: u64, format: RowFormat) -> MicroRecBuilder {
    MicroRec::builder(model.clone()).seed(7).tiered_storage(budget, format)
}

#[test]
fn bigger_than_budget_model_serves_bit_identical_with_bounded_memory() {
    let model = model();
    let queries = queries(&model, 48);
    for format in [RowFormat::F32, RowFormat::F16, RowFormat::I8] {
        // Reference: the all-resident arena at the same format.
        let mut reference = MicroRec::builder(model.clone())
            .seed(7)
            .embedding_arena(format)
            .build()
            .expect("all-resident engine");
        let expected: Vec<f32> =
            queries.iter().map(|q| reference.predict(q).expect("predict")).collect();

        // Tiered: a quarter of the model resident. Prepare the shared
        // backing first so the budget assertions below inspect the exact
        // store the runtime's workers serve from.
        let budget = model_bytes(&model, format) / 4;
        let mut builder = tiered_builder(&model, budget, format);
        builder.prepare_shared_arena().expect("shared tiered backing");
        let probe = builder.clone().build().expect("tiered engine");
        let backing = probe.tiered_store().expect("tiered store").backing();
        assert!(
            backing.resident_bytes() <= budget,
            "{format}: resident {} bytes must fit the {budget}-byte budget",
            backing.resident_bytes(),
        );
        assert!(
            backing.resident_arena_bytes() <= budget,
            "{format}: allocated arena {} bytes must fit the {budget}-byte budget",
            backing.resident_arena_bytes(),
        );
        assert!(
            backing.num_resident_tables() < model.num_tables(),
            "{format}: the model must not fit the budget entirely"
        );
        assert!(backing.cold_bytes() > 0);
        drop(probe);

        let mut runtime = ServingRuntime::start(
            builder,
            RuntimeConfig { workers: 2, max_batch: 8, max_wait_us: 1_000, ..Default::default() },
        )
        .expect("runtime");
        let pending: Vec<_> =
            queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
        for (i, (p, e)) in pending.into_iter().zip(&expected).enumerate() {
            let got = p.wait().expect("predict");
            assert_eq!(got.to_bits(), e.to_bits(), "{format} query {i} diverged");
        }
        let snapshot = runtime.shutdown();
        assert_eq!(snapshot.completed, queries.len() as u64);
        assert_eq!(snapshot.failed, 0);

        // Per-tier counters surface in the runtime stats and carry into
        // the serving report's `lookup` section.
        let stats = runtime.lookup_stats().expect("tiered runtime exposes lookup stats");
        assert!(stats.tiered);
        assert_eq!(stats.format, format.as_str());
        assert!(stats.resident_hits > 0, "{format}: resident tier must serve rows");
        assert!(stats.cold_reads > 0, "{format}: cold tier must serve rows");
        assert!(stats.bytes_from_cold > 0);
        assert!(stats.cold_tier_healthy(), "{format}: no I/O faults in this test");
        assert!(stats.bytes_from_memory > 0);
        let record = LookupCountersRecord::from_stats(&stats);
        assert_eq!(record.resident_hits, Some(stats.resident_hits));
        assert_eq!(record.cold_reads, Some(stats.cold_reads));
        assert_eq!(record.prefetch_hits, Some(stats.prefetch_hits));
        assert_eq!(record.bytes_from_cold, Some(stats.bytes_from_cold));
    }
}

#[test]
fn pipelined_tiered_runtime_serves_and_reports_tier_counters() {
    let model = model();
    let queries = queries(&model, 32);
    let format = RowFormat::F16;
    let mut reference = MicroRec::builder(model.clone())
        .seed(7)
        .embedding_arena(format)
        .build()
        .expect("all-resident engine");
    let expected: Vec<f32> =
        queries.iter().map(|q| reference.predict(q).expect("predict")).collect();

    let budget = model_bytes(&model, format) / 4;
    let mut runtime = ServingRuntime::start(
        tiered_builder(&model, budget, format),
        RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 1_000,
            execution: ExecutionMode::Pipelined,
            ..Default::default()
        },
    )
    .expect("runtime");
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for (i, (p, e)) in pending.into_iter().zip(&expected).enumerate() {
        let got = p.wait().expect("predict");
        assert_eq!(got.to_bits(), e.to_bits(), "query {i} diverged");
    }
    runtime.shutdown();
    // Pipelined lanes publish their tier totals at drain time.
    let stats = runtime.lookup_stats().expect("tiered runtime exposes lookup stats");
    assert!(stats.tiered);
    assert!(stats.resident_hits > 0);
    assert!(stats.cold_reads > 0);
    assert!(stats.cold_tier_healthy());
}

#[test]
fn cold_tier_io_failure_fails_only_affected_items_and_keeps_draining() {
    let model = model();
    let format = RowFormat::F32;
    let budget = model_bytes(&model, format) / 4;
    // One worker with a large hot-row cache: the warm set stays cached, so
    // after the cold store breaks, warm queries must still succeed while
    // novel (uncached) queries fail individually.
    let mut builder = tiered_builder(&model, budget, format).hot_row_cache(8192);
    builder.prepare_shared_arena().expect("shared tiered backing");
    let probe = builder.clone().build().expect("tiered engine");
    let cold_path = probe
        .tiered_store()
        .expect("tiered store")
        .backing()
        .cold_store_path()
        .expect("cold tier exists")
        .to_path_buf();
    drop(probe);

    let mut runtime = ServingRuntime::start(
        builder,
        RuntimeConfig { workers: 1, max_batch: 4, max_wait_us: 500, ..Default::default() },
    )
    .expect("runtime");

    let all = queries(&model, 32);
    let (warm, novel) = all.split_at(16);

    // Warm pass: populates the worker engine's hot-row cache.
    let pending: Vec<_> = warm.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for p in pending {
        p.wait().expect("warm pass must succeed");
    }

    // Break the cold tier mid-serve: truncate the store file. The open
    // descriptor sees the new length, so every later cold read hits EOF.
    std::fs::OpenOptions::new()
        .write(true)
        .open(&cold_path)
        .expect("open cold store")
        .set_len(0)
        .expect("truncate cold store");

    // Interleave warm (cache-served) and novel (cold-reading) queries in
    // the same batches: the novel ones must fail alone.
    let mut outcomes = Vec::new();
    for (w, n) in warm.iter().zip(novel) {
        outcomes.push((true, runtime.submit(w.clone()).expect("submit")));
        outcomes.push((false, runtime.submit(n.clone()).expect("submit")));
    }
    let mut failed = 0u64;
    for (is_warm, p) in outcomes {
        match p.wait() {
            Ok(_) => assert!(is_warm, "a novel query cannot succeed with a truncated store"),
            Err(RuntimeError::Failed(msg)) => {
                assert!(!is_warm, "a cache-served query must survive the broken cold tier");
                assert!(msg.contains("cold-tier"), "error names the tier: {msg}");
                failed += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(failed, novel.len() as u64);

    // The runtime drained everything it admitted and reports the tier as
    // unhealthy — it never wedged on the broken store.
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.admitted, (warm.len() * 2 + novel.len()) as u64);
    assert_eq!(snapshot.completed + snapshot.failed, snapshot.admitted);
    assert_eq!(snapshot.failed, novel.len() as u64);
    let stats = runtime.lookup_stats().expect("lookup stats");
    assert!(stats.tiered);
    assert!(!stats.cold_tier_healthy(), "cold errors must be visible");
    assert!(stats.cold_errors > 0);
}
