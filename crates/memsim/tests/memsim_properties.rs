//! Randomized tests for the memory simulator's core invariants, driven by
//! a seeded RNG so every run is reproducible.

use microrec_rng::Rng;

use microrec_memsim::{
    AddressedRead, BankId, HybridMemory, MemTiming, MemoryConfig, MemoryKind, ReadRequest,
    RowPolicy, SimTime,
};

fn timings() -> Vec<MemTiming> {
    vec![
        MemTiming::hbm2_vitis(),
        MemTiming::ddr4_vitis(),
        MemTiming::ddr4_server(),
        MemTiming::onchip_fpga(),
    ]
}

/// Access time is monotone in payload size for every technology.
#[test]
fn access_time_monotone() {
    let mut rng = Rng::seed_from_u64(0xACCE);
    for _ in 0..256 {
        let a = rng.gen_range_u64(1, 100_000) as u32;
        let b = rng.gen_range_u64(1, 100_000) as u32;
        let (lo, hi) = (a.min(b), a.max(b));
        for t in timings() {
            assert!(t.access_time(lo) <= t.access_time(hi), "{}", t.label);
            assert!(t.access_time_row_hit(lo) <= t.access_time_row_hit(hi));
            assert!(t.access_time_row_hit(hi) < t.access_time(hi));
        }
    }
}

/// A batch's elapsed time equals the maximum per-bank serial time and
/// never exceeds the sum of all access times.
#[test]
fn batch_elapsed_is_bank_maximum() {
    let mut rng = Rng::seed_from_u64(0xBA7C);
    for _ in 0..64 {
        let count = rng.gen_range_usize(1, 40);
        let mut mem = HybridMemory::new(MemoryConfig::u280());
        let requests: Vec<ReadRequest> = (0..count)
            .map(|_| {
                let bank = rng.gen_range_u64(0, 34) as u16;
                let bytes = rng.gen_range_u64(4, 512) as u32;
                let id = if bank < 32 {
                    BankId::new(MemoryKind::Hbm, bank)
                } else {
                    BankId::new(MemoryKind::Ddr, bank - 32)
                };
                ReadRequest::new(id, bytes)
            })
            .collect();
        let timing = mem.parallel_read(&requests).unwrap();
        // Recompute per-bank serial sums independently.
        let mut per_bank: std::collections::BTreeMap<BankId, SimTime> = Default::default();
        let mut total = SimTime::ZERO;
        for r in &requests {
            let t = mem.bank(r.bank).unwrap().read_time(r.bytes);
            *per_bank.entry(r.bank).or_insert(SimTime::ZERO) += t;
            total += t;
        }
        let max = per_bank.values().copied().max().unwrap();
        assert_eq!(timing.elapsed, max);
        assert!(timing.elapsed <= total);
        assert_eq!(timing.total_busy, total);
    }
}

/// First-fit allocation never overlaps regions and respects capacity,
/// for arbitrary interleavings of allocs and releases.
#[test]
fn allocator_never_overlaps() {
    let mut rng = Rng::seed_from_u64(0xA110);
    for _ in 0..48 {
        let ops = rng.gen_range_usize(1, 60);
        let mut mem = HybridMemory::new(MemoryConfig::u280());
        let bank = BankId::new(MemoryKind::Bram, 0); // 4 KiB, fills quickly
        let mut live: Vec<String> = Vec::new();
        let mut counter = 0usize;
        for _ in 0..ops {
            let op = rng.gen_range_u64(0, 3);
            let size = rng.gen_range_u64(1, 3000);
            if op == 0 || live.is_empty() {
                let label = format!("r{counter}");
                counter += 1;
                if mem.alloc(bank, label.clone(), size).is_ok() {
                    live.push(label);
                }
            } else {
                let label = live.remove(live.len() / 2);
                mem.release(bank, &label).unwrap();
            }
            let b = mem.bank(bank).unwrap();
            assert!(b.used() <= b.capacity());
            let mut spans: Vec<(u64, u64)> =
                b.regions().iter().map(|r| (r.offset, r.offset + r.bytes)).collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap {w:?}");
            }
            for (_, end) in &spans {
                assert!(*end <= b.capacity());
            }
        }
    }
}

/// Under the open-page policy, per-read latency never exceeds the
/// closed-page latency, and hits happen exactly on repeated rows.
#[test]
fn open_page_is_never_slower() {
    let mut rng = Rng::seed_from_u64(0x09E4);
    for _ in 0..64 {
        let count = rng.gen_range_usize(2, 30);
        let offsets: Vec<u64> = (0..count).map(|_| rng.gen_range_u64(0, 8192)).collect();
        let mut open = HybridMemory::new(MemoryConfig::u280());
        open.set_row_policy(RowPolicy::OpenPage);
        let mut closed = HybridMemory::new(MemoryConfig::u280());
        let bank = BankId::new(MemoryKind::Hbm, 0);
        let reads: Vec<AddressedRead> =
            offsets.iter().map(|&o| AddressedRead::new(bank, o, 32)).collect();
        let t_open = open.parallel_read_addressed(&reads).unwrap();
        let t_closed = closed.parallel_read_addressed(&reads).unwrap();
        assert!(t_open.elapsed <= t_closed.elapsed);
        // Count expected hits: consecutive reads in the same 1024-byte row.
        let rows: Vec<u64> = offsets.iter().map(|o| o / 1024).collect();
        let expected_hits = rows.windows(2).filter(|w| w[0] == w[1]).count() as u64;
        assert_eq!(open.stats().bank(bank).unwrap().row_hits, expected_hits);
        assert_eq!(closed.stats().bank(bank).unwrap().row_hits, 0);
    }
}

/// SimTime cycle conversions agree with frequency math.
#[test]
fn cycles_scale_linearly() {
    let mut rng = Rng::seed_from_u64(0xC1C1);
    for _ in 0..512 {
        let cycles = rng.gen_range_u64(0, 1_000_000);
        let hz = rng.gen_range_u64(1_000_000, 1_000_000_000);
        let one = SimTime::from_cycles(1, hz);
        let many = SimTime::from_cycles(cycles, hz);
        // Within rounding of integer picoseconds per cycle.
        let err = (many.as_ps() as i128 - (one.as_ps() as i128 * cycles as i128)).abs();
        assert!(err <= cycles as i128, "error {err} over {cycles} cycles");
    }
}
