//! Helper for the designated root in `violation.rs` — deliberately in a
//! different file. It both allocates and can panic, so the root's call
//! site anchors one transitive-hot-path-alloc and one transitive-panic
//! finding.

pub fn assemble_report(queries: &[u64]) -> usize {
    let doubled: Vec<u64> = queries.iter().map(|q| q * 2).collect();
    *doubled.last().unwrap() as usize
}
