//! Dequantize-and-gather kernels for the embedding fast path.
//!
//! Embedding rows can be stored compressed — IEEE half precision (`f16`,
//! 2 bytes/element) or 8-bit integers with one scale per row (`i8`,
//! ~1 byte/element) — cutting the bytes a gather moves 2–4×. These kernels
//! fuse the dequantization with the copy into the destination activation
//! buffer, so compressed storage never costs a second pass.
//!
//! Like the GEMM kernels ([`crate::dot`]), every routine has a portable
//! scalar reference and a runtime-dispatched vector path (F16C for half
//! decode, AVX2 for `i8` dequant) that is **bit-identical** to it: `f16`
//! decode is an exact conversion, and `i8` dequant is one exact
//! `int → f32` conversion followed by a single-rounded multiply, in both
//! implementations. The tests pin this down across every length class and
//! (for `f16`) all 65 536 bit patterns.
//!
//! Encoding (`f32 → f16`, `f32 → i8`) happens once at arena build time and
//! is scalar only.

/// Largest representable `i8` magnitude used by the symmetric row codec.
const I8_QMAX: f32 = 127.0;

/// `2⁻²⁴` as an exact `f32` (scale of `f16` subnormals).
const F16_SUBNORMAL_SCALE: f32 = f32::from_bits(0x3380_0000);

/// Decodes one IEEE 754 binary16 value to `f32` (exact; every `f16` value
/// is representable in `f32`). Matches hardware F16C conversion bit for
/// bit, including subnormals, infinities, and NaN payloads.
#[must_use]
pub fn f16_decode(bits: u16) -> f32 {
    let sign = u32::from(bits >> 15) << 31;
    let exp = u32::from(bits >> 10) & 0x1F;
    let frac = u32::from(bits & 0x3FF);
    let out_bits = match exp {
        0 => {
            // Zero or subnormal: value = frac · 2⁻²⁴, exact in f32.
            let mag = frac as f32 * F16_SUBNORMAL_SCALE;
            sign | mag.to_bits()
        }
        // Infinity, or NaN with the quiet bit forced (hardware F16C
        // quiets signaling NaNs on conversion; payload preserved).
        31 if frac == 0 => sign | 0x7F80_0000,
        31 => sign | 0x7FC0_0000 | (frac << 13),
        _ => sign | ((exp + 112) << 23) | (frac << 13),
    };
    f32::from_bits(out_bits)
}

/// Encodes an `f32` to IEEE 754 binary16 with round-to-nearest-even
/// (overflow saturates to infinity, underflow to signed zero).
#[must_use]
pub fn f16_encode(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Infinity or NaN (payload truncated, quiet bit forced).
        let payload = if frac == 0 { 0 } else { 0x200 | (frac >> 13) as u16 };
        return sign | 0x7C00 | payload;
    }
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal range: drop 13 fraction bits with ties-to-even.
        let mut frac16 = (frac >> 13) as u16;
        let mut exp16 = (e + 15) as u16;
        let rem = frac & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && frac16 & 1 == 1) {
            frac16 += 1;
            if frac16 == 0x400 {
                frac16 = 0;
                exp16 += 1;
                if exp16 >= 31 {
                    return sign | 0x7C00;
                }
            }
        }
        return sign | (exp16 << 10) | frac16;
    }
    if e < -25 {
        // Below half the smallest subnormal: rounds to signed zero.
        return sign;
    }
    // Subnormal range: shift the (now explicit) leading 1 into place.
    let full = frac | 0x0080_0000;
    let shift = (13 - 14 - e) as u32;
    let mut frac16 = (full >> shift) as u16;
    let rem = full & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    if rem > half || (rem == half && frac16 & 1 == 1) {
        // A carry out of the subnormal fraction lands exactly on the
        // smallest normal encoding, so plain addition stays correct.
        frac16 += 1;
    }
    sign | frac16
}

/// Encodes `src` into half precision, element-wise (arena build path).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn f16_encode_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_encode(s);
    }
}

/// Decodes a half-precision row into `f32`, fused with the copy into the
/// destination buffer. Dispatches to the F16C vector unit when available;
/// the result is bit-identical to [`f16_decode_slice_scalar`] either way.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn f16_decode_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if f16c_available() {
        // SAFETY: the feature check above guarantees F16C (and AVX).
        unsafe { f16_decode_slice_f16c(src, dst) };
        return;
    }
    f16_decode_slice_scalar(src, dst);
}

/// Portable reference decode behind [`f16_decode_slice`].
#[inline]
pub fn f16_decode_slice_scalar(src: &[u16], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_decode(s);
    }
}

/// Caches the F16C CPUID probe so the hot path pays one atomic load.
#[cfg(target_arch = "x86_64")]
#[inline]
fn f16c_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 no, 2 yes
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("f16c")
                && std::arch::is_x86_feature_detected!("avx");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// F16C half→single decode, 8 elements per step.
///
/// Pure per-element conversion — no accumulation, no rounding choice — so
/// it is bit-identical to the scalar decode by construction (the scalar
/// path implements the same IEEE conversion the hardware performs; the
/// exhaustive test checks all 65 536 patterns).
///
/// # Safety
///
/// Caller must ensure the CPU supports F16C and AVX and that
/// `src.len() == dst.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,f16c")]
unsafe fn f16_decode_slice_f16c(src: &[u16], dst: &mut [f32]) {
    use std::arch::x86_64::{_mm256_cvtph_ps, _mm256_storeu_ps, _mm_loadu_si128};
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let mut j = 0usize;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= n` bounds the 128-bit (8 × u16) unaligned load.
        let h = unsafe { _mm_loadu_si128(src.as_ptr().add(j).cast()) };
        let f = _mm256_cvtph_ps(h);
        // SAFETY: as above; `dst.len() == src.len()` per the fn contract.
        unsafe { _mm256_storeu_ps(dst.as_mut_ptr().add(j), f) };
        j += 8;
    }
    while j < n {
        // SAFETY: the loop condition keeps `j` in bounds for both slices.
        unsafe { *dst.get_unchecked_mut(j) = f16_decode(*src.get_unchecked(j)) };
        j += 1;
    }
}

/// Quantizes one row to `i8` with a symmetric per-row scale; returns the
/// scale (`real = q · scale`). A zero row gets scale 1 so dequantization
/// never divides by zero. Arena build path.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn i8_quant_slice(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len());
    let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max_abs > 0.0 { max_abs / I8_QMAX } else { 1.0 };
    let inv = 1.0 / scale;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (s * inv).round().clamp(-I8_QMAX, I8_QMAX) as i8;
    }
    scale
}

/// Dequantizes an `i8` row (`real = q · scale`), fused with the copy into
/// the destination buffer. Dispatches to AVX2 when available; bit-identical
/// to [`i8_dequant_slice_scalar`] either way (exact `int → f32` conversion
/// followed by one single-rounded multiply in both paths).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn i8_dequant_slice(src: &[i8], scale: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if crate::gemm::avx2_available() {
        // SAFETY: the feature check above guarantees AVX2.
        unsafe { i8_dequant_slice_avx2(src, scale, dst) };
        return;
    }
    i8_dequant_slice_scalar(src, scale, dst);
}

/// Portable reference dequant behind [`i8_dequant_slice`].
#[inline]
pub fn i8_dequant_slice_scalar(src: &[i8], scale: f32, dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32::from(s) * scale;
    }
}

/// AVX2 `i8` dequant, 8 elements per step: sign-extend to `i32`, convert
/// to `f32` (exact for the `i8` range), multiply by the broadcast scale
/// (the one rounding, identical to the scalar path's).
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and `src.len() == dst.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn i8_dequant_slice_avx2(src: &[i8], scale: f32, dst: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
        _mm_loadl_epi64,
    };
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let s = _mm256_set1_ps(scale);
    let mut j = 0usize;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= n` bounds the 64-bit (8 × i8) unaligned load.
        let q8 = unsafe { _mm_loadl_epi64(src.as_ptr().add(j).cast()) };
        let q32 = _mm256_cvtepi8_epi32(q8);
        let f = _mm256_mul_ps(_mm256_cvtepi32_ps(q32), s);
        // SAFETY: as above; `dst.len() == src.len()` per the fn contract.
        unsafe { _mm256_storeu_ps(dst.as_mut_ptr().add(j), f) };
        j += 8;
    }
    while j < n {
        // SAFETY: the loop condition keeps `j` in bounds for both slices.
        unsafe { *dst.get_unchecked_mut(j) = f32::from(*src.get_unchecked(j)) * scale };
        j += 1;
    }
}

/// Decodes a little-endian `f32` row from a borrowed byte buffer (the
/// cold tier's on-disk layout) into the destination activation slice.
/// Byte-for-byte the same values the arena stores, so the cold path stays
/// bit-identical to the resident one.
///
/// # Panics
///
/// Panics if `src.len() != 4 * dst.len()`.
#[inline]
pub fn f32_decode_le_slice(src: &[u8], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len() * 4);
    for (d, s) in dst.iter_mut().zip(src.chunks_exact(4)) {
        *d = f32::from_le_bytes([s[0], s[1], s[2], s[3]]);
    }
}

/// Decodes a little-endian `f16` row from a borrowed byte buffer into
/// `f32`, fused with the copy. Each element routes through the same
/// [`f16_decode`] the in-memory arena path uses, so cold reads are
/// bit-identical to resident ones.
///
/// # Panics
///
/// Panics if `src.len() != 2 * dst.len()`.
#[inline]
pub fn f16_decode_le_slice(src: &[u8], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len() * 2);
    for (d, s) in dst.iter_mut().zip(src.chunks_exact(2)) {
        *d = f16_decode(u16::from_le_bytes([s[0], s[1]]));
    }
}

/// Dequantizes an `i8` row from a borrowed byte buffer (`real = q · scale`),
/// fused with the copy. Same exact `int → f32` conversion and single-rounded
/// multiply as [`i8_dequant_slice`], so cold reads are bit-identical to
/// resident ones.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn i8_dequant_le_slice(src: &[u8], scale: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32::from(s as i8) * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Length classes exercising the 8-wide kernel body and scalar tails.
    const LENGTHS: [usize; 10] = [0, 1, 3, 7, 8, 9, 15, 16, 31, 350];

    fn det_values(n: usize, seed: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * seed).sin() * 0.9).collect()
    }

    #[test]
    fn f16_round_trip_is_lossless_for_representable_values() {
        // Values already representable in f16 must survive exactly.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 0.25, -0.75, 2048.0, 6.1035156e-5] {
            assert_eq!(f16_decode(f16_encode(v)).to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn f16_encode_rounds_to_nearest_even() {
        let ulp = f32::from_bits(0x3A80_0000); // 2⁻¹⁰, the f16 ulp at 1.0
        assert_eq!(f16_encode(1.0 + ulp), 0x3C01);
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and 1 + 2⁻¹⁰; the tie
        // goes to the even fraction (1.0). One tick above rounds up.
        assert_eq!(f16_encode(1.0 + ulp / 2.0), 0x3C00);
        assert_eq!(f16_encode(1.0 + ulp / 2.0 + f32::EPSILON), 0x3C01);
        // Halfway between two odd/even neighbours: 1 + 3·2⁻¹¹ ties up to
        // the even 0x3C02.
        assert_eq!(f16_encode(1.0 + 3.0 * ulp / 2.0), 0x3C02);
        // Overflow saturates to infinity, underflow to signed zero.
        assert_eq!(f16_encode(1.0e6), 0x7C00);
        assert_eq!(f16_encode(-1.0e6), 0xFC00);
        assert_eq!(f16_encode(1.0e-10), 0x0000);
        assert_eq!(f16_encode(-1.0e-10), 0x8000);
    }

    #[test]
    fn f16_decode_error_is_within_half_ulp() {
        for v in det_values(1000, 0.417) {
            let d = f16_decode(f16_encode(v));
            // Relative error of round-to-nearest f16: ≤ 2⁻¹¹.
            assert!((d - v).abs() <= v.abs() * 4.9e-4 + 6.0e-8, "{v} -> {d}");
        }
    }

    #[test]
    fn f16_decode_matches_reference_for_all_bit_patterns() {
        // Exhaustive: decode every possible f16 and compare the dispatched
        // kernel against the scalar reference bit for bit (NaNs included).
        let all: Vec<u16> = (0..=u16::MAX).collect();
        let mut dispatched = vec![0.0f32; all.len()];
        let mut reference = vec![0.0f32; all.len()];
        f16_decode_slice(&all, &mut dispatched);
        f16_decode_slice_scalar(&all, &mut reference);
        for (bits, (d, r)) in dispatched.iter().zip(&reference).enumerate() {
            assert_eq!(d.to_bits(), r.to_bits(), "pattern {bits:#06x}");
        }
    }

    #[test]
    fn f16_slice_decode_matches_scalar_at_every_length() {
        for &n in &LENGTHS {
            let values = det_values(n, 0.713);
            let mut half = vec![0u16; n];
            f16_encode_slice(&values, &mut half);
            let mut fast = vec![0.0f32; n];
            let mut slow = vec![0.0f32; n];
            f16_decode_slice(&half, &mut fast);
            f16_decode_slice_scalar(&half, &mut slow);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn i8_round_trip_error_is_bounded_by_half_step() {
        for &n in &LENGTHS[1..] {
            let values = det_values(n, 0.911);
            let mut q = vec![0i8; n];
            let scale = i8_quant_slice(&values, &mut q);
            let mut back = vec![0.0f32; n];
            i8_dequant_slice(&q, scale, &mut back);
            for (v, b) in values.iter().zip(&back) {
                assert!((v - b).abs() <= scale / 2.0 + 1e-7, "{v} -> {b} (scale {scale})");
            }
        }
    }

    #[test]
    fn i8_dequant_matches_scalar_at_every_length() {
        for &n in &LENGTHS {
            let values = det_values(n, 1.313);
            let mut q = vec![0i8; n];
            let scale = i8_quant_slice(&values, &mut q);
            let mut fast = vec![0.0f32; n];
            let mut slow = vec![0.0f32; n];
            i8_dequant_slice(&q, scale, &mut fast);
            i8_dequant_slice_scalar(&q, scale, &mut slow);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn byte_slice_decodes_match_in_memory_decodes_bitwise() {
        for &n in &LENGTHS {
            let values = det_values(n, 0.527);
            // f32: encode to LE bytes, decode back — must be the identity.
            let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut back = vec![0.0f32; n];
            f32_decode_le_slice(&bytes, &mut back);
            for (i, (a, b)) in values.iter().zip(&back).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "f32 n={n} i={i}");
            }
            // f16: byte-buffer decode must match the u16-slice decode.
            let mut half = vec![0u16; n];
            f16_encode_slice(&values, &mut half);
            let half_bytes: Vec<u8> = half.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut from_bytes = vec![0.0f32; n];
            let mut from_u16 = vec![0.0f32; n];
            f16_decode_le_slice(&half_bytes, &mut from_bytes);
            f16_decode_slice(&half, &mut from_u16);
            for (i, (a, b)) in from_bytes.iter().zip(&from_u16).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "f16 n={n} i={i}");
            }
            // i8: byte-buffer dequant must match the i8-slice dequant.
            let mut q = vec![0i8; n];
            let scale = i8_quant_slice(&values, &mut q);
            let q_bytes: Vec<u8> = q.iter().map(|&v| v as u8).collect();
            let mut from_q_bytes = vec![0.0f32; n];
            let mut from_q = vec![0.0f32; n];
            i8_dequant_le_slice(&q_bytes, scale, &mut from_q_bytes);
            i8_dequant_slice(&q, scale, &mut from_q);
            for (i, (a, b)) in from_q_bytes.iter().zip(&from_q).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "i8 n={n} i={i}");
            }
        }
    }

    #[test]
    fn i8_zero_row_quantizes_safely() {
        let zeros = [0.0f32; 8];
        let mut q = [0i8; 8];
        let scale = i8_quant_slice(&zeros, &mut q);
        assert_eq!(scale, 1.0);
        assert!(q.iter().all(|&v| v == 0));
        let mut back = [1.0f32; 8];
        i8_dequant_slice(&q, scale, &mut back);
        assert!(back.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn i8_quant_saturates_extremes() {
        let values = [10.0f32, -10.0, 5.0, -5.0];
        let mut q = [0i8; 4];
        let scale = i8_quant_slice(&values, &mut q);
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert!((f32::from(q[0]) * scale - 10.0).abs() < 1e-5);
    }
}
