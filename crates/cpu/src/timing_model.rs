//! Calibrated timing model of the TensorFlow-Serving CPU baseline.
//!
//! The baseline of §5.1 (16 vCPU Xeon E5-2686 v4, AVX2, 128 GB / 8-channel
//! DDR4) decomposes into three physically motivated terms, each calibrated
//! against the paper's own measurements:
//!
//! 1. **Framework / operator-call overhead** — §2.3 observes the embedding
//!    layer alone invokes 37 operator types many times; the measured
//!    batch-1 embedding latencies (2.59 ms for 47 tables, 6.25 ms for 98)
//!    resolve to ≈ 1.6 µs per (operator type × table) invocation, growing
//!    ~1.4× once real batches make the tensors non-trivial.
//! 2. **Random DRAM accesses** — the measured marginal cost per item
//!    (≈ 4.4 µs for 47 lookups) matches the *serial* sum of per-lookup
//!    DRAM latencies: TensorFlow's gather ops do not overlap the row
//!    activations of different tables, which is precisely the bottleneck
//!    MicroRec's 34 parallel channels remove.
//! 3. **GEMM at batch-dependent efficiency** — AVX2 peak (8 cores × 2 FMA
//!    × 8 lanes × 2 ops × 2.3 GHz ≈ 589 GFLOP/s) scaled by an efficiency
//!    curve anchored at the paper's measured points (0.5 % at batch 1,
//!    45 % at batch 2048).

use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::{MemTiming, SimTime};

/// Operator types involved in the embedding layer (§2.3).
pub const EMBEDDING_OP_TYPES: u32 = 37;

/// Timing model for the CPU baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuTimingModel {
    /// Time per (operator type × table) invocation at batch 1.
    pub op_invocation: SimTime,
    /// Multiplier on framework overhead once batches are non-trivial.
    pub fw_batch_factor: f64,
    /// DRAM timing of one server memory channel.
    pub dram: MemTiming,
    /// Peak dense FLOP/s of the machine.
    pub peak_flops: f64,
    /// `(batch, efficiency)` anchors of the GEMM efficiency curve,
    /// ascending in batch.
    pub efficiency_anchors: Vec<(u64, f64)>,
}

impl Default for CpuTimingModel {
    fn default() -> Self {
        Self::aws_16vcpu()
    }
}

impl CpuTimingModel {
    /// The paper's baseline server: AWS instance with a 16-vCPU Xeon
    /// E5-2686 v4 at 2.3 GHz with AVX2 FMA and 8 DDR4 channels.
    #[must_use]
    pub fn aws_16vcpu() -> Self {
        CpuTimingModel {
            op_invocation: SimTime::from_ns(1600.0),
            fw_batch_factor: 1.4,
            dram: MemTiming::ddr4_server(),
            // 8 physical cores x 2 FMA ports x 8 f32 lanes x 2 ops x 2.3 GHz.
            peak_flops: 588.8e9,
            // Efficiencies implied by the paper's Table 2/4 DNN times.
            efficiency_anchors: vec![
                (1, 0.0046),
                (64, 0.143),
                (256, 0.256),
                (512, 0.34),
                (1024, 0.40),
                (2048, 0.453),
                (8192, 0.47),
            ],
        }
    }

    /// Framework/operator overhead per batch for `model`.
    #[must_use]
    pub fn framework_overhead(&self, model: &ModelSpec, batch: u64) -> SimTime {
        let invocations = u64::from(EMBEDDING_OP_TYPES) * model.num_tables() as u64;
        let base = self.op_invocation * invocations;
        // Overhead grows with tensor size up to batch ~64, then saturates.
        let growth = 1.0 + (self.fw_batch_factor - 1.0) * (batch.min(64) as f64 - 1.0) / 63.0;
        SimTime::from_ns(base.as_ns() * growth)
    }

    /// Memory time of one item's embedding lookups: the serial sum of
    /// random accesses, one per logical lookup.
    #[must_use]
    pub fn lookup_time_per_item(&self, model: &ModelSpec) -> SimTime {
        let per_table: SimTime =
            model.tables.iter().map(|t| self.dram.access_time(t.row_bytes(Precision::F32))).sum();
        per_table * u64::from(model.lookups_per_table)
    }

    /// Embedding-layer latency for a whole batch (the paper's Table 4 CPU
    /// rows).
    #[must_use]
    pub fn embedding_time(&self, model: &ModelSpec, batch: u64) -> SimTime {
        self.framework_overhead(model, batch) + self.lookup_time_per_item(model) * batch
    }

    /// GEMM efficiency at `batch`, log-interpolated between anchors.
    #[must_use]
    pub fn gemm_efficiency(&self, batch: u64) -> f64 {
        let batch = batch.max(1);
        let anchors = &self.efficiency_anchors;
        if batch <= anchors[0].0 {
            return anchors[0].1;
        }
        for pair in anchors.windows(2) {
            let (b0, e0) = pair[0];
            let (b1, e1) = pair[1];
            if batch <= b1 {
                let t = ((batch as f64).ln() - (b0 as f64).ln())
                    / ((b1 as f64).ln() - (b0 as f64).ln());
                return e0 + t * (e1 - e0);
            }
        }
        anchors.last().expect("non-empty anchors").1
    }

    /// Dense (top-MLP) latency for a whole batch.
    #[must_use]
    pub fn dnn_time(&self, model: &ModelSpec, batch: u64) -> SimTime {
        let flops = model.flops_per_item() as f64 * batch as f64;
        let eff = self.gemm_efficiency(batch);
        SimTime::from_ns(flops / (self.peak_flops * eff) * 1e9)
    }

    /// End-to-end inference latency for a batch (Table 2 CPU rows).
    #[must_use]
    pub fn total_time(&self, model: &ModelSpec, batch: u64) -> SimTime {
        self.embedding_time(model, batch) + self.dnn_time(model, batch)
    }

    /// Items per second at `batch`.
    #[must_use]
    pub fn throughput_items_per_sec(&self, model: &ModelSpec, batch: u64) -> f64 {
        batch as f64 / self.total_time(model, batch).as_secs()
    }

    /// Operations per second at `batch` (the paper's GOP/s rows).
    #[must_use]
    pub fn throughput_ops_per_sec(&self, model: &ModelSpec, batch: u64) -> f64 {
        model.flops_per_item() as f64 * batch as f64 / self.total_time(model, batch).as_secs()
    }
}

/// Facebook's published DLRM-RMC2 baseline embedding-lookup latency
/// (2-socket Broadwell, batch 256), against which Table 5 computes its
/// speedups. The paper's speedup × latency products resolve to ≈ 24.2 µs
/// for every configuration.
#[must_use]
pub fn facebook_rmc2_baseline_lookup() -> SimTime {
    SimTime::from_us(24.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn assert_close_ms(actual: SimTime, paper_ms: f64, tol: f64, what: &str) {
        let err = (actual.as_ms() - paper_ms).abs() / paper_ms;
        assert!(
            err <= tol,
            "{what}: model {:.2} ms vs paper {paper_ms} ms ({:.1}%)",
            actual.as_ms(),
            err * 100.0
        );
    }

    #[test]
    fn embedding_times_match_table4_small() {
        let m = CpuTimingModel::aws_16vcpu();
        let model = ModelSpec::small_production();
        // Paper Table 4, smaller model CPU rows (ms).
        for (batch, paper) in
            [(1u64, 2.59), (64, 3.86), (256, 4.71), (512, 5.96), (1024, 8.39), (2048, 12.96)]
        {
            assert_close_ms(
                m.embedding_time(&model, batch),
                paper,
                0.12,
                &format!("small embedding B={batch}"),
            );
        }
    }

    #[test]
    fn embedding_times_match_table4_large() {
        let m = CpuTimingModel::aws_16vcpu();
        let model = ModelSpec::large_production();
        for (batch, paper) in
            [(1u64, 6.25), (64, 8.05), (256, 10.92), (512, 13.67), (1024, 18.11), (2048, 31.25)]
        {
            assert_close_ms(
                m.embedding_time(&model, batch),
                paper,
                0.18,
                &format!("large embedding B={batch}"),
            );
        }
    }

    #[test]
    fn total_times_match_table2_small() {
        let m = CpuTimingModel::aws_16vcpu();
        let model = ModelSpec::small_production();
        for (batch, paper) in
            [(1u64, 3.34), (64, 5.41), (256, 8.15), (512, 11.15), (1024, 17.17), (2048, 28.18)]
        {
            assert_close_ms(
                m.total_time(&model, batch),
                paper,
                0.15,
                &format!("small total B={batch}"),
            );
        }
    }

    #[test]
    fn total_times_match_table2_large() {
        let m = CpuTimingModel::aws_16vcpu();
        let model = ModelSpec::large_production();
        for (batch, paper) in
            [(1u64, 7.48), (64, 10.23), (256, 15.62), (512, 21.06), (1024, 31.72), (2048, 56.98)]
        {
            assert_close_ms(
                m.total_time(&model, batch),
                paper,
                0.18,
                &format!("large total B={batch}"),
            );
        }
    }

    #[test]
    fn gops_match_table2() {
        let m = CpuTimingModel::aws_16vcpu();
        let small = ModelSpec::small_production();
        let gops = m.throughput_ops_per_sec(&small, 2048) / 1e9;
        // Paper: 147.65 GOP/s at B=2048.
        assert!((gops - 147.65).abs() / 147.65 < 0.15, "small GOP/s {gops:.1}");
        let large = ModelSpec::large_production();
        let gops = m.throughput_ops_per_sec(&large, 2048) / 1e9;
        // Paper: 111.89 GOP/s.
        assert!((gops - 111.89).abs() / 111.89 < 0.18, "large GOP/s {gops:.1}");
    }

    #[test]
    fn efficiency_curve_is_monotone_and_interpolates() {
        let m = CpuTimingModel::aws_16vcpu();
        let mut prev = 0.0;
        for b in [1u64, 2, 8, 64, 100, 256, 300, 512, 1024, 2048, 4096, 100_000] {
            let e = m.gemm_efficiency(b);
            assert!(e >= prev, "efficiency not monotone at {b}");
            assert!(e > 0.0 && e < 1.0);
            prev = e;
        }
        assert_eq!(m.gemm_efficiency(0), m.gemm_efficiency(1));
        assert_eq!(m.gemm_efficiency(1_000_000), 0.47);
    }

    #[test]
    fn framework_overhead_scales_with_tables() {
        let m = CpuTimingModel::aws_16vcpu();
        let small = ModelSpec::small_production();
        let large = ModelSpec::large_production();
        let ratio =
            m.framework_overhead(&large, 1).as_ns() / m.framework_overhead(&small, 1).as_ns();
        assert!((ratio - 98.0 / 47.0).abs() < 1e-9);
    }

    #[test]
    fn latency_requirement_context() {
        // The paper's framing: CPU latencies are milliseconds, against an
        // SLA of tens of milliseconds — batch 2048 on the large model
        // already breaks a 50 ms SLA.
        let m = CpuTimingModel::aws_16vcpu();
        let large = ModelSpec::large_production();
        assert!(m.total_time(&large, 2048).as_ms() > 50.0);
        assert!(m.total_time(&large, 1).as_ms() > 1.0);
    }

    #[test]
    fn facebook_baseline_constant() {
        // Cross-check: Table 5's speedup x MicroRec-latency products all
        // resolve to the same baseline, e.g. 334.5 ns x 72.4 = 24.2 us and
        // 1296.9 ns x 18.7 = 24.3 us.
        let t = facebook_rmc2_baseline_lookup();
        assert!((t.as_us() - 334.5e-3 * 72.4).abs() < 0.1);
        assert!((t.as_us() - 1296.9e-3 * 18.7).abs() < 0.15);
    }
}
