//! Staged dataflow pipeline: the monolithic predict path decomposed into
//! FIFO-connected stages, mirroring the paper's accelerator structure
//! (Figure 1: embedding lookup → concatenation → one PE group per FC
//! layer, coupled by on-chip FIFOs so item *i+1*'s lookup overlaps item
//! *i*'s GEMM).
//!
//! Each stage runs on its own thread and owns exactly one unit of work:
//! the **lookup** stage owns the engine (memory simulator, arena, cache)
//! and produces the quantized concatenated feature vector; each **fc**
//! stage owns one layer's pre-packed weights ([`PackedLayer`]) and a
//! private scratch buffer it ping-pongs with the job's payload; the
//! **sink** stage turns the final activation into the CTR and recycles
//! the job shell back to the caller. Stages are connected by the bounded
//! SPSC rings vendored in `microrec-par` ([`SpscRing`]), so a full
//! downstream stage backpressures its producer exactly like a full
//! hardware FIFO stalls the upstream PE group.
//!
//! Results are **bit-identical** to [`MicroRec::predict`]: the lookup
//! stage reuses the engine's own gather (`gather_features_into`), the fc
//! stages drive the same [`PackedLayer::forward_batch`] kernel the
//! batched fast path uses (itself bit-identical to `Mlp::forward`), and
//! the sink applies the same final `to_f32`.
//!
//! Failure containment: a malformed query turns into an error *job* that
//! flows through the remaining stages untouched, so one bad item never
//! stalls its neighbours. A panicking stage closes its rings on unwind;
//! the close cascades stage by stage to the result ring, every in-flight
//! item fails with a runtime error, and the executor reports unhealthy —
//! it never wedges.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;

use microrec_dnn::{FixedNum, PackedLayer, PackedMlp, Q16, Q32};
use microrec_embedding::Precision;
use microrec_par::{SpscPushError, SpscRing};

use crate::engine::MicroRec;
use crate::error::MicroRecError;

/// How the serving runtime executes inference on each worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// The classic path: one thread per worker runs gather + full MLP
    /// back to back through [`MicroRec::predict_batch`].
    #[default]
    Monolithic,
    /// The staged dataflow path: each worker owns a [`PipelineExecutor`]
    /// whose lookup/fc/sink stages run on their own threads, connected by
    /// bounded FIFOs.
    Pipelined,
}

/// Configuration of a [`PipelineExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Capacity of each inter-stage FIFO, in jobs. Depth 1 serializes the
    /// stages (useful as a counter-case); the default of 4 lets short
    /// stage-time imbalances absorb into the rings.
    pub fifo_depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { fifo_depth: 4 }
    }
}

/// Point-in-time counters of one pipeline stage (summed across workers
/// when read through the serving runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage name: `"lookup"`, `"fc0"`…`"fcN"`, or `"sink"`.
    pub name: String,
    /// Jobs this stage processed.
    pub items: u64,
    /// Pops that found the input FIFO empty (the stage was starved).
    pub stalls: u64,
    /// Pushes that found the output FIFO full (the stage was blocked by
    /// its consumer).
    pub backpressure: u64,
    /// Sum over pops of the input-FIFO occupancy observed at that pop
    /// (including the popped job); divide by `items` for the mean.
    pub occupancy_sum: u64,
}

impl StageSnapshot {
    /// Mean input-FIFO occupancy observed at pop time (0 when idle).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.items as f64
        }
    }
}

/// Live counters of one stage, updated by its thread with relaxed stores.
#[derive(Debug)]
struct StageState {
    name: String,
    items: AtomicU64,
    stalls: AtomicU64,
    backpressure: AtomicU64,
    occupancy_sum: AtomicU64,
}

impl StageState {
    fn named(name: String) -> Self {
        StageState {
            name,
            items: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            backpressure: AtomicU64::new(0),
            occupancy_sum: AtomicU64::new(0),
        }
    }
}

/// Counter block shared between the stage threads, the executor, and the
/// serving runtime's snapshot path.
#[derive(Debug)]
pub(crate) struct PipelineShared {
    stages: Vec<StageState>,
    poisoned: AtomicBool,
}

impl PipelineShared {
    pub(crate) fn snapshots(&self) -> Vec<StageSnapshot> {
        self.stages
            .iter()
            .map(|s| StageSnapshot {
                name: s.name.clone(),
                items: s.items.load(Relaxed),
                stalls: s.stalls.load(Relaxed),
                backpressure: s.backpressure.load(Relaxed),
                occupancy_sum: s.occupancy_sum.load(Relaxed),
            })
            .collect()
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Relaxed)
    }
}

/// Sentinel: no stage is poisoned (jobs carry this in `poison_at`).
const NO_POISON: usize = usize::MAX;

/// One query's travelling state. The shell (both `Vec`s) is recycled
/// through the owner's free list, so the steady-state pipeline allocates
/// nothing per item.
#[derive(Debug)]
struct PipeJob<T> {
    seq: u64,
    query: Vec<u64>,
    data: Vec<T>,
    err: Option<MicroRecError>,
    poison_at: usize,
}

/// What the sink hands back: the answer plus the job shell for reuse.
#[derive(Debug)]
struct PipeResult<T> {
    seq: u64,
    value: Result<f32, MicroRecError>,
    shell: PipeJob<T>,
}

/// Counted pop: records a stall when the input ring is empty and the
/// observed occupancy + item count on success.
fn pop_counted<T>(ring: &SpscRing<T>, stage: &StageState) -> Option<T> {
    if ring.is_empty() && !ring.is_closed() {
        stage.stalls.fetch_add(1, Relaxed);
    }
    let item = ring.pop_blocking()?;
    stage.occupancy_sum.fetch_add(ring.len() as u64 + 1, Relaxed);
    stage.items.fetch_add(1, Relaxed);
    Some(item)
}

/// Counted push: records backpressure when the output ring is full, then
/// blocks until space frees. `Err` hands the item back on a closed ring.
fn push_counted<T>(ring: &SpscRing<T>, stage: &StageState, item: T) -> Result<(), T> {
    match ring.try_push(item) {
        Ok(()) => Ok(()),
        Err(SpscPushError::Closed(item)) => Err(item),
        Err(SpscPushError::Full(item)) => {
            stage.backpressure.fetch_add(1, Relaxed);
            ring.push_blocking(item)
        }
    }
}

/// Unwind guard every stage holds: closing both rings on exit — normal or
/// panicking — makes shutdown (and stage failure) cascade through the
/// pipeline instead of wedging it. On a panic it also marks the pipeline
/// poisoned so the owner can report *why* the rings died.
struct StageGuard<'a, In, Out> {
    input: &'a SpscRing<In>,
    output: &'a SpscRing<Out>,
    shared: &'a PipelineShared,
}

impl<In, Out> Drop for StageGuard<'_, In, Out> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.poisoned.store(true, Relaxed);
        }
        self.input.close();
        self.output.close();
    }
}

/// Stage 0: owns the engine; gathers + quantizes the feature vector.
fn lookup_loop<T: FixedNum>(
    mut engine: MicroRec,
    input: &SpscRing<PipeJob<T>>,
    output: &SpscRing<PipeJob<T>>,
    shared: &PipelineShared,
) -> MicroRec {
    let _guard = StageGuard { input, output, shared };
    let stage = &shared.stages[0];
    let mut features: Vec<f32> = Vec::with_capacity(engine.model().feature_len() as usize);
    while let Some(mut job) = pop_counted(input, stage) {
        if job.err.is_none() {
            if job.poison_at == 0 {
                // lint: allow(no-panic-serving) test-only fault injection; the guard contains it
                panic!("pipeline stage 'lookup' poisoned by test hook");
            }
            match engine.gather_features_into(&job.query, &mut features) {
                Ok(()) => {
                    job.data.clear();
                    job.data.extend(features.iter().map(|&v| T::from_f32(v)));
                }
                Err(e) => job.err = Some(e),
            }
        }
        if push_counted(output, stage, job).is_err() {
            break;
        }
    }
    engine
}

/// Stages 1..=L: each owns one packed FC layer and a scratch buffer it
/// ping-pongs with the job's payload.
fn fc_loop<T: FixedNum>(
    layer: &PackedLayer<T>,
    index: usize,
    input: &SpscRing<PipeJob<T>>,
    output: &SpscRing<PipeJob<T>>,
    shared: &PipelineShared,
) {
    let _guard = StageGuard { input, output, shared };
    let stage = &shared.stages[index];
    let mut scratch: Vec<T> = Vec::with_capacity(layer.output_dim());
    while let Some(mut job) = pop_counted(input, stage) {
        if job.err.is_none() {
            if job.poison_at == index {
                // lint: allow(no-panic-serving) test-only fault injection; the guard contains it
                panic!("pipeline stage 'fc{}' poisoned by test hook", index - 1);
            }
            match layer.forward_batch(&job.data, 1, &mut scratch) {
                Ok(()) => std::mem::swap(&mut job.data, &mut scratch),
                Err(e) => job.err = Some(MicroRecError::Dnn(e)),
            }
        }
        if push_counted(output, stage, job).is_err() {
            break;
        }
    }
}

/// Final stage: converts the last activation (or the carried error) into
/// the caller-visible result and sends the emptied shell back for reuse.
fn sink_loop<T: FixedNum>(
    index: usize,
    input: &SpscRing<PipeJob<T>>,
    output: &SpscRing<PipeResult<T>>,
    shared: &PipelineShared,
) {
    let _guard = StageGuard { input, output, shared };
    let stage = &shared.stages[index];
    while let Some(mut job) = pop_counted(input, stage) {
        if job.err.is_none() && job.poison_at == index {
            // lint: allow(no-panic-serving) test-only fault injection; the guard contains it
            panic!("pipeline stage 'sink' poisoned by test hook");
        }
        let value = match job.err.take() {
            Some(e) => Err(e),
            None => Ok(job.data.first().map_or(0.0, |v| v.to_f32())),
        };
        job.query.clear();
        job.data.clear();
        let seq = job.seq;
        if push_counted(output, stage, PipeResult { seq, value, shell: job }).is_err() {
            break;
        }
    }
}

/// The executor at one concrete datapath precision.
#[derive(Debug)]
struct TypedPipeline<T> {
    submit: Arc<SpscRing<PipeJob<T>>>,
    results: Arc<SpscRing<PipeResult<T>>>,
    shared: Arc<PipelineShared>,
    /// Recycled job shells; bounded by the pipeline's in-flight capacity.
    free: Vec<PipeJob<T>>,
    next_seq: u64,
    poison_at: usize,
    lookup: Option<JoinHandle<MicroRec>>,
    stages: Vec<JoinHandle<()>>,
}

impl<T: FixedNum + Send + Sync> TypedPipeline<T> {
    fn build(engine: MicroRec, fifo_depth: usize) -> Result<Self, MicroRecError> {
        let depth = fifo_depth.max(1);
        let packed: PackedMlp<T> = PackedMlp::pack(engine.mlp());
        let layers = packed.into_layers();
        let num_layers = layers.len();
        let num_stages = num_layers + 2;

        let mut stage_states = Vec::with_capacity(num_stages);
        stage_states.push(StageState::named("lookup".to_string()));
        for i in 0..num_layers {
            stage_states.push(StageState::named(format!("fc{i}")));
        }
        stage_states.push(StageState::named("sink".to_string()));
        let shared =
            Arc::new(PipelineShared { stages: stage_states, poisoned: AtomicBool::new(false) });

        // rings[i] feeds stage i; the sink writes the separate result ring.
        let rings: Vec<Arc<SpscRing<PipeJob<T>>>> =
            (0..num_stages).map(|_| Arc::new(SpscRing::new(depth))).collect();
        // The result ring can hold everything that can possibly be in
        // flight (every ring slot plus one job in each stage's hands), so
        // the sink never blocks on an owner that is still submitting.
        let results: Arc<SpscRing<PipeResult<T>>> =
            Arc::new(SpscRing::new(num_stages * (depth + 1) + 1));

        let mut pipeline = TypedPipeline {
            submit: Arc::clone(&rings[0]),
            results: Arc::clone(&results),
            shared: Arc::clone(&shared),
            free: Vec::new(),
            next_seq: 0,
            poison_at: NO_POISON,
            lookup: None,
            stages: Vec::with_capacity(num_stages - 1),
        };

        let spawn_failed = |pipeline: &mut Self, name: &str, e: std::io::Error| {
            pipeline.submit.close();
            pipeline.join_all();
            MicroRecError::Runtime(format!("failed to spawn pipeline stage {name}: {e}"))
        };

        let handle = std::thread::Builder::new().name("microrec-stage-lookup".to_string()).spawn({
            let input = Arc::clone(&rings[0]);
            let output = Arc::clone(&rings[1]);
            let shared = Arc::clone(&shared);
            move || lookup_loop(engine, &input, &output, &shared)
        });
        match handle {
            Ok(h) => pipeline.lookup = Some(h),
            Err(e) => return Err(spawn_failed(&mut pipeline, "lookup", e)),
        }

        for (i, layer) in layers.into_iter().enumerate() {
            let index = i + 1;
            let handle = std::thread::Builder::new().name(format!("microrec-stage-fc{i}")).spawn({
                let input = Arc::clone(&rings[index]);
                let output = Arc::clone(&rings[index + 1]);
                let shared = Arc::clone(&shared);
                move || fc_loop(&layer, index, &input, &output, &shared)
            });
            match handle {
                Ok(h) => pipeline.stages.push(h),
                Err(e) => return Err(spawn_failed(&mut pipeline, &format!("fc{i}"), e)),
            }
        }

        let sink_index = num_stages - 1;
        let handle = std::thread::Builder::new().name("microrec-stage-sink".to_string()).spawn({
            let input = Arc::clone(&rings[sink_index]);
            let output = Arc::clone(&results);
            let shared = Arc::clone(&shared);
            move || sink_loop(sink_index, &input, &output, &shared)
        });
        match handle {
            Ok(h) => pipeline.stages.push(h),
            Err(e) => return Err(spawn_failed(&mut pipeline, "sink", e)),
        }

        Ok(pipeline)
    }

    /// Why submissions or results fail once the rings are dead.
    fn dead_error(&self) -> MicroRecError {
        if self.shared.is_poisoned() {
            MicroRecError::Runtime("pipeline stage panicked; executor is dead".into())
        } else {
            MicroRecError::Runtime("pipeline is shut down".into())
        }
    }

    /// A job shell for `query`, recycled from the free list when one is
    /// available (steady state never allocates new shells).
    fn job_for(&mut self, query: &[u64]) -> PipeJob<T> {
        let mut job = self.free.pop().unwrap_or_else(|| PipeJob {
            seq: 0,
            query: Vec::new(),
            data: Vec::new(),
            err: None,
            poison_at: NO_POISON,
        });
        job.seq = self.next_seq;
        self.next_seq += 1;
        job.query.clear();
        job.query.extend_from_slice(query);
        job.data.clear();
        job.err = None;
        job.poison_at = self.poison_at;
        job
    }

    fn recycle(&mut self, mut shell: PipeJob<T>) {
        shell.query.clear();
        shell.data.clear();
        shell.err = None;
        self.free.push(shell);
    }

    /// One query through the whole pipeline (submit, then wait for its
    /// result). Bit-identical to the monolithic path.
    fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        let job = self.job_for(query);
        let want = job.seq;
        if let Err(rejected) = self.submit.push_blocking(job) {
            self.recycle(rejected);
            return Err(self.dead_error());
        }
        while let Some(result) = self.results.pop_blocking() {
            let seq = result.seq;
            let value = result.value;
            self.recycle(result.shell);
            if seq == want {
                return value;
            }
        }
        Err(self.dead_error())
    }

    /// Streams a batch through the pipeline, keeping every stage busy:
    /// submissions interleave with result drains, so up to the pipeline's
    /// whole in-flight capacity of queries overlap. Results come back in
    /// submission order (the pipeline is a FIFO of FIFOs). Matches
    /// [`MicroRec::predict_batch`]: any failed item fails the batch.
    fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        let mut out = Vec::with_capacity(queries.len());
        let mut first_err: Option<MicroRecError> = None;
        let mut submitted = 0usize;
        while out.len() < queries.len() {
            // Fill the submit ring without blocking.
            while submitted < queries.len() {
                let job = self.job_for(&queries[submitted]);
                match self.submit.try_push(job) {
                    Ok(()) => submitted += 1,
                    Err(SpscPushError::Full(job)) => {
                        self.recycle(job);
                        self.next_seq -= 1;
                        break;
                    }
                    Err(SpscPushError::Closed(job)) => {
                        self.recycle(job);
                        return Err(self.dead_error());
                    }
                }
            }
            // Drain one result. Blocking is safe: out.len() < submitted
            // here (a full submit ring implies jobs in flight), so the
            // pipeline always has something to deliver.
            match self.results.pop_blocking() {
                Some(result) => {
                    match result.value {
                        Ok(v) => out.push(v),
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                            out.push(f32::NAN);
                        }
                    }
                    self.recycle(result.shell);
                }
                None => return Err(self.dead_error()),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    fn join_all(&mut self) -> Option<MicroRec> {
        let engine = self.lookup.take().and_then(|h| h.join().ok());
        for handle in self.stages.drain(..) {
            let _ = handle.join();
        }
        engine
    }

    /// Closes the submit ring, drains the stages, joins their threads,
    /// and hands the engine back (None if the lookup stage panicked).
    fn shutdown(&mut self) -> Option<MicroRec> {
        self.submit.close();
        self.join_all()
    }
}

impl<T> Drop for TypedPipeline<T> {
    fn drop(&mut self) {
        self.submit.close();
        let _ = self.lookup.take().map(JoinHandle::join);
        for handle in self.stages.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Precision dispatch: the pipeline is monomorphized per datapath type,
/// chosen once from the engine's precision.
#[derive(Debug)]
enum TypedExecutor {
    F32(TypedPipeline<f32>),
    Q16(TypedPipeline<Q16>),
    Q32(TypedPipeline<Q32>),
}

/// Runs a [`MicroRec`] engine as a staged dataflow pipeline: one thread
/// per stage (lookup, one per FC layer, sink) connected by bounded SPSC
/// FIFOs, with per-stage occupancy/stall/backpressure counters.
///
/// Predictions are bit-identical to [`MicroRec::predict`] at every
/// precision and arena format; see the module docs for the argument.
///
/// # Examples
///
/// ```
/// use microrec_core::{MicroRec, PipelineConfig, PipelineExecutor};
/// use microrec_embedding::ModelSpec;
///
/// let engine = MicroRec::builder(ModelSpec::dlrm_rmc2(4, 4)).build()?;
/// let mut exec = PipelineExecutor::new(engine, PipelineConfig::default())?;
/// let ctr = exec.predict(&vec![7u64; 16])?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// let stats = exec.stage_stats();
/// assert_eq!(stats.first().map(|s| s.name.as_str()), Some("lookup"));
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
#[derive(Debug)]
pub struct PipelineExecutor {
    inner: TypedExecutor,
}

impl PipelineExecutor {
    /// Decomposes `engine` into stages and starts one thread per stage.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError::Runtime`] if a stage thread cannot be
    /// spawned (already-spawned stages are shut down and joined).
    pub fn new(engine: MicroRec, config: PipelineConfig) -> Result<Self, MicroRecError> {
        let inner = match engine.precision() {
            Precision::F32 => TypedExecutor::F32(TypedPipeline::build(engine, config.fifo_depth)?),
            Precision::Fixed16 => {
                TypedExecutor::Q16(TypedPipeline::build(engine, config.fifo_depth)?)
            }
            Precision::Fixed32 => {
                TypedExecutor::Q32(TypedPipeline::build(engine, config.fifo_depth)?)
            }
        };
        Ok(PipelineExecutor { inner })
    }

    /// Predicts one query's CTR through the staged pipeline.
    ///
    /// # Errors
    ///
    /// Returns the engine's error for a malformed query (the error rode
    /// through the pipeline as a failed job), or
    /// [`MicroRecError::Runtime`] once the executor is dead.
    pub fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.predict(query),
            TypedExecutor::Q16(p) => p.predict(query),
            TypedExecutor::Q32(p) => p.predict(query),
        }
    }

    /// Streams a batch through the pipeline with all stages overlapping.
    /// Output order matches input order; any failed item fails the batch
    /// (same contract as [`MicroRec::predict_batch`]).
    ///
    /// # Errors
    ///
    /// Returns the first per-item engine error, or
    /// [`MicroRecError::Runtime`] once the executor is dead.
    pub fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.predict_batch(queries),
            TypedExecutor::Q16(p) => p.predict_batch(queries),
            TypedExecutor::Q32(p) => p.predict_batch(queries),
        }
    }

    /// Per-stage counters: items, stalls, backpressure, occupancy.
    #[must_use]
    pub fn stage_stats(&self) -> Vec<StageSnapshot> {
        self.shared().snapshots()
    }

    /// Number of stages (lookup + FC layers + sink).
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.shared().stages.len()
    }

    /// `false` once any stage thread has panicked.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        !self.shared().is_poisoned()
    }

    /// The counter block, for the serving runtime's snapshot path.
    pub(crate) fn shared(&self) -> &Arc<PipelineShared> {
        match &self.inner {
            TypedExecutor::F32(p) => &p.shared,
            TypedExecutor::Q16(p) => &p.shared,
            TypedExecutor::Q32(p) => &p.shared,
        }
    }

    /// Shuts the pipeline down (close, drain, join) and returns the
    /// engine — with its accumulated memory/cache statistics — unless the
    /// lookup stage panicked.
    #[must_use]
    pub fn shutdown(mut self) -> Option<MicroRec> {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.shutdown(),
            TypedExecutor::Q16(p) => p.shutdown(),
            TypedExecutor::Q32(p) => p.shutdown(),
        }
    }

    /// Test hook: every job submitted after this call panics the given
    /// stage (0 = lookup, 1..=L = fc layers, L+1 = sink), simulating a
    /// stage fault. Not part of the public API.
    #[doc(hidden)]
    pub fn poison_stage(&mut self, index: usize) {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.poison_at = index,
            TypedExecutor::Q16(p) => p.poison_at = index,
            TypedExecutor::Q32(p) => p.poison_at = index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_embedding::ModelSpec;

    fn toy_engine() -> MicroRec {
        MicroRec::builder(ModelSpec::dlrm_rmc2(4, 4)).seed(11).build().unwrap()
    }

    #[test]
    fn executor_matches_monolithic_predict() {
        let mut mono = toy_engine();
        let mut exec = PipelineExecutor::new(toy_engine(), PipelineConfig::default()).unwrap();
        // Stages: lookup + one per hidden layer + the output layer + sink.
        assert_eq!(exec.num_stages(), 3 + mono.model().hidden.len());
        for k in 0..30u64 {
            let q: Vec<u64> = (0..16).map(|j| (k * 7919 + j * 104_729) % 500_000).collect();
            let want = mono.predict(&q).unwrap();
            let got = exec.predict(&q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "query {k}");
        }
        let stats = exec.stage_stats();
        assert_eq!(stats.len(), exec.num_stages());
        assert!(stats.iter().all(|s| s.items == 30), "{stats:?}");
        assert_eq!(stats[0].name, "lookup");
        assert_eq!(stats.last().unwrap().name, "sink");
    }

    #[test]
    fn malformed_query_fails_item_not_pipeline() {
        let mut exec = PipelineExecutor::new(toy_engine(), PipelineConfig::default()).unwrap();
        assert!(exec.predict(&[0u64; 3]).is_err(), "wrong arity must fail");
        // The pipeline survives and keeps serving.
        assert!(exec.is_healthy());
        let q = vec![5u64; 16];
        assert!(exec.predict(&q).is_ok());
    }

    #[test]
    fn shutdown_returns_engine_with_stats() {
        let mut exec = PipelineExecutor::new(toy_engine(), PipelineConfig::default()).unwrap();
        let q = vec![9u64; 16];
        exec.predict(&q).unwrap();
        let engine = exec.shutdown().expect("engine comes back");
        // 4 tables x 4 rounds of physical reads ran against its memory.
        assert_eq!(engine.memory().stats().total().reads, 16);
    }

    #[test]
    fn fifo_depth_one_still_correct() {
        let mut mono = toy_engine();
        let mut exec =
            PipelineExecutor::new(toy_engine(), PipelineConfig { fifo_depth: 1 }).unwrap();
        let queries: Vec<Vec<u64>> =
            (0..10).map(|k| (0..16).map(|j| (k * 13 + j) as u64 % 1000).collect()).collect();
        let want: Vec<f32> = queries.iter().map(|q| mono.predict(q).unwrap()).collect();
        let got = exec.predict_batch(&queries).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
