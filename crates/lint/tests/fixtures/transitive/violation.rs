//! Cross-file transitive roots: `serve_batch` is designated hot and
//! serving; its helper lives in `callee.rs`, so the witness chain in
//! each finding crosses a file boundary.

pub fn serve_batch(queries: &[u64]) -> usize {
    assemble_report(queries)
}
