//! Host→FPGA streaming model (the paper's footnote 2, measured).
//!
//! The authors could not stream input features from the host because
//! "Vitis does not yet support streaming from the host server to a Xilinx
//! U280", so they prototyped with features cached on-FPGA — all published
//! numbers exclude the host link. This module models the missing stage (a
//! PCIe DMA with per-transfer setup latency and sustained bandwidth) so
//! the natural question — *would streaming change the results?* — gets an
//! answer: an inference item's payload is a few hundred bytes of indices
//! and dense features, so the link stage is orders of magnitude below the
//! compute bottleneck.

use microrec_embedding::ModelSpec;
use microrec_memsim::SimTime;

use crate::pipeline::{Pipeline, Stage};

/// Parameters of the host↔FPGA link.
///
/// # Examples
///
/// ```
/// use microrec_accel::HostLink;
/// use microrec_embedding::ModelSpec;
///
/// let link = HostLink::pcie_gen3_x16();
/// let model = ModelSpec::small_production();
/// // 47 four-byte indices per item: the wire time is trivial.
/// assert_eq!(HostLink::item_bytes(&model), 188);
/// assert!(link.stage_time(&model).as_ns() < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLink {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Fixed per-transfer (DMA descriptor) latency.
    pub setup: SimTime,
    /// Items aggregated per DMA transfer (1 = per-item streaming).
    pub items_per_transfer: u32,
}

impl HostLink {
    /// PCIe Gen3 x16 as on the U280: ~12 GB/s sustained, ~1 µs DMA setup.
    #[must_use]
    pub fn pcie_gen3_x16() -> Self {
        HostLink { bandwidth: 12.0e9, setup: SimTime::from_us(1.0), items_per_transfer: 64 }
    }

    /// Input payload bytes of one inference item: one 4-byte index per
    /// lookup plus the dense features (f32 each).
    #[must_use]
    pub fn item_bytes(model: &ModelSpec) -> u64 {
        u64::from(model.lookups_per_item()) * 4 + u64::from(model.dense_dim) * 4
    }

    /// Effective per-item time of the link stage (setup amortized over the
    /// transfer's items).
    #[must_use]
    pub fn stage_time(&self, model: &ModelSpec) -> SimTime {
        let items = u64::from(self.items_per_transfer.max(1));
        let bytes = Self::item_bytes(model) * items;
        let wire = SimTime::from_ns(bytes as f64 / self.bandwidth * 1e9);
        (self.setup + wire) / items
    }

    /// A copy of `pipeline` with the host-link stage prepended.
    #[must_use]
    pub fn attach(&self, pipeline: &Pipeline, model: &ModelSpec) -> Pipeline {
        let mut stages =
            vec![Stage { name: "host.stream".to_string(), time: self.stage_time(model) }];
        stages.extend(pipeline.stages().iter().cloned());
        Pipeline::from_stages(stages, pipeline.clock_hz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use microrec_embedding::Precision;

    fn pipe(model: &ModelSpec) -> Pipeline {
        let cfg = AccelConfig::for_model(model, Precision::Fixed16);
        Pipeline::build(model, &cfg, SimTime::from_ns(485.0)).unwrap()
    }

    #[test]
    fn item_payload_is_small() {
        let small = ModelSpec::small_production();
        // 47 indices x 4 bytes.
        assert_eq!(HostLink::item_bytes(&small), 188);
        let dlrm = ModelSpec::dlrm_rmc2(8, 16);
        assert_eq!(HostLink::item_bytes(&dlrm), 8 * 4 * 4);
    }

    #[test]
    fn streaming_does_not_change_the_bottleneck() {
        // The question footnote 2 leaves open.
        let model = ModelSpec::small_production();
        let base = pipe(&model);
        let with_link = HostLink::pcie_gen3_x16().attach(&base, &model);
        assert_eq!(with_link.stages().len(), base.stages().len() + 1);
        assert_eq!(with_link.stages()[0].name, "host.stream");
        assert_eq!(
            with_link.initiation_interval(),
            base.initiation_interval(),
            "PCIe streaming must not become the bottleneck"
        );
        // Latency grows by well under a microsecond per item.
        let delta = with_link.latency() - base.latency();
        assert!(delta.as_ns() < 1_000.0, "link adds {delta}");
        assert!(with_link.bottleneck().contains("compute"));
    }

    #[test]
    fn per_item_streaming_pays_full_setup() {
        let model = ModelSpec::small_production();
        let mut link = HostLink::pcie_gen3_x16();
        link.items_per_transfer = 1;
        // 1 us setup per item: now the link *is* near the II scale.
        let t = link.stage_time(&model);
        assert!(t.as_us() >= 1.0);
        link.items_per_transfer = 64;
        assert!(link.stage_time(&model) < t, "batched DMA amortizes setup");
    }

    #[test]
    fn wire_time_scales_with_payload() {
        let link = HostLink::pcie_gen3_x16();
        let small = ModelSpec::dlrm_rmc2(8, 4);
        let large = ModelSpec::dlrm_rmc2(12, 4);
        assert!(link.stage_time(&large) > link.stage_time(&small));
    }
}
