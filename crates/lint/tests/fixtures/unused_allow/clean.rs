//! No escape hatches at all: nothing can be stale.

pub fn tidy() -> u32 {
    7
}
