//! Embedding-lookup fast-path benchmark: wall-clock gather throughput of
//! the legacy per-table path vs the contiguous [`EmbeddingArena`] (f32,
//! f16, i8 rows) with and without the [`HotRowCache`], under Zipf(1.05)
//! and uniform traffic. Emits one JSON record per point (committed as
//! `BENCH_lookup.json`).
//!
//! The bin also enforces the fast path's functional contracts before
//! timing anything: the f32 arena must gather bit-identically to the
//! legacy tables, and for every row format the cache-fronted path must be
//! bit-identical to the same storage without a cache.
//!
//! Run with `cargo run --release -p microrec-bench --bin lookup`
//! (`-- --smoke` for the time-bounded CI variant).

use std::hint::black_box;
use std::time::Instant;

use microrec_embedding::{
    EmbeddingArena, EmbeddingTable, HotRowCache, ModelSpec, RowFormat, TableSpec,
};
use microrec_json::ToJson;
use microrec_workload::{QueryGenConfig, QueryGenerator};

/// Logical embedding tables.
const TABLES: usize = 16;
/// Row dimension (f32 elements per row).
const DIM: u32 = 32;
/// Simulated memory channels the arena is striped over.
const CHANNELS: usize = 8;
/// Hot-row cache capacity in rows (128K rows × 128 B = 16 MiB). Sized as
/// a hot tier the way HugeCTR's parameter server sizes its GPU cache —
/// a double-digit percentage of the row space — so the Zipf(1.05) head
/// fits; uniform traffic does not fit, and the bench reports both
/// regimes.
const CACHE_ROWS: usize = 131_072;
/// Cache associativity.
const CACHE_WAYS: usize = 8;

/// One measured configuration, serialized into `BENCH_lookup.json`.
#[derive(Debug, Clone, PartialEq)]
struct LookupPoint {
    /// Traffic distribution (`"zipf-1.05"` or `"uniform"`).
    dist: String,
    /// Row storage (`"legacy"`, `"f32"`, `"f16"`, `"i8"`).
    storage: String,
    /// Cache capacity in rows (0 = cache off).
    cache_rows: u64,
    /// Mean wall-clock time per row gathered.
    ns_per_lookup: f64,
    /// Steady-state cache hit rate (0 when the cache is off).
    hit_rate: f64,
    /// Speedup over the legacy no-cache path under the same traffic.
    speedup_vs_legacy: f64,
    /// Feature bytes served from the cache during the timed passes.
    bytes_from_cache: u64,
    /// Source-row bytes fetched from storage during the timed passes.
    bytes_from_memory: u64,
}

microrec_json::impl_json_struct!(
    LookupPoint,
    required {
        dist,
        storage,
        cache_rows,
        ns_per_lookup,
        hit_rate,
        speedup_vs_legacy,
        bytes_from_cache,
        bytes_from_memory,
    }
);

/// Row storage backing one gather configuration.
enum Storage<'a> {
    Legacy(&'a [EmbeddingTable]),
    Arena(&'a EmbeddingArena),
}

impl Storage<'_> {
    fn label(&self) -> &'static str {
        match self {
            Storage::Legacy(_) => "legacy",
            Storage::Arena(a) => a.format().as_str(),
        }
    }

    /// Reads one row into `slot`, returning the source bytes it cost.
    fn read_row_into(&self, table: usize, row: u64, slot: &mut [f32]) -> usize {
        match self {
            Storage::Legacy(tables) => {
                tables[table].read_row(row, slot).expect("legacy read");
                slot.len() * 4
            }
            Storage::Arena(arena) => {
                arena.read_row_into(table, row, slot).expect("arena read");
                arena.source_row_bytes(table)
            }
        }
    }
}

/// Cache-fronted gather state: the cache plus its reusable miss scratch.
struct CachedPath {
    cache: HotRowCache,
    misses: Vec<usize>,
}

impl CachedPath {
    fn new() -> Self {
        CachedPath {
            cache: HotRowCache::new(&[DIM; TABLES], CACHE_ROWS, CACHE_WAYS),
            misses: Vec::with_capacity(TABLES),
        }
    }
}

/// Gathers one query's rows into `out`, optionally through the cache.
/// The cached path probes the whole round first, then services misses in
/// bulk, so independent cache-line fetches overlap.
fn gather(storage: &Storage<'_>, cached: Option<&mut CachedPath>, query: &[u64], out: &mut [f32]) {
    let dim = DIM as usize;
    match cached {
        Some(path) => {
            path.cache.probe_round(query, out, &mut path.misses);
            for &table in &path.misses {
                let slot = &mut out[table * dim..(table + 1) * dim];
                let bytes = storage.read_row_into(table, query[table], slot);
                path.cache.insert(table, query[table], slot, bytes);
            }
        }
        None => match storage {
            Storage::Arena(arena) => arena.gather_into(query, out).expect("arena gather"),
            Storage::Legacy(_) => {
                for (table, &row) in query.iter().enumerate() {
                    storage.read_row_into(table, row, &mut out[table * dim..(table + 1) * dim]);
                }
            }
        },
    }
}

/// Times `passes` full sweeps over `queries`, returning ns per row
/// gathered for the fastest pass (robust to scheduler interference) plus
/// the cache's steady-state counters accumulated over every timed pass.
fn measure(
    storage: &Storage<'_>,
    mut cached: Option<CachedPath>,
    queries: &[Vec<u64>],
    passes: usize,
) -> (f64, f64, u64, u64) {
    let mut out = vec![0.0f32; TABLES * DIM as usize];
    // Warm pass: faults the arena pages in and fills the cache.
    for q in queries {
        gather(storage, cached.as_mut(), q, &mut out);
    }
    if let Some(p) = cached.as_mut() {
        p.cache.reset_stats();
    }
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for q in queries {
            gather(storage, cached.as_mut(), q, &mut out);
            black_box(out[0]);
        }
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    let lookups = (queries.len() * TABLES) as f64;
    match cached {
        Some(p) => (
            best / lookups,
            p.cache.hit_rate(),
            p.cache.bytes_from_cache(),
            p.cache.bytes_from_memory(),
        ),
        None => (best / lookups, 0.0, 0, 0),
    }
}

/// Generates `n` queries (one row per table) from the model's generator.
fn generate(model: &ModelSpec, zipf: f64, n: usize) -> Vec<Vec<u64>> {
    let mut gen = QueryGenerator::new(model, QueryGenConfig { zipf_exponent: zipf, seed: 0xB00C })
        .expect("generator");
    (0..n).map(|_| gen.next_query()).collect()
}

/// Every configuration must produce bit-identical features to the legacy
/// cacheless gather (f32 storage) or to its own cacheless gather
/// (quantized storage): the cache must never change a single bit.
fn check_bit_identity(tables: &[EmbeddingTable], arenas: &[EmbeddingArena], queries: &[Vec<u64>]) {
    let dim = DIM as usize;
    let mut expected = vec![0.0f32; TABLES * dim];
    let mut got = vec![0.0f32; TABLES * dim];
    for arena in arenas {
        let storage = Storage::Arena(arena);
        let mut path = CachedPath::new();
        for q in queries {
            gather(&storage, None, q, &mut expected);
            if arena.format() == RowFormat::F32 {
                // f32 arena ≡ legacy tables, bit for bit.
                gather(&Storage::Legacy(tables), None, q, &mut got);
                assert_eq!(bits(&got), bits(&expected), "f32 arena diverged from legacy");
            }
            // Cache-on ≡ cache-off for every storage format.
            gather(&storage, Some(&mut path), q, &mut got);
            assert_eq!(bits(&got), bits(&expected), "{} cache diverged", arena.format());
        }
        assert!(path.cache.hits() > 0, "identity stream never hit the cache");
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rows_per_table, num_queries, passes) =
        if smoke { (20_000u64, 2_000usize, 2usize) } else { (25_000, 20_000, 5) };

    let specs: Vec<TableSpec> = (0..TABLES)
        .map(|i| TableSpec::new(format!("lookup_{i:02}"), rows_per_table, DIM))
        .collect();
    let model = ModelSpec::new("lookup-bench", specs, vec![64], 1);
    let tables: Vec<EmbeddingTable> = model
        .tables
        .iter()
        .enumerate()
        .map(|(i, spec)| EmbeddingTable::procedural(spec.clone(), 0x10_0C + i as u64))
        .collect();
    let channel_of: Vec<usize> = (0..TABLES).map(|i| i % CHANNELS).collect();

    eprintln!(
        "building arenas: {TABLES} tables x {rows_per_table} rows x {DIM} dims over {CHANNELS} channels"
    );
    let arenas: Vec<EmbeddingArena> = [RowFormat::F32, RowFormat::F16, RowFormat::I8]
        .into_iter()
        .map(|f| EmbeddingArena::build(&tables, f, &channel_of, u64::MAX).expect("arena"))
        .collect();
    for arena in &arenas {
        eprintln!(
            "  {:>3} arena: {:.1} MiB, 64B-aligned: {}",
            arena.format().as_str(),
            arena.total_bytes() as f64 / (1 << 20) as f64,
            arena.is_aligned(),
        );
    }

    let identity_queries = generate(&model, 1.05, if smoke { 200 } else { 1_000 });
    check_bit_identity(&tables, &arenas, &identity_queries);
    eprintln!("bit-identity (f32 arena vs legacy, cache on vs off): ok");

    let mut points = Vec::new();
    let mut headline = 0.0f64;
    for (dist, zipf) in [("zipf-1.05", 1.05), ("uniform", 0.0)] {
        let queries = generate(&model, zipf, num_queries);
        let mut legacy_ns = 0.0f64;
        for storage in
            std::iter::once(Storage::Legacy(&tables)).chain(arenas.iter().map(Storage::Arena))
        {
            for cached in [false, true] {
                let path = cached.then(CachedPath::new);
                let (ns, hit_rate, from_cache, from_memory) =
                    measure(&storage, path, &queries, passes);
                if !cached && matches!(storage, Storage::Legacy(_)) {
                    legacy_ns = ns;
                }
                let speedup = legacy_ns / ns;
                if dist == "zipf-1.05" && storage.label() == "f16" && cached {
                    headline = speedup;
                }
                eprintln!(
                    "{dist:>9} {:>6} cache={:<5} {ns:>7.2} ns/lookup  hit {:>5.1}%  {speedup:>5.2}x",
                    storage.label(),
                    cached,
                    hit_rate * 100.0,
                );
                points.push(LookupPoint {
                    dist: dist.to_string(),
                    storage: storage.label().to_string(),
                    cache_rows: if cached { CACHE_ROWS as u64 } else { 0 },
                    ns_per_lookup: ns,
                    hit_rate,
                    speedup_vs_legacy: speedup,
                    bytes_from_cache: from_cache,
                    bytes_from_memory: from_memory,
                });
            }
        }
    }

    // Acceptance gate: warm f16 rows behind the cache must gather at
    // least 2x faster than the legacy scalar path under Zipf(1.05).
    eprintln!("headline (f16 + warm cache vs legacy, Zipf 1.05): {headline:.2}x");
    assert!(headline >= 2.0, "f16 warm-cache speedup {headline:.2}x below the 2x gate");

    let obj = vec![
        ("model".to_string(), model.name.to_json()),
        ("tables".to_string(), (TABLES as u64).to_json()),
        ("rows_per_table".to_string(), rows_per_table.to_json()),
        ("dim".to_string(), u64::from(DIM).to_json()),
        ("channels".to_string(), (CHANNELS as u64).to_json()),
        ("cache_rows".to_string(), (CACHE_ROWS as u64).to_json()),
        ("cache_ways".to_string(), (CACHE_WAYS as u64).to_json()),
        ("queries".to_string(), (num_queries as u64).to_json()),
        ("passes".to_string(), (passes as u64).to_json()),
        ("bit_identical".to_string(), true.to_json()),
        ("headline_speedup_f16_warm_zipf".to_string(), headline.to_json()),
        ("points".to_string(), points.to_json()),
    ];
    println!("{}", microrec_json::to_string_pretty(&microrec_json::Json::Obj(obj)));
}
