//! Call-graph construction over the workspace index.
//!
//! Works from the lexical model only (no type inference), so resolution
//! is heuristic and deliberately conservative:
//!
//! - `Type::method(...)` and `Self::method(...)` resolve by qualified
//!   path (exact).
//! - `self.method(...)` resolves to the enclosing impl's method when one
//!   exists, otherwise falls back to the method rules below.
//! - `free_fn(...)` prefers a definition in the same file, then a
//!   unique definition anywhere in the workspace.
//! - `receiver.method(...)` first tries the receiver's *written* type:
//!   parameter annotations (`fn f(engine: &mut MicroRec)`), `let`
//!   annotations, and struct-field declarations are pattern-matched, and
//!   `self.field.method()` chains resolve field by field. A known
//!   concrete type resolves exactly (and terminates resolution when the
//!   workspace defines no such method — the call is std or external).
//! - Otherwise the method links to **every** workspace method with that
//!   name (same-file candidates preferred when any exist). This
//!   over-approximates — a deliberate choice: for invariant propagation
//!   a spurious edge can only make the analysis stricter, never hide a
//!   violation. Trait-object/dyn/`impl Trait` dispatch and generic
//!   receivers are the same case: all same-named methods are linked.
//!
//! Calls to functions not defined in the workspace (std, vendored-out
//! code) resolve to nothing and simply terminate propagation.

use crate::index::{FnId, WorkspaceIndex};
use crate::source::{Tok, Token};

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Resolved callee.
    pub callee: FnId,
    /// 1-indexed source line of the call.
    pub line: usize,
    /// Token index of the callee name (for held-lock annotation).
    pub tok: usize,
    /// What the call looked like in source (`helper`, `Type::method`).
    pub display: String,
}

/// Per-function call sites, indexed by [`FnId`].
#[derive(Debug)]
pub struct CallGraph {
    pub calls: Vec<Vec<CallSite>>,
}

/// Words that look like calls but never are.
fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "dyn"
            | "break"
            | "continue"
            | "unsafe"
            | "drop"
    )
}

impl CallGraph {
    /// Extracts and resolves every call site in every indexed function.
    #[must_use]
    pub fn build(index: &WorkspaceIndex) -> CallGraph {
        let fields = field_types(index);
        let mut calls = vec![Vec::new(); index.len()];
        for id in index.ids() {
            calls[id] = extract_calls(index, id, &fields);
        }
        CallGraph { calls }
    }

    /// Call sites of one function.
    #[must_use]
    pub fn of(&self, id: FnId) -> &[CallSite] {
        &self.calls[id]
    }
}

/// The impl type of a function id, when it is a method.
fn impl_type(index: &WorkspaceIndex, id: FnId) -> Option<String> {
    let (_, def) = index.lookup(id);
    def.qual.as_ref().and_then(|q| q.split("::").next().map(str::to_string))
}

fn extract_calls(
    index: &WorkspaceIndex,
    id: FnId,
    fields: &std::collections::BTreeMap<String, std::collections::BTreeMap<String, String>>,
) -> Vec<CallSite> {
    let (file, def) = index.lookup(id);
    let tokens = &file.tokens;
    let own_type = impl_type(index, id);
    let locals: std::collections::BTreeMap<String, String> =
        param_types(tokens, def).into_iter().chain(let_types(tokens, def)).collect();
    // Nested named fns own their call sites; skip their body ranges.
    let nested: Vec<(usize, usize)> = file
        .scan
        .functions
        .iter()
        .filter(|f| f.body.0 > def.body.0 && f.body.1 <= def.body.1)
        .map(|f| f.body)
        .collect();

    let word = |i: usize| -> Option<&str> {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize| -> Option<char> {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    };

    let mut out = Vec::new();
    let mut i = def.body.0;
    while i < def.body.1.min(tokens.len()) {
        if let Some(&(_, end)) = nested.iter().find(|&&(start, end)| i >= start && i < end) {
            i = end;
            continue;
        }
        let Some(w) = word(i) else {
            i += 1;
            continue;
        };
        // A call looks like `name (`; skip keywords, macro bangs, and
        // nested-fn declarations (`fn inner(` sits in the outer body).
        if punct(i + 1) != Some('(') || is_keyword(w) || word(i.wrapping_sub(1)) == Some("fn") {
            i += 1;
            continue;
        }
        let prev_dot = i >= 1 && punct(i - 1) == Some('.');
        let prev_path = i >= 2 && punct(i - 1) == Some(':') && punct(i - 2) == Some(':');
        let resolved: Vec<FnId> = if prev_path {
            // `Seg::name(` — resolve by qualified path; `Self::name` and
            // `OwnType::name` go through the enclosing impl type first.
            let seg = word(i.saturating_sub(3)).unwrap_or("");
            let parent = if seg == "Self" { own_type.as_deref().unwrap_or(seg) } else { seg };
            let qual = format!("{parent}::{w}");
            let hits = index.by_qual(&qual);
            if hits.is_empty() {
                // `module::free_fn(` — fall back to a unique free fn.
                unique_by_name(index, file_idx(index, id), w)
            } else {
                hits.to_vec()
            }
        } else if prev_dot {
            let receiver_self =
                i >= 2 && word(i - 2) == Some("self") && punct(i.saturating_sub(3)) != Some('.');
            if receiver_self {
                if let Some(own) = own_type.as_deref() {
                    let hits = index.by_qual(&format!("{own}::{w}"));
                    if !hits.is_empty() {
                        record(&mut out, tokens, i, w, hits);
                        i += 1;
                        continue;
                    }
                }
                method_candidates(index, file_idx(index, id), w, None)
            } else {
                let known = receiver_chain(tokens, i)
                    .and_then(|chain| typed_receiver(&chain, own_type.as_deref(), &locals, fields))
                    .filter(|ty| !is_generic_name(ty));
                if let Some(ty) = known {
                    // The receiver's written type is known: resolve
                    // exactly, or terminate (std/external method).
                    index.by_qual(&format!("{ty}::{w}")).to_vec()
                } else {
                    let hint = receiver_hint(tokens, i);
                    method_candidates(index, file_idx(index, id), w, hint.as_deref())
                }
            }
        } else {
            // Free call: same file first, then unique workspace-wide.
            let same_file: Vec<FnId> = index
                .by_name(w)
                .iter()
                .copied()
                .filter(|&c| index.file_of(c) == file_idx(index, id))
                .collect();
            if same_file.is_empty() {
                unique_by_name(index, file_idx(index, id), w)
            } else {
                same_file
            }
        };
        let caller_file = file_idx(index, id);
        let resolved: Vec<FnId> = resolved
            .into_iter()
            .filter(|&c| index.file_of(c) == caller_file || !in_binary(index, c))
            .collect();
        record(&mut out, tokens, i, w, &resolved);
        i += 1;
    }
    out
}

fn file_idx(index: &WorkspaceIndex, id: FnId) -> usize {
    index.file_of(id)
}

/// The field/variable segment nearest the `.method(` call (token `i` is
/// the method name): `self.stats.hist.lock()` → `hist`,
/// `self.slots[k].take()` → `slots`. `self` and unrecognizable shapes
/// yield no hint.
fn receiver_hint(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i.checked_sub(1)?; // the '.'
    loop {
        j = j.checked_sub(1)?;
        match &tokens[j].tok {
            Tok::Punct(']') | Tok::Punct(')') => {
                let (open, close) = match tokens[j].tok {
                    Tok::Punct(']') => ('[', ']'),
                    _ => ('(', ')'),
                };
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &tokens[j].tok {
                        Tok::Punct(c) if *c == close => depth += 1,
                        Tok::Punct(c) if *c == open => depth -= 1,
                        _ => {}
                    }
                }
            }
            Tok::Word(w) => return if w == "self" { None } else { Some(w.clone()) },
            Tok::Punct('.') | Tok::Punct(':') => {}
            _ => return None,
        }
    }
}

/// Container/smart-pointer types that forward method resolution to
/// their payload: a call through `&Arc<Mutex<PathCostModel>>` is a call
/// on `PathCostModel` for flow purposes (guards and cells dereference).
const TYPE_WRAPPERS: [&str; 15] = [
    "Option",
    "Arc",
    "Rc",
    "Box",
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "Vec",
    "VecDeque",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Fn",
    "FnMut",
];

/// Builtin scalar/slice types: a receiver of one of these never calls a
/// workspace method.
const PRIMITIVES: [&str; 17] = [
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32",
    "f64", "bool", "char", "str",
];

/// The payload type named by an annotation's word sequence, e.g.
/// `["Arc", "Mutex", "PathCostModel"]` → `PathCostModel`. Returns `None`
/// for `dyn`/`impl Trait` (dispatch target unknowable — keep the
/// conservative fan-out) and for annotations with no usable name.
fn annotated_type(words: &[&str]) -> Option<String> {
    if words.iter().any(|w| *w == "dyn" || *w == "impl") {
        return None;
    }
    words
        .iter()
        .find(|w| {
            if TYPE_WRAPPERS.contains(w) || matches!(**w, "mut" | "ref" | "const" | "FnOnce") {
                return false;
            }
            // Uppercase-initial path segment or a builtin primitive;
            // everything else (lifetimes, `crate`, module segments in
            // lowercase) carries no type signal on its own.
            w.chars().next().is_some_and(char::is_uppercase) || PRIMITIVES.contains(w)
        })
        .map(|w| (*w).to_string())
}

/// Single/double-character type names are generic parameters (`T`, `P`,
/// `Q8` is real but three chars): unresolvable, keep the fan-out.
fn is_generic_name(ty: &str) -> bool {
    ty.len() <= 2
}

/// Splits the token range `(start, end)` into comma-separated segments,
/// respecting paren/bracket/angle nesting (`->` arrows do not close
/// angles). Returns word lists per segment.
fn comma_segments(tokens: &[Token], start: usize, end: usize) -> Vec<Vec<usize>> {
    let mut segments = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
    for j in start..end.min(tokens.len()) {
        match &tokens[j].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>')
                if !matches!(
                    tokens.get(j.wrapping_sub(1)).map(|t| &t.tok),
                    Some(Tok::Punct('-'))
                ) =>
            {
                angle -= 1;
            }
            Tok::Punct(',') if paren == 0 && bracket == 0 && angle == 0 => {
                segments.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(j);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// `name: Type` from one declaration segment: the name is the last word
/// before the first top-level `:` (skipping `mut`/`pub` modifiers), the
/// type is everything after it.
fn name_type_pair(tokens: &[Token], segment: &[usize]) -> Option<(String, String)> {
    let mut colon = None;
    let (mut paren, mut bracket) = (0i32, 0i32);
    for (k, &j) in segment.iter().enumerate() {
        match &tokens[j].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct(':') if paren == 0 && bracket == 0 => {
                let next_is_path =
                    segment.get(k + 1).is_some_and(|&n| matches!(tokens[n].tok, Tok::Punct(':')));
                let prev_is_path = k > 0 && matches!(tokens[segment[k - 1]].tok, Tok::Punct(':'));
                if !next_is_path && !prev_is_path {
                    colon = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }
    let colon = colon?;
    let name = segment[..colon].iter().rev().find_map(|&j| match &tokens[j].tok {
        Tok::Word(w) if w != "mut" && w != "ref" && w != "pub" && w != "crate" => Some(w.clone()),
        _ => None,
    })?;
    if name == "self" {
        return None;
    }
    let words: Vec<&str> = segment[colon + 1..]
        .iter()
        .filter_map(|&j| match &tokens[j].tok {
            Tok::Word(w) => Some(w.as_str()),
            _ => None,
        })
        .collect();
    Some((name, annotated_type(&words)?))
}

/// Parameter annotations of `def`: walks back from the body brace to the
/// `fn` keyword, then parses `name: Type` pairs out of the parameter
/// list.
fn param_types(tokens: &[Token], def: &crate::source::FnDef) -> Vec<(String, String)> {
    let brace = match def.body.0.checked_sub(1) {
        Some(b) => b,
        None => return Vec::new(),
    };
    let mut fn_kw = None;
    let mut j = brace;
    for _ in 0..400 {
        let Some(prev) = j.checked_sub(1) else { break };
        j = prev;
        match &tokens[j].tok {
            Tok::Word(w) if w == "fn" => {
                fn_kw = Some(j);
                break;
            }
            Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';') => break,
            _ => {}
        }
    }
    let Some(fn_kw) = fn_kw else { return Vec::new() };
    // Skip the name and an optional generic list to the opening paren.
    let mut j = fn_kw + 2;
    if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        let mut angle = 1i32;
        while angle > 0 && j + 1 < brace {
            j += 1;
            match &tokens[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !matches!(tokens[j - 1].tok, Tok::Punct('-')) => {
                    angle -= 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    if !matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return Vec::new();
    }
    let open = j;
    let mut paren = 1i32;
    while paren > 0 && j + 1 < brace {
        j += 1;
        match &tokens[j].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            _ => {}
        }
    }
    comma_segments(tokens, open + 1, j)
        .iter()
        .filter_map(|seg| name_type_pair(tokens, seg))
        .collect()
}

/// Explicitly annotated `let` bindings in `def`'s body (untyped lets
/// carry no signal and fall back to the heuristics).
fn let_types(tokens: &[Token], def: &crate::source::FnDef) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let end = def.body.1.min(tokens.len());
    let word = |j: usize| match tokens.get(j).map(|t| &t.tok) {
        Some(Tok::Word(w)) => Some(w.as_str()),
        _ => None,
    };
    let mut i = def.body.0;
    while i < end {
        if word(i) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if word(j) == Some("mut") {
            j += 1;
        }
        let Some(name) = word(j) else {
            i += 1;
            continue;
        };
        if !matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
            || matches!(tokens.get(j + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
        {
            i += 1;
            continue;
        }
        let mut words = Vec::new();
        let mut k = j + 2;
        while k < end && !matches!(tokens[k].tok, Tok::Punct('=') | Tok::Punct(';')) {
            if let Tok::Word(w) = &tokens[k].tok {
                words.push(w.as_str());
            }
            k += 1;
        }
        if let Some(ty) = annotated_type(&words) {
            out.push((name.to_string(), ty));
        }
        i = k;
    }
    out
}

/// Field annotations of every `struct Name { .. }` in the workspace:
/// `type → field → field type`, for resolving `self.field.method()`
/// chains. Tuple and unit structs contribute nothing.
pub(crate) fn field_types(
    index: &WorkspaceIndex,
) -> std::collections::BTreeMap<String, std::collections::BTreeMap<String, String>> {
    let mut map: std::collections::BTreeMap<String, std::collections::BTreeMap<String, String>> =
        std::collections::BTreeMap::new();
    for file in &index.files {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let Tok::Word(kw) = &tokens[i].tok else { continue };
            if kw != "struct" {
                continue;
            }
            let Some(Tok::Word(name)) = tokens.get(i + 1).map(|t| &t.tok) else { continue };
            // Find the body brace (skipping generics/where); `;` or `(`
            // first means unit/tuple struct.
            let mut j = i + 2;
            let mut angle = 0i32;
            let open = loop {
                match tokens.get(j).map(|t| &t.tok) {
                    Some(Tok::Punct('<')) => angle += 1,
                    Some(Tok::Punct('>')) => angle -= 1,
                    Some(Tok::Punct('{')) if angle == 0 => break Some(j),
                    Some(Tok::Punct(';') | Tok::Punct('(')) if angle == 0 => break None,
                    None => break None,
                    _ => {}
                }
                j += 1;
            };
            let Some(open) = open else { continue };
            let mut j = open;
            let mut brace = 1i32;
            while brace > 0 && j + 1 < tokens.len() {
                j += 1;
                match &tokens[j].tok {
                    Tok::Punct('{') => brace += 1,
                    Tok::Punct('}') => brace -= 1,
                    _ => {}
                }
            }
            let fields = map.entry(name.clone()).or_default();
            for seg in comma_segments(tokens, open + 1, j) {
                if let Some((fname, fty)) = name_type_pair(tokens, &seg) {
                    fields.insert(fname, fty);
                }
            }
        }
    }
    map
}

/// The receiver's segment chain when it is a plain place expression:
/// `self.slot.ready.wait(..)` → `["self", "slot", "ready"]`. Index
/// groups (`xs[k].m()`) are transparent (the wrapper-stripped element
/// type is the indexed type); call results yield `None`.
fn receiver_chain(tokens: &[Token], i: usize) -> Option<Vec<String>> {
    let mut j = i.checked_sub(1)?; // the '.'
    if !matches!(tokens[j].tok, Tok::Punct('.')) {
        return None;
    }
    let mut rev = Vec::new();
    while let Some(prev) = j.checked_sub(1) {
        j = prev;
        match &tokens[j].tok {
            Tok::Punct(']') => {
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &tokens[j].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
            }
            Tok::Punct(')') => return None,
            Tok::Word(w) => {
                let mut head = w.clone();
                let mut k = j;
                // A `::`-qualified head (`Activation::Sigmoid.apply()`)
                // names its type in the leftmost path segment; variant /
                // associated-item segments carry no extra signal.
                while k >= 2
                    && matches!(tokens[k - 1].tok, Tok::Punct(':'))
                    && matches!(tokens[k - 2].tok, Tok::Punct(':'))
                {
                    match tokens.get(k.wrapping_sub(3)).map(|t| &t.tok) {
                        Some(Tok::Word(seg)) => {
                            head = seg.clone();
                            k -= 3;
                        }
                        _ => break,
                    }
                }
                rev.push(head);
                j = k;
                if !matches!(tokens.get(j.wrapping_sub(1)).map(|t| &t.tok), Some(Tok::Punct('.'))) {
                    break;
                }
                j -= 1; // continue from the '.'
            }
            _ => break,
        }
    }
    if rev.is_empty() {
        return None;
    }
    rev.reverse();
    Some(rev)
}

/// Resolves a receiver chain to a concrete type via locals (`self` = the
/// enclosing impl type) and struct-field annotations.
fn typed_receiver(
    chain: &[String],
    own_type: Option<&str>,
    locals: &std::collections::BTreeMap<String, String>,
    fields: &std::collections::BTreeMap<String, std::collections::BTreeMap<String, String>>,
) -> Option<String> {
    let mut parts = chain.iter();
    let first = parts.next()?;
    let mut ty = if first == "self" {
        own_type?.to_string()
    } else if let Some(local) = locals.get(first) {
        local.clone()
    } else if first.starts_with(char::is_uppercase) && first.chars().any(char::is_lowercase) {
        // A mixed-case head is a type named in place: an enum-variant or
        // associated-item receiver (`Activation::Sigmoid.apply(x)`).
        // SCREAMING_CASE heads are consts of undeclared type — skipped.
        first.clone()
    } else {
        return None;
    };
    for seg in parts {
        if is_generic_name(&ty) {
            return None;
        }
        ty = fields.get(&ty)?.get(seg)?.clone();
    }
    if ty == "Self" {
        return own_type.map(str::to_string);
    }
    Some(ty)
}

/// Method names that overwhelmingly mean a std type (`Vec::push`,
/// `HashMap::insert`, `Option::take`, iterator adapters). A lexical
/// resolver cannot tell `vec.pop()` from `fan_in.pop()`, and linking
/// every such call to every same-named workspace method would flood the
/// flow lints with false edges — so cross-file fan-out is dropped for
/// these names. Same-file, `self.`-receiver, and `Type::method` calls
/// still resolve normally.
const STD_SHADOWED: [&str; 66] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clone",
    "next",
    "iter",
    "iter_mut",
    "into_iter",
    "contains",
    "contains_key",
    "extend",
    "drain",
    "clear",
    "take",
    "replace",
    "entry",
    "join",
    "last",
    "first",
    "sort",
    "retain",
    "append",
    "resize",
    "map",
    "and_then",
    "filter",
    "find",
    "position",
    "any",
    "all",
    "fold",
    "sum",
    "count",
    "write",
    "read",
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "map_err",
    "ok",
    "err",
    "fmt",
    "to_string",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "min",
    "max",
    "abs",
    "cmp",
    "eq",
    "lock",
    "wait",
    "wait_timeout",
];

/// All same-named methods, narrowed in priority order: (1) candidates
/// whose impl type name matches the receiver's field/variable name
/// (`self.interaction.apply(..)` → `FeatureInteraction::apply`), (2)
/// same-file definitions (the conservative dyn-dispatch rule), (3)
/// everything — unless the name is [`STD_SHADOWED`], where workspace
/// fan-out is suppressed.
fn method_candidates(
    index: &WorkspaceIndex,
    file: usize,
    name: &str,
    receiver: Option<&str>,
) -> Vec<FnId> {
    let methods: Vec<FnId> = index
        .by_name(name)
        .iter()
        .copied()
        .filter(|&c| {
            let (_, def) = index.lookup(c);
            def.qual.is_some()
        })
        .collect();
    // Short receiver names (`o`, `rb`) carry no signal; `contains` on
    // them would match almost any type.
    if let Some(receiver) = receiver.filter(|r| r.len() >= 3) {
        let hint = receiver.replace('_', "").to_ascii_lowercase();
        let hinted: Vec<FnId> = methods
            .iter()
            .copied()
            .filter(|&c| {
                let (_, def) = index.lookup(c);
                def.qual
                    .as_ref()
                    .and_then(|q| q.split("::").next())
                    .is_some_and(|ty| ty.to_ascii_lowercase().contains(&hint))
            })
            .collect();
        if !hinted.is_empty() {
            return hinted;
        }
    }
    // Shadowed names resolve only via a receiver hint (above) — even a
    // same-file `cv.wait(guard)` means `Condvar::wait`, not a local fn
    // that happens to be named `wait`.
    if STD_SHADOWED.contains(&name) {
        return Vec::new();
    }
    let same_file: Vec<FnId> =
        methods.iter().copied().filter(|&c| index.file_of(c) == file).collect();
    if !same_file.is_empty() {
        same_file
    } else {
        methods
    }
}

/// A free-fn name that resolves only when exactly one definition exists.
fn unique_by_name(index: &WorkspaceIndex, _file: usize, name: &str) -> Vec<FnId> {
    let hits = index.by_name(name);
    if hits.len() == 1 {
        hits.to_vec()
    } else {
        Vec::new()
    }
}

/// A function defined in a binary target: other files cannot call it.
fn in_binary(index: &WorkspaceIndex, id: FnId) -> bool {
    let (file, _) = index.lookup(id);
    file.rel_path.contains("/bin/") || file.rel_path.ends_with("/main.rs")
}

fn record(out: &mut Vec<CallSite>, tokens: &[Token], i: usize, name: &str, resolved: &[FnId]) {
    for &callee in resolved {
        out.push(CallSite { callee, line: tokens[i].line, tok: i, display: name.to_string() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileModel;

    fn graph(sources: &[(&str, &str)]) -> (WorkspaceIndex, CallGraph) {
        let files = sources.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let index = WorkspaceIndex::build(files);
        let graph = CallGraph::build(&index);
        (index, graph)
    }

    fn callee_names(index: &WorkspaceIndex, graph: &CallGraph, caller: &str) -> Vec<String> {
        let id = index.by_name(caller)[0];
        graph.of(id).iter().map(|c| index.lookup(c.callee).1.display_name().to_string()).collect()
    }

    #[test]
    fn cross_file_free_call_resolves_when_unique() {
        let (index, graph) = graph(&[
            ("src/a.rs", "fn hot() { helper(); }\n"),
            ("src/b.rs", "pub fn helper() { other(); }\n"),
        ]);
        assert_eq!(callee_names(&index, &graph, "hot"), vec!["helper"]);
        assert!(callee_names(&index, &graph, "helper").is_empty(), "unknown callee drops");
    }

    #[test]
    fn qualified_and_self_calls_resolve_by_impl_type() {
        let (index, graph) = graph(&[(
            "src/a.rs",
            "impl Ring {\n    fn push(&self) { self.wake(); Ring::helper(); Self::helper(); }\n    fn wake(&self) {}\n    fn helper() {}\n}\n",
        )]);
        assert_eq!(
            callee_names(&index, &graph, "push"),
            vec!["Ring::wake", "Ring::helper", "Ring::helper"]
        );
    }

    #[test]
    fn ambiguous_method_links_all_candidates_conservatively() {
        let (index, graph) = graph(&[
            ("src/a.rs", "fn hot(x: &dyn Sink) { x.ingest(); }\n"),
            ("src/b.rs", "impl Cache { pub fn ingest(&self) {} }\n"),
            ("src/c.rs", "impl Buffer { pub fn ingest(&self) {} }\n"),
        ]);
        let mut names = callee_names(&index, &graph, "hot");
        names.sort();
        assert_eq!(names, vec!["Buffer::ingest", "Cache::ingest"]);
    }

    #[test]
    fn std_shadowed_method_names_do_not_fan_out_across_files() {
        {
            let (index, cg) = graph(&[
                ("src/a.rs", "fn f(v: &mut Vec<u8>) { v.pop(); }\n"),
                ("src/b.rs", "impl FanIn { pub fn pop(&self) {} }\n"),
            ]);
            assert!(callee_names(&index, &cg, "f").is_empty());
        }
        // Not even same-file: `cv.wait(g)` means `Condvar::wait`, never a
        // local fn that happens to share the name.
        let (index, cg) = graph(&[(
            "src/a.rs",
            "impl Pending { fn poll(&self, cv: &Condvar) { cv.wait(g); } fn wait(&self) {} }\n",
        )]);
        assert!(callee_names(&index, &cg, "poll").is_empty());
    }

    #[test]
    fn same_file_method_shadows_remote_candidates() {
        // `o` is untyped (no annotation), so resolution falls back to
        // the same-file preference.
        let (index, graph) = graph(&[
            ("src/a.rs", "impl Local { fn go(&self) { let o = acquire(); o.refresh(); } fn refresh(&self) {} }\nfn acquire() {}\n"),
            ("src/b.rs", "impl Remote { pub fn refresh(&self) {} }\n"),
        ]);
        let mut names = callee_names(&index, &graph, "go");
        names.sort();
        assert_eq!(names, vec!["Local::refresh", "acquire"]);
    }

    #[test]
    fn annotated_param_resolves_the_receiver_exactly() {
        let (index, cg) = graph(&[
            ("src/a.rs", "fn drive(engine: &mut MicroRec) { engine.predict_batch(); }\n"),
            ("src/b.rs", "impl MicroRec { pub fn predict_batch(&mut self) {} }\n"),
            ("src/c.rs", "impl CpuReferenceEngine { pub fn predict_batch(&mut self) {} }\n"),
        ]);
        assert_eq!(callee_names(&index, &cg, "drive"), vec!["MicroRec::predict_batch"]);
    }

    #[test]
    fn known_concrete_type_without_the_method_terminates_resolution() {
        let (index, cg) = graph(&[
            ("src/a.rs", "fn go(o: &Other) { o.refresh(); }\n"),
            ("src/b.rs", "impl Remote { pub fn refresh(&self) {} }\n"),
        ]);
        assert!(callee_names(&index, &cg, "go").is_empty());
    }

    #[test]
    fn field_chain_and_let_annotation_resolve_through_wrappers() {
        let (index, cg) = graph(&[(
            "src/a.rs",
            "struct Request { slot: Arc<Slot> }\n\
             impl Worker {\n    fn go(&self, r: &Request) { r.slot.fulfill(); let g: MutexGuard<State> = x(); g.touch(); }\n}\n\
             impl Slot { fn fulfill(&self) {} }\n\
             impl State { fn touch(&self) {} }\n\
             impl Other { fn fulfill(&self) {} fn touch(&self) {} }\n\
             fn x() {}\n",
        )]);
        let mut names = callee_names(&index, &cg, "go");
        names.sort();
        assert_eq!(names, vec!["Slot::fulfill", "State::touch", "x"]);
    }

    #[test]
    fn generic_receivers_keep_the_conservative_fan_out() {
        let (index, cg) = graph(&[
            ("src/a.rs", "fn step<P>(p: &mut P) { p.advance(); }\n"),
            ("src/b.rs", "impl Left { pub fn advance(&mut self) {} }\n"),
            ("src/c.rs", "impl Right { pub fn advance(&mut self) {} }\n"),
        ]);
        let mut names = callee_names(&index, &cg, "step");
        names.sort();
        assert_eq!(names, vec!["Left::advance", "Right::advance"]);
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let (index, graph) = graph(&[(
            "src/a.rs",
            "fn f() { if (x) { return (1); } assert!(helper()); }\nfn helper() -> bool { true }\n",
        )]);
        assert_eq!(callee_names(&index, &graph, "f"), vec!["helper"]);
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let (index, graph) = graph(&[(
            "src/a.rs",
            "fn outer() { fn inner() { helper(); } inner(); }\nfn helper() {}\n",
        )]);
        assert_eq!(callee_names(&index, &graph, "outer"), vec!["inner"]);
        assert_eq!(callee_names(&index, &graph, "inner"), vec!["helper"]);
    }
}
