//! Statistical sanity of the workload generators.

use microrec_embedding::ModelSpec;
use microrec_memsim::SimTime;
use microrec_workload::{
    simulate_batched_serving, simulate_pipelined_serving, LatencyStats, PoissonArrivals,
    QueryGenConfig, QueryGenerator,
};

#[test]
fn zipf_rank_frequency_is_ordered() {
    // Rank-1 indices must be sampled more often than rank-10, which beat
    // rank-100, etc.
    let model = ModelSpec::dlrm_rmc2(1, 4);
    let mut gen =
        QueryGenerator::new(&model, QueryGenConfig { zipf_exponent: 1.0, seed: 31 }).unwrap();
    let mut counts = [0usize; 3]; // buckets: [0..10), [10..100), [100..1000)
    let n = 30_000;
    for _ in 0..n {
        let idx = gen.next_query()[0];
        if idx < 10 {
            counts[0] += 1;
        } else if idx < 100 {
            counts[1] += 1;
        } else if idx < 1000 {
            counts[2] += 1;
        }
    }
    // Under Zipf(1), each decade carries roughly equal mass; each bucket
    // must be populated and the head must not vanish.
    assert!(counts[0] > n / 20, "head bucket {counts:?}");
    assert!(counts[1] > n / 20, "mid bucket {counts:?}");
    assert!(counts[2] > n / 20, "tail bucket {counts:?}");
}

#[test]
fn zipf_skew_monotone_in_exponent() {
    let model = ModelSpec::dlrm_rmc2(1, 4);
    let mut head_rates = Vec::new();
    for s in [0.5f64, 0.9, 1.3] {
        let mut gen =
            QueryGenerator::new(&model, QueryGenConfig { zipf_exponent: s, seed: 7 }).unwrap();
        let hits = (0..5_000).filter(|_| gen.next_query()[0] < 10).count();
        head_rates.push(hits);
    }
    assert!(
        head_rates[0] < head_rates[1] && head_rates[1] < head_rates[2],
        "head rates {head_rates:?} must grow with skew"
    );
}

#[test]
fn poisson_interarrival_cv_is_near_one() {
    // Exponential gaps have coefficient of variation 1.
    let mut p = PoissonArrivals::new(1e6, 13).unwrap();
    let arrivals = p.take(20_000);
    let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]).as_ns()).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    let cv = var.sqrt() / mean;
    assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
}

#[test]
fn batched_serving_conserves_queries() {
    let mut p = PoissonArrivals::new(20_000.0, 17).unwrap();
    let arrivals = p.take(3_333);
    for batch in [1usize, 7, 64, 1000] {
        let lat = simulate_batched_serving(
            &arrivals,
            batch,
            SimTime::from_ms(5.0),
            SimTime::from_ms(2.0),
        );
        assert_eq!(lat.len(), arrivals.len(), "batch {batch} lost queries");
        assert!(lat.iter().all(|l| *l >= SimTime::from_ms(2.0)), "service floor");
    }
}

#[test]
fn pipelined_latency_floor_is_pipeline_latency() {
    let mut p = PoissonArrivals::new(1_000.0, 23).unwrap();
    let arrivals = p.take(500);
    let lat = simulate_pipelined_serving(&arrivals, SimTime::from_us(3.0), SimTime::from_us(17.0));
    let stats = LatencyStats::from_samples(&lat).unwrap();
    assert_eq!(stats.p50, SimTime::from_us(17.0), "light load: everyone sees the floor");
}

#[test]
fn batch_one_equals_pipelined_with_service_ii() {
    // Degenerate check: batch size 1 with service time S behaves like a
    // pipeline whose fill and II are both S.
    let mut p = PoissonArrivals::new(100.0, 29).unwrap();
    let arrivals = p.take(200);
    let s = SimTime::from_ms(1.0);
    let a = simulate_batched_serving(&arrivals, 1, SimTime::from_ms(1000.0), s);
    let b = simulate_pipelined_serving(&arrivals, s, s);
    assert_eq!(a, b);
}
