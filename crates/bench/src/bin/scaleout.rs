//! Extension study: multi-FPGA sharding and hybrid CPU+FPGA serving — the
//! two scale-out directions the paper leaves as future work.

use microrec_bench::print_table;
use microrec_core::{
    simulate_hybrid_serving, simulate_microrec_serving, HybridConfig, MicroRec, MicroRecCluster,
};
use microrec_cpu::CpuTimingModel;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::SimTime;
use microrec_workload::PoissonArrivals;

fn main() {
    // Part 1 — table sharding across devices.
    let model = ModelSpec::large_production();
    let mut rows = Vec::new();
    for budget_gb in [40u64, 16, 9] {
        let cluster =
            MicroRecCluster::build(&model, budget_gb * 1_000_000_000, Precision::Fixed16, 3)
                .expect("cluster");
        rows.push(vec![
            format!("{budget_gb} GB/device"),
            cluster.devices().to_string(),
            format!("{:.2} us", cluster.lookup_latency().as_us()),
            format!("{:.1} us", cluster.latency().as_us()),
        ]);
    }
    print_table(
        "Scale-out A: the 15 GB model sharded across shrinking devices",
        &["Device budget", "Devices", "Cluster lookup", "End-to-end latency"],
        &rows,
    );
    println!("\nReading: sharding costs one interconnect hop (~2 us) — an order of");
    println!("magnitude above the on-card lookup but still far inside the SLA;");
    println!("hundred-GB models remain serveable at microsecond-class latency.");

    // Part 2 — hybrid CPU+FPGA routing under growing load.
    let model = ModelSpec::small_production();
    let engine =
        MicroRec::builder(model.clone()).precision(Precision::Fixed16).build().expect("engine");
    let cpu = CpuTimingModel::aws_16vcpu();
    let sla = SimTime::from_ms(25.0);
    let capacity = engine.throughput_items_per_sec();
    let mut rows = Vec::new();
    for load in [0.8f64, 1.0, 1.05, 1.1] {
        let mut arrivals = PoissonArrivals::new(capacity * load, 11).expect("arrivals");
        let trace = arrivals.take(100_000);
        let fpga_only = simulate_microrec_serving(&engine, &trace, sla).expect("fpga");
        let hybrid =
            simulate_hybrid_serving(&engine, &cpu, &model, &HybridConfig::default(), &trace, sla)
                .expect("hybrid");
        rows.push(vec![
            format!("{:.0}%", load * 100.0),
            format!("{:.1}%", fpga_only.sla_hit_rate * 100.0),
            format!("{:.1}%", hybrid.combined.sla_hit_rate * 100.0),
            format!("{:.1}%", hybrid.fpga_fraction * 100.0),
        ]);
    }
    print_table(
        "Scale-out B: SLA hit rate vs offered load (25 ms SLA, 100k queries)",
        &["Load vs FPGA capacity", "FPGA only", "Hybrid", "Served on FPGA"],
        &rows,
    );
    println!("\nReading: the accelerator alone collapses past 100% load (queues");
    println!("grow without bound); a DeepRecSys-style router holds the SLA by");
    println!("spilling the few percent of overflow to the batching CPU.");
}
