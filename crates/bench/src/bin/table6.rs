//! Regenerates Table 6 (appendix): FPGA frequency and resource
//! utilization.

use microrec_accel::{estimate_usage, AccelConfig, U280_CAPACITY};
use microrec_bench::print_table;
use microrec_embedding::{ModelSpec, Precision};

fn main() {
    // Paper: (model, precision) -> (freq MHz, bram, dsp, ff, lut, uram)
    let paper = [
        ("alibaba-small", Precision::Fixed16, 120, 1566, 4625, 683_641, 485_323, 642),
        ("alibaba-small", Precision::Fixed32, 140, 1657, 5193, 764_067, 568_864, 770),
        ("alibaba-large", Precision::Fixed16, 120, 1566, 4625, 691_042, 514_517, 642),
        ("alibaba-large", Precision::Fixed32, 135, 1721, 5193, 777_527, 584_220, 770),
    ];
    let mut rows = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for precision in [Precision::Fixed16, Precision::Fixed32] {
            let cfg = AccelConfig::for_model(&model, precision);
            let usage = estimate_usage(&model, &cfg);
            let util = usage.utilization(&U280_CAPACITY);
            let p =
                paper.iter().find(|r| r.0 == model.name && r.1 == precision).expect("paper row");
            rows.push(vec![
                format!("{} {precision}", model.name),
                format!("{} ({})", cfg.clock_hz / 1_000_000, p.2),
                format!("{} ({})", usage.bram_18k, p.3),
                format!("{} ({})", usage.dsp, p.4),
                format!("{} ({})", usage.ff, p.5),
                format!("{} ({})", usage.lut, p.6),
                format!("{} ({})", usage.uram, p.7),
                format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}/{:.0}%",
                    util.bram_18k * 100.0,
                    util.dsp * 100.0,
                    util.ff * 100.0,
                    util.lut * 100.0,
                    util.uram * 100.0
                ),
            ]);
        }
    }
    print_table(
        "Table 6: FPGA frequency & resource utilization — model (paper)",
        &["Config", "MHz", "BRAM 18Kb", "DSP48E", "Flip-Flop", "LUT", "URAM", "Util B/D/F/L/U"],
        &rows,
    );
}
