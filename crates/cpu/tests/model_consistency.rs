//! Cross-checks between the CPU timing model, the operator graph, and the
//! functional reference engine.

use microrec_cpu::{CpuReferenceEngine, CpuTimingModel, OpGraph, EMBEDDING_OP_TYPES};
use microrec_embedding::ModelSpec;
use microrec_memsim::SimTime;

#[test]
fn op_graph_and_timing_model_agree_on_overhead_scaling() {
    // Both express framework overhead as (invocations x per-op cost); the
    // ratio between the two models must equal the table-count ratio.
    let small = OpGraph::embedding_layer(&ModelSpec::small_production());
    let large = OpGraph::embedding_layer(&ModelSpec::large_production());
    let graph_ratio = large.invocation_count() as f64 / small.invocation_count() as f64;
    let m = CpuTimingModel::aws_16vcpu();
    let model_ratio = m.framework_overhead(&ModelSpec::large_production(), 1).as_ns()
        / m.framework_overhead(&ModelSpec::small_production(), 1).as_ns();
    assert!((graph_ratio - model_ratio).abs() < 0.03, "{graph_ratio} vs {model_ratio}");
}

#[test]
fn per_invocation_cost_is_physically_plausible() {
    // Back out the per-dispatch cost the calibrated overhead implies for
    // the op graph's invocation count: it should sit in the 1-100 us range
    // typical of TF operator dispatch (the 37-type figure times ~1.6 us
    // per type-instance resolves to ~8 us per actual dispatch here).
    let model = ModelSpec::small_production();
    let graph = OpGraph::embedding_layer(&model);
    let overhead = CpuTimingModel::aws_16vcpu().framework_overhead(&model, 1);
    let per_dispatch = overhead.as_us() / graph.invocation_count() as f64;
    assert!((1.0..100.0).contains(&per_dispatch), "per-dispatch {per_dispatch:.2} us");
    // And the two accountings describe the same total.
    let alt = SimTime::from_us(per_dispatch) * graph.invocation_count() as u64;
    assert!((alt.as_ns() - overhead.as_ns()).abs() / overhead.as_ns() < 0.01);
}

#[test]
fn embedding_fraction_shrinks_with_batch() {
    // Figure 3's structure: the embedding layer dominates at B=1 and
    // remains the majority at production batch sizes.
    let m = CpuTimingModel::aws_16vcpu();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        let frac = |b: u64| m.embedding_time(&model, b).as_ns() / m.total_time(&model, b).as_ns();
        assert!(frac(1) > 0.75, "{}: B=1 fraction {}", model.name, frac(1));
        assert!(frac(2048) > 0.4, "{}: B=2048 fraction {}", model.name, frac(2048));
        assert!(frac(1) > frac(2048));
    }
}

#[test]
fn throughput_saturates_with_batch() {
    let m = CpuTimingModel::aws_16vcpu();
    let model = ModelSpec::small_production();
    let mut prev = 0.0;
    for b in [1u64, 16, 64, 256, 1024, 2048, 8192] {
        let tp = m.throughput_items_per_sec(&model, b);
        assert!(tp >= prev, "throughput must grow with batch (B={b})");
        prev = tp;
    }
    // But saturates: doubling from 2048 gains little.
    let gain = m.throughput_items_per_sec(&model, 4096) / m.throughput_items_per_sec(&model, 2048);
    assert!(gain < 1.25, "gain {gain}");
}

#[test]
fn reference_engine_consistency_across_models() {
    for model in [ModelSpec::dlrm_rmc2(8, 4), ModelSpec::dlrm_rmc2(12, 64)] {
        let engine = CpuReferenceEngine::build(&model, 3).unwrap();
        let q: Vec<u64> = (0..model.lookups_per_item() as u64).map(|i| i * 999).collect();
        let single = engine.predict(&q).unwrap();
        let batched = engine.predict_batch(&vec![q.clone(); 3]).unwrap();
        for b in batched {
            assert!((b - single).abs() < 1e-4);
        }
    }
}

#[test]
fn op_types_constant_matches_paper() {
    assert_eq!(EMBEDDING_OP_TYPES, 37, "§2.3: 37 operator types");
}
