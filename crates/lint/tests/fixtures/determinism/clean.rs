//! Deterministic counterpart: ordered map, no clocks.

use std::collections::BTreeMap;

pub fn count(keys: &[u64]) -> usize {
    let mut seen = BTreeMap::new();
    for &k in keys {
        seen.insert(k, ());
    }
    seen.len()
}
