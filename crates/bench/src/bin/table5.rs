//! Regenerates Table 5: DLRM-RMC2 embedding lookup latency and speedup
//! over Facebook's published baseline (8 and 12 tables, 4 lookups each,
//! vector lengths 4..64).

use microrec_bench::print_table;
use microrec_cpu::facebook_rmc2_baseline_lookup;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::MemoryConfig;
use microrec_placement::{heuristic_search, HeuristicOptions};

fn main() {
    let baseline = facebook_rmc2_baseline_lookup();
    // Paper: (tables, dim) -> (lookup ns, speedup)
    let paper = [
        (8, 4, 334.5, 72.4),
        (8, 8, 353.7, 68.4),
        (8, 16, 411.6, 58.8),
        (8, 32, 486.3, 49.7),
        (8, 64, 648.4, 37.3),
        (12, 4, 648.5, 37.3),
        (12, 8, 707.4, 34.2),
        (12, 16, 817.4, 29.6),
        (12, 32, 972.7, 24.8),
        (12, 64, 1296.9, 18.7),
    ];

    for tables in [8usize, 12] {
        let mut rows = Vec::new();
        for dim in [4u32, 8, 16, 32, 64] {
            let model = ModelSpec::dlrm_rmc2(tables, dim);
            // No Cartesian products, per the paper's Table 5 setup.
            let out = heuristic_search(
                &model,
                &MemoryConfig::u280(),
                Precision::F32,
                &HeuristicOptions { allow_merge: false, ..Default::default() },
            )
            .expect("placement");
            let lookup = out.cost.lookup_latency;
            let speedup = baseline.as_ns() / lookup.as_ns();
            let p = paper.iter().find(|r| r.0 == tables && r.1 == dim).expect("paper row");
            rows.push(vec![
                dim.to_string(),
                format!("{:.1} (paper {:.1})", lookup.as_ns(), p.2),
                format!("{:.1}x (paper {:.1}x)", speedup, p.3),
                out.cost.dram_rounds.to_string(),
            ]);
        }
        print_table(
            &format!("Table 5: {tables} tables x 4 lookups (DLRM-RMC2)"),
            &["Vec len", "Lookup (ns)", "Speedup", "Rounds"],
            &rows,
        );
    }
    println!(
        "\nBaseline: Facebook's published DLRM-RMC2 embedding time, {:.1} us (batch 256).",
        baseline.as_us()
    );
}
