//! Proves the steady-state embedding-lookup fast path performs zero heap
//! allocations: with a warm [`HotRowCache`] in front of an
//! [`EmbeddingArena`], repeated gathers (hits and misses alike) never
//! touch the global allocator.
//!
//! A single `#[test]` keeps the process to one test thread, so the
//! counting allocator's delta is attributable to the code under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the `System` allocator and
// only adds a relaxed atomic increment, so `GlobalAlloc`'s contract holds
// exactly as it does for `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we pass the
    // layout through to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller gave us, forwarded to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with this
    // layout — which means it came from `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` pair is valid for `System` per the above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; all three
    // arguments are forwarded to `System` untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` was allocated by `System` with `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Minimum allocation delta of `f` over a few attempts. The lookup path
/// under test is deterministic, so if it allocated even once per call the
/// delta would be positive on *every* attempt; taking the minimum filters
/// out unrelated one-shot allocations from harness threads sharing the
/// process-global counter.
fn settled_delta(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = allocation_count();
        f();
        best = best.min(allocation_count() - before);
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn steady_state_lookup_never_allocates() {
    use microrec_embedding::{EmbeddingArena, EmbeddingTable, HotRowCache, RowFormat, TableSpec};

    let tables: Vec<EmbeddingTable> =
        (0..6).map(|i| EmbeddingTable::procedural(TableSpec::new("t", 500, 16), 100 + i)).collect();
    let dims = [16u32; 6];

    for format in [RowFormat::F32, RowFormat::F16, RowFormat::I8] {
        let arena = EmbeddingArena::build(&tables, format, &[0; 6], u64::MAX).unwrap();
        let mut cache = HotRowCache::new(&dims, 256, 8);
        let mut out = vec![0.0f32; arena.feature_len()];
        // A deterministic skewed trace: row = i² mod 97 re-hits heavily.
        let trace: Vec<u64> = (0..512u64).map(|i| (i * i) % 97).collect();

        // Warm: run the whole trace once through the cache-fronted path.
        let run = |cache: &mut HotRowCache, out: &mut [f32]| {
            for &row in &trace {
                let mut offset = 0usize;
                for (t, &dim) in dims.iter().enumerate() {
                    let dim = dim as usize;
                    let slot = &mut out[offset..offset + dim];
                    if !cache.lookup_into(t, row, slot) {
                        arena.read_row_into(t, row, slot).unwrap();
                        cache.insert(t, row, slot, arena.source_row_bytes(t));
                    }
                    offset += dim;
                }
            }
        };
        run(&mut cache, &mut out);
        assert!(cache.hits() > 0, "warm-up produced no hits");

        let delta = settled_delta(|| {
            for _ in 0..8 {
                run(&mut cache, &mut out);
            }
        });
        assert_eq!(delta, 0, "{format} lookup path allocated in steady state");

        // The batched probe is equally allocation-free once its miss
        // scratch has been sized to the table count.
        let mut misses = Vec::with_capacity(dims.len());
        let probe = |cache: &mut HotRowCache, out: &mut [f32], misses: &mut Vec<usize>| {
            for &row in &trace {
                let query = [row; 6];
                cache.probe_round(&query, out, misses);
                for &t in misses.iter() {
                    let offset = t * 16;
                    let slot = &mut out[offset..offset + 16];
                    arena.read_row_into(t, row, slot).unwrap();
                    cache.insert(t, row, slot, arena.source_row_bytes(t));
                }
            }
        };
        probe(&mut cache, &mut out, &mut misses);
        let delta = settled_delta(|| {
            for _ in 0..8 {
                probe(&mut cache, &mut out, &mut misses);
            }
        });
        assert_eq!(delta, 0, "{format} probe_round path allocated in steady state");
    }
}
