//! Seeded violation: sleeping while a mutex guard is held stalls every
//! thread contending for `state` — directly, and through a call.

impl Throttle {
    pub fn drain_one(&self) -> Option<u32> {
        let mut g = lock_or_recover(&self.state);
        std::thread::sleep(self.backoff);
        g.pop()
    }

    pub fn drain_via_helper(&self) -> usize {
        let g = lock_or_recover(&self.state);
        nap();
        g.len()
    }
}

fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
