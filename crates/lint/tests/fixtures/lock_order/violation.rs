//! Seeded ABBA deadlock: `sum_ab` nests alpha→beta while `refresh`
//! nests beta→alpha, so the lock-acquisition graph has a cycle.

impl Metrics {
    pub fn sum_ab(&self) -> u32 {
        let a = lock_or_recover(&self.alpha);
        let b = lock_or_recover(&self.beta);
        *a + *b
    }

    pub fn refresh(&self) -> u32 {
        let b = lock_or_recover(&self.beta);
        let a = lock_or_recover(&self.alpha);
        *a + *b
    }
}
