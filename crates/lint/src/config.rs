//! `lint.toml` manifest: which lint applies where.
//!
//! The workspace has no TOML dependency, so this module parses the small
//! subset the manifest needs: `[lints.<id>]` sections, string keys, and
//! (possibly multi-line) string arrays. Path scopes are `/`-separated
//! globs where `*` matches within one path segment and `**` matches any
//! number of segments.

use std::collections::BTreeMap;
use std::fmt;

/// Every lint id the tool knows, in reporting order. The first five are
/// the single-file structural lints; the rest are the interprocedural
/// flow lints added with the call-graph pass.
pub const LINT_IDS: [&str; 11] = [
    "hot-path-alloc",
    "no-panic-serving",
    "unsafe-audit",
    "determinism",
    "condvar-loop",
    "transitive-hot-path-alloc",
    "transitive-panic",
    "lock-order",
    "blocking-under-lock",
    "ring-protocol",
    "unused-allow",
];

/// Diagnostic id for a broken `lint: allow` comment (always active).
pub const MALFORMED_ALLOW: &str = "malformed-allow";

/// How a lint's diagnostics are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// Fails the run (and CI).
    #[default]
    Deny,
    /// Reported but only fails under `--deny-all`.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// Where one lint applies.
#[derive(Debug, Clone, Default)]
pub struct LintScope {
    /// Path globs (workspace-relative) the lint scans.
    pub paths: Vec<String>,
    /// If non-empty, the lint only fires inside functions with these
    /// names (the per-function hot-path designation). Entries are bare
    /// names (`worker_loop`) or qualified `Type::method` paths
    /// (`HotRowCache::insert`) — a qualified entry only designates that
    /// impl's method, not every same-named function.
    pub functions: Vec<String>,
    pub severity: Severity,
}

/// Parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Workspace-relative path prefixes/globs to skip entirely.
    pub exclude: Vec<String>,
    /// Scope per configured lint id; unconfigured lints never fire.
    pub lints: BTreeMap<String, LintScope>,
}

/// A manifest parse error with its line number.
#[derive(Debug, Clone)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the manifest text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for syntax errors, unknown lint ids, or
    /// unknown keys (typos in the manifest must fail loudly).
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section: Vec<String> = Vec::new();
        // `inherit = "<id>"` requests, resolved after the whole manifest
        // is read so a section may inherit from one declared later.
        let mut inherits: Vec<(String, String, usize)> = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0usize;
        while i < lines.len() {
            let lineno = i + 1;
            let line = strip_toml_comment(lines[i]).trim().to_string();
            i += 1;
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated section header"))?;
                section = header.split('.').map(|s| s.trim().to_string()).collect();
                if section.len() == 2 && section[0] == "lints" {
                    let id = section[1].clone();
                    if !LINT_IDS.contains(&id.as_str()) {
                        return Err(err(lineno, &format!("unknown lint id `{id}`")));
                    }
                    config.lints.entry(id).or_default();
                } else {
                    return Err(err(lineno, &format!("unknown section `[{}]`", section.join("."))));
                }
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            // Multi-line arrays: keep consuming until brackets balance.
            while value.starts_with('[') && !balanced(&value) {
                if i >= lines.len() {
                    return Err(err(lineno, "unterminated array"));
                }
                value.push(' ');
                value.push_str(strip_toml_comment(lines[i]).trim());
                i += 1;
            }
            if section.len() == 2 && key == "inherit" {
                let target = parse_string(&value, lineno)?;
                if !LINT_IDS.contains(&target.as_str()) {
                    return Err(err(lineno, &format!("cannot inherit unknown lint `{target}`")));
                }
                inherits.push((section[1].clone(), target, lineno));
                continue;
            }
            apply_key(&mut config, &section, &key, &value, lineno)?;
        }
        for (id, target, lineno) in inherits {
            let Some(source) = config.lints.get(&target).cloned() else {
                return Err(err(
                    lineno,
                    &format!("`inherit = \"{target}\"` refers to a lint not configured here"),
                ));
            };
            let scope = config.lints.get_mut(&id).expect("section header inserted the entry");
            if scope.paths.is_empty() {
                scope.paths = source.paths;
            }
            if scope.functions.is_empty() {
                scope.functions = source.functions;
            }
        }
        Ok(config)
    }
}

fn err(line: usize, message: &str) -> ConfigError {
    ConfigError { line, message: message.to_string() }
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(line, &format!("expected a quoted string, got `{v}`")))
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| err(line, "expected an array"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

fn apply_key(
    config: &mut Config,
    section: &[String],
    key: &str,
    value: &str,
    line: usize,
) -> Result<(), ConfigError> {
    if section.is_empty() {
        return match key {
            "exclude" => {
                config.exclude = parse_string_array(value, line)?;
                Ok(())
            }
            _ => Err(err(line, &format!("unknown top-level key `{key}`"))),
        };
    }
    let id = &section[1];
    let scope = config.lints.get_mut(id).expect("section header inserted the entry");
    match key {
        "paths" => scope.paths = parse_string_array(value, line)?,
        "functions" => scope.functions = parse_string_array(value, line)?,
        "severity" => {
            scope.severity = match parse_string(value, line)?.as_str() {
                "deny" => Severity::Deny,
                "warn" => Severity::Warn,
                other => {
                    return Err(err(line, &format!("severity must be deny|warn, got `{other}`")))
                }
            };
        }
        _ => return Err(err(line, &format!("unknown key `{key}` in [lints.{id}]"))),
    }
    Ok(())
}

/// Matches a `/`-separated glob against a relative path. `**` spans any
/// number of segments; `*` matches within a segment.
#[must_use]
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => (0..=segs.len()).any(|skip| match_segments(&pat[1..], &segs[skip..])),
        Some(p) => {
            !segs.is_empty() && segment_match(p, segs[0]) && match_segments(&pat[1..], &segs[1..])
        }
    }
}

fn segment_match(pattern: &str, segment: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let s: Vec<char> = segment.chars().collect();
    wildcard(&p, &s)
}

fn wildcard(p: &[char], s: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('*') => (0..=s.len()).any(|skip| wildcard(&p[1..], &s[skip..])),
        Some(&c) => !s.is_empty() && s[0] == c && wildcard(&p[1..], &s[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_manifest_with_arrays_and_comments() {
        let cfg = Config::parse(
            r#"
# workspace manifest
exclude = ["target", "crates/lint/tests/fixtures"]

[lints.hot-path-alloc]
paths = [
  "crates/dnn/src/gemm.rs", # hot kernels
  "crates/core/src/runtime/mod.rs",
]
functions = ["dot", "worker_loop"]

[lints.determinism]
paths = ["crates/memsim/**"]
severity = "deny"
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude.len(), 2);
        let hot = &cfg.lints["hot-path-alloc"];
        assert_eq!(hot.paths.len(), 2);
        assert_eq!(hot.functions, vec!["dot", "worker_loop"]);
        assert_eq!(cfg.lints["determinism"].severity, Severity::Deny);
    }

    #[test]
    fn unknown_lint_id_is_rejected() {
        assert!(Config::parse("[lints.no-such-lint]\npaths = []\n").is_err());
        assert!(Config::parse("[wrong]\n").is_err());
        assert!(Config::parse("mystery = \"x\"\n").is_err());
    }

    #[test]
    fn inherit_copies_scope_from_the_named_lint() {
        let cfg = Config::parse(
            "[lints.transitive-hot-path-alloc]\ninherit = \"hot-path-alloc\"\n\n[lints.hot-path-alloc]\npaths = [\"crates/dnn/**\"]\nfunctions = [\"dot\", \"Gemm::run\"]\n",
        )
        .unwrap();
        let t = &cfg.lints["transitive-hot-path-alloc"];
        assert_eq!(t.paths, vec!["crates/dnn/**"]);
        assert_eq!(t.functions, vec!["dot", "Gemm::run"]);
    }

    #[test]
    fn inherit_from_an_unconfigured_lint_fails() {
        assert!(
            Config::parse("[lints.transitive-panic]\ninherit = \"no-panic-serving\"\n").is_err()
        );
        assert!(Config::parse("[lints.transitive-panic]\ninherit = \"nope\"\n").is_err());
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("crates/memsim/**", "crates/memsim/src/stats.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match("crates/core/src/runtime/*.rs", "crates/core/src/runtime/queue.rs"));
        assert!(!glob_match("crates/core/src/runtime/*.rs", "crates/core/src/runtime/sub/x.rs"));
        assert!(glob_match("crates/core/src/pool.rs", "crates/core/src/pool.rs"));
        assert!(!glob_match("crates/core/src/pool.rs", "crates/core/src/pool.rs.bak"));
        assert!(glob_match("**/fixtures/**", "crates/lint/tests/fixtures/a/b.rs"));
    }
}
