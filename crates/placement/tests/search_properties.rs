//! Randomized and integration tests for placement search on generated
//! production-like models (seeded RNG, reproducible).

use microrec_rng::Rng;

use microrec_embedding::{synthetic_model, Precision, SyntheticModelConfig};
use microrec_memsim::MemoryConfig;
use microrec_placement::{
    allocate_with, brute_force_search, brute_force_search_parallel, heuristic_search,
    heuristic_search_parallel, optimality_gap, refine_plan, AllocStrategy, HeuristicOptions,
};

/// The heuristic produces valid, never-regressing plans on random
/// production-like models of 8-60 tables.
#[test]
fn heuristic_on_synthetic_models() {
    let mut rng = Rng::seed_from_u64(0x4E02);
    for _ in 0..24 {
        let tables = rng.gen_range_usize(8, 60);
        let seed = rng.next_u64();
        let model = synthetic_model(&SyntheticModelConfig {
            tables,
            target_bytes: 800_000_000,
            seed,
            ..Default::default()
        })
        .unwrap();
        let config = MemoryConfig::u280();
        let base = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )
        .unwrap();
        let best = heuristic_search(&model, &config, Precision::F32, &Default::default()).unwrap();
        best.plan.validate(&model, &config).unwrap();
        assert!(best.cost.lookup_latency <= base.cost.lookup_latency);
        assert!(best.cost.dram_rounds <= base.cost.dram_rounds);
    }
}

/// Refinement never regresses and always validates, whichever strategy
/// produced the starting plan.
#[test]
fn refinement_is_safe() {
    let mut rng = Rng::seed_from_u64(0x2EF1);
    for _ in 0..24 {
        let tables = rng.gen_range_usize(6, 30);
        let seed = rng.next_u64();
        let lpt = rng.gen_bool(0.5);
        let model = synthetic_model(&SyntheticModelConfig {
            tables,
            target_bytes: 200_000_000,
            seed,
            ..Default::default()
        })
        .unwrap();
        let config = MemoryConfig::u280();
        let strategy = if lpt { AllocStrategy::Lpt } else { AllocStrategy::RoundRobin };
        let plan = allocate_with(
            &model,
            &microrec_embedding::MergePlan::none(),
            &config,
            Precision::F32,
            strategy,
        )
        .unwrap();
        let out = refine_plan(&plan, &model, &config, 4);
        out.plan.validate(&model, &config).unwrap();
        assert!(out.after.lookup_latency <= out.before.lookup_latency);
    }
}

/// The parallel searches agree exactly with their sequential counterparts
/// on randomized synthetic models (beyond the production spot checks).
#[test]
fn parallel_searches_match_sequential_on_synthetic_models() {
    let mut rng = Rng::seed_from_u64(0x9A12);
    let config = MemoryConfig::u280();
    for _ in 0..8 {
        let tables = rng.gen_range_usize(8, 40);
        let seed = rng.next_u64();
        let model = synthetic_model(&SyntheticModelConfig {
            tables,
            target_bytes: 400_000_000,
            seed,
            ..Default::default()
        })
        .unwrap();
        let seq = heuristic_search(&model, &config, Precision::F32, &Default::default()).unwrap();
        let threads = rng.gen_range_usize(2, 8);
        let par = heuristic_search_parallel(
            &model,
            &config,
            Precision::F32,
            &Default::default(),
            threads,
        )
        .unwrap();
        assert_eq!(par.plan, seq.plan, "tables={tables} threads={threads}");
        assert_eq!(par.cost, seq.cost);
    }

    let mut cramped = MemoryConfig::fpga_without_hbm(3);
    cramped.banks.retain(|b| b.id.kind.is_dram());
    for seed in 0..4u64 {
        let model = synthetic_model(&SyntheticModelConfig {
            name: format!("pbrute{seed}"),
            tables: 7,
            target_bytes: 40_000_000,
            hidden: vec![32],
            lookups_per_table: 1,
            seed,
        })
        .unwrap();
        let seq = brute_force_search(&model, &cramped, Precision::F32, AllocStrategy::RoundRobin)
            .unwrap();
        let par = brute_force_search_parallel(
            &model,
            &cramped,
            Precision::F32,
            AllocStrategy::RoundRobin,
            3,
        )
        .unwrap();
        assert_eq!(par.plan, seq.plan, "seed {seed}");
        assert_eq!(par.cost, seq.cost);
        assert_eq!(par.evaluated, seq.evaluated);
    }
}

/// The heuristic stays near brute-force optimal across a deterministic
/// sweep of small instances (stronger than the unit test's spot checks).
#[test]
fn heuristic_optimality_sweep() {
    let mut config = MemoryConfig::fpga_without_hbm(3);
    config.banks.retain(|b| b.id.kind.is_dram());
    let mut worst_gap: f64 = 1.0;
    for seed in 0..12u64 {
        let model = synthetic_model(&SyntheticModelConfig {
            name: format!("sweep{seed}"),
            tables: 7,
            target_bytes: 40_000_000,
            hidden: vec![32],
            lookups_per_table: 1,
            seed,
        })
        .unwrap();
        let brute =
            brute_force_search(&model, &config, Precision::F32, AllocStrategy::RoundRobin).unwrap();
        let heur = heuristic_search(&model, &config, Precision::F32, &Default::default()).unwrap();
        let gap = optimality_gap(&heur.cost, &brute.cost);
        worst_gap = worst_gap.max(gap);
        assert!(heur.evaluated * 20 < brute.evaluated.max(100));
    }
    assert!(worst_gap <= 1.35, "heuristic should stay near-optimal, worst gap {worst_gap:.3}");
}

/// LPT never yields a worse makespan than round-robin on identical
/// instances (it optimizes exactly that metric).
#[test]
fn lpt_dominates_round_robin_on_makespan() {
    for seed in 0..8u64 {
        let model = synthetic_model(&SyntheticModelConfig {
            tables: 40,
            target_bytes: 500_000_000,
            seed,
            ..Default::default()
        })
        .unwrap();
        let config = MemoryConfig::u280();
        let rr = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions {
                strategy: AllocStrategy::RoundRobin,
                allow_merge: false,
                ..Default::default()
            },
        )
        .unwrap();
        let lpt = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions {
                strategy: AllocStrategy::Lpt,
                allow_merge: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            lpt.cost.lookup_latency <= rr.cost.lookup_latency,
            "seed {seed}: lpt {} vs rr {}",
            lpt.cost.lookup_latency,
            rr.cost.lookup_latency
        );
    }
}

/// Multi-way groups place and validate.
#[test]
fn three_way_groups_allocate() {
    let model = synthetic_model(&SyntheticModelConfig {
        tables: 12,
        target_bytes: 20_000_000,
        ..Default::default()
    })
    .unwrap();
    let config = MemoryConfig::u280();
    let out = heuristic_search(
        &model,
        &config,
        Precision::F32,
        &HeuristicOptions { group_size: 3, ..Default::default() },
    )
    .unwrap();
    out.plan.validate(&model, &config).unwrap();
}
