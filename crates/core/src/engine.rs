//! The MicroRec inference engine — the paper's primary contribution,
//! assembled: Cartesian-merged tables placed across the hybrid memory by
//! Algorithm 1, an item-by-item pipelined accelerator, and a fixed-point
//! DNN datapath sharing weights with the `f32` reference.

use microrec_accel::{estimate_usage, AccelConfig, Pipeline, ResourceUsage, U280_CAPACITY};
use microrec_dnn::{FixedNum, Mlp, PackedMlp, ScratchArena, Q16, Q32};
use microrec_embedding::{synthetic_dense_features, Catalog, ModelSpec, Precision};
use microrec_memsim::{AddressedRead, HybridMemory, MemoryConfig, RowPolicy, SimTime};
use microrec_placement::{heuristic_search, HeuristicOptions, Plan, PlanCost};

use crate::error::MicroRecError;

/// Builder for a [`MicroRec`] engine.
///
/// # Examples
///
/// ```
/// use microrec_core::MicroRec;
/// use microrec_embedding::{ModelSpec, Precision};
///
/// let mut engine = MicroRec::builder(ModelSpec::dlrm_rmc2(8, 4))
///     .precision(Precision::Fixed16)
///     .seed(7)
///     .build()?;
/// let query = vec![42u64; 8 * 4];
/// let ctr = engine.predict(&query)?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MicroRecBuilder {
    model: ModelSpec,
    memory: MemoryConfig,
    precision: Precision,
    storage_precision: Precision,
    seed: u64,
    options: HeuristicOptions,
    accel: Option<AccelConfig>,
}

impl MicroRecBuilder {
    /// Starts a builder for `model` with U280 memory, fixed-16 datapath
    /// precision, 32-bit embedding storage (the paper keeps "the same
    /// element data width of 32-bits" in memory for both precisions,
    /// Table 4), and default search options.
    #[must_use]
    pub fn new(model: ModelSpec) -> Self {
        MicroRecBuilder {
            model,
            memory: MemoryConfig::u280(),
            precision: Precision::Fixed16,
            storage_precision: Precision::F32,
            seed: 0x00AC_CE55,
            options: HeuristicOptions::default(),
            accel: None,
        }
    }

    /// Sets the memory platform.
    #[must_use]
    pub fn memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Sets the datapath precision.
    #[must_use]
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the embedding storage precision (default 32-bit, matching the
    /// paper's memory layout for both datapath precisions).
    #[must_use]
    pub fn storage_precision(mut self, precision: Precision) -> Self {
        self.storage_precision = precision;
        self
    }

    /// Sets the RNG seed for table contents and weights.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets placement-search options (e.g. disabling Cartesian merging for
    /// the HBM-only ablation).
    #[must_use]
    pub fn search_options(mut self, options: HeuristicOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the accelerator configuration (PE counts / clock).
    #[must_use]
    pub fn accel_config(mut self, accel: AccelConfig) -> Self {
        self.accel = Some(accel);
        self
    }

    /// Runs the placement search and assembles the engine.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the model is inconsistent, cannot be
    /// placed, or the accelerator configuration does not fit it.
    pub fn build(self) -> Result<MicroRec, MicroRecError> {
        self.model.validate()?;
        let outcome =
            heuristic_search(&self.model, &self.memory, self.storage_precision, &self.options)?;
        let plan = outcome.plan;
        let cost = outcome.cost;

        let mut memory = HybridMemory::new(self.memory);
        plan.apply(&mut memory)?;
        // Byte offset of every (table, replica) region, for addressed reads.
        let mut region_offsets = Vec::with_capacity(plan.placed.len());
        for table in &plan.placed {
            let mut offsets = Vec::with_capacity(table.banks.len());
            for (r, &bank) in table.banks.iter().enumerate() {
                let label = if table.banks.len() > 1 {
                    format!("{}#r{r}", table.spec.name)
                } else {
                    table.spec.name.clone()
                };
                offsets.push(memory.region_offset(bank, &label)?);
            }
            region_offsets.push(offsets);
        }

        let catalog = Catalog::build(&self.model, &plan.merge, self.seed)?;
        let mlp = Mlp::top_mlp(self.model.feature_len(), &self.model.hidden, self.seed ^ 0x5EED)?;
        let bottom = if self.model.has_bottom_mlp() {
            Some(Mlp::bottom_mlp(
                self.model.dense_dim,
                &self.model.bottom_hidden,
                self.seed ^ 0x5EED,
            )?)
        } else {
            None
        };
        let accel = self.accel.unwrap_or_else(|| {
            if self.model.hidden.len() == 3 {
                AccelConfig::for_model(&self.model, self.precision)
            } else {
                AccelConfig::generic(&self.model, self.precision)
            }
        });
        let pipeline = Pipeline::build(&self.model, &accel, cost.lookup_latency)?;

        Ok(MicroRec {
            model: self.model,
            precision: self.precision,
            plan,
            cost,
            memory,
            region_offsets,
            catalog,
            mlp,
            bottom,
            accel,
            pipeline,
            batch_path: BatchPath::Unbuilt,
        })
    }
}

/// Lazily built batched fast path at one datapath precision: packed
/// weights (quantized once), a reusable scratch arena, and a staging
/// buffer for quantized inputs. After the first batch, steady-state
/// serving of same-or-smaller batches stops allocating in the DNN stage.
#[derive(Debug, Clone)]
struct FastPath<T> {
    packed: PackedMlp<T>,
    arena: ScratchArena<T>,
    staging: Vec<T>,
}

impl<T: FixedNum> FastPath<T> {
    fn build(mlp: &Mlp) -> Self {
        FastPath { packed: PackedMlp::pack(mlp), arena: ScratchArena::new(), staging: Vec::new() }
    }

    /// Quantizes the gathered feature vectors and runs the packed batched
    /// forward pass; returns de-quantized CTRs in query order.
    fn run(&mut self, features: &[Vec<f32>]) -> Result<Vec<f32>, microrec_dnn::DnnError> {
        let batch = features.len();
        self.staging.clear();
        for item in features {
            self.staging.extend(item.iter().map(|&v| T::from_f32(v)));
        }
        self.packed.warm(batch, &mut self.arena);
        let out = self.packed.forward_batch_into(&self.staging, batch, &mut self.arena)?;
        let stride = self.packed.output_dim().max(1);
        // lint: allow(hot-path-alloc) the collected Vec is the output handed to the caller
        Ok(out.chunks_exact(stride).map(|c| c[0].to_f32()).collect())
    }
}

/// The engine's cached fast path, keyed by the (fixed) datapath precision.
#[derive(Debug, Clone)]
enum BatchPath {
    Unbuilt,
    F32(FastPath<f32>),
    Q16(FastPath<Q16>),
    Q32(FastPath<Q32>),
}

/// The assembled MicroRec engine.
#[derive(Debug, Clone)]
pub struct MicroRec {
    model: ModelSpec,
    precision: Precision,
    plan: Plan,
    cost: PlanCost,
    memory: HybridMemory,
    region_offsets: Vec<Vec<u64>>,
    catalog: Catalog,
    mlp: Mlp,
    bottom: Option<Mlp>,
    accel: AccelConfig,
    pipeline: Pipeline,
    batch_path: BatchPath,
}

impl MicroRec {
    /// Starts building an engine for `model`.
    #[must_use]
    pub fn builder(model: ModelSpec) -> MicroRecBuilder {
        MicroRecBuilder::new(model)
    }

    /// The served model.
    #[must_use]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The chosen placement plan.
    #[must_use]
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The plan's cost summary (lookup latency, rounds, storage).
    #[must_use]
    pub fn placement_cost(&self) -> &PlanCost {
        &self.cost
    }

    /// The table catalog (logical→physical mapping).
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The pipeline timing model.
    #[must_use]
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The accelerator configuration.
    #[must_use]
    pub fn accel_config(&self) -> &AccelConfig {
        &self.accel
    }

    /// Datapath precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The hybrid memory with the plan applied (capacity ledger + access
    /// statistics).
    #[must_use]
    pub fn memory(&self) -> &HybridMemory {
        &self.memory
    }

    /// End-to-end single-item inference latency.
    #[must_use]
    pub fn latency(&self) -> SimTime {
        self.pipeline.latency()
    }

    /// Steady-state throughput in items per second.
    #[must_use]
    pub fn throughput_items_per_sec(&self) -> f64 {
        self.pipeline.throughput_items_per_sec()
    }

    /// Operations per second (the paper's GOP/s metric).
    #[must_use]
    pub fn throughput_ops_per_sec(&self) -> f64 {
        self.model.flops_per_item() as f64 * self.throughput_items_per_sec()
    }

    /// Time to process `n` items through the pipeline.
    #[must_use]
    pub fn batch_latency(&self, n: u64) -> SimTime {
        self.pipeline.batch_latency(n)
    }

    /// Estimated FPGA resource usage (Table 6 model).
    #[must_use]
    pub fn resource_usage(&self) -> ResourceUsage {
        estimate_usage(&self.model, &self.accel)
    }

    /// Whether the design fits the U280.
    #[must_use]
    pub fn fits_device(&self) -> bool {
        self.resource_usage().fits(&U280_CAPACITY)
    }

    /// Functionally predicts the CTR for one query, driving the simulated
    /// memory (statistics accumulate in [`MicroRec::memory`]) and the
    /// fixed-point datapath.
    ///
    /// The query layout matches the CPU reference engine: round-major,
    /// `lookups_per_table × num_tables` indices.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        let features = self.gather_features(query)?;
        let ctr = match self.precision {
            Precision::Fixed16 => self.mlp.predict_ctr_quantized::<Q16>(&features)?,
            Precision::Fixed32 => self.mlp.predict_ctr_quantized::<Q32>(&features)?,
            Precision::F32 => self.mlp.predict_ctr(&features)?,
        };
        Ok(ctr)
    }

    /// Predicts CTRs for a batch of queries through the amortized fast
    /// path: one embedding-gather sweep per lookup round for the whole
    /// batch, and one packed GEMM per MLP layer for all items.
    ///
    /// Results are **bit-identical** to calling [`MicroRec::predict`] per
    /// query, and the simulated memory sees exactly the same reads (one
    /// per table per round per query). The packed weights and scratch
    /// buffers are built on first use and reused across calls.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        if queries.is_empty() {
            // lint: allow(hot-path-alloc) an empty Vec never touches the allocator
            return Ok(Vec::new());
        }
        let features = self.gather_features_batch(queries)?;
        let mut path = std::mem::replace(&mut self.batch_path, BatchPath::Unbuilt);
        let precision_matches = matches!(
            (&path, self.precision),
            (BatchPath::F32(_), Precision::F32)
                | (BatchPath::Q16(_), Precision::Fixed16)
                | (BatchPath::Q32(_), Precision::Fixed32)
        );
        if !precision_matches {
            path = match self.precision {
                Precision::F32 => BatchPath::F32(FastPath::build(&self.mlp)),
                Precision::Fixed16 => BatchPath::Q16(FastPath::build(&self.mlp)),
                Precision::Fixed32 => BatchPath::Q32(FastPath::build(&self.mlp)),
            };
        }
        let result = match &mut path {
            BatchPath::F32(fp) => fp.run(&features),
            BatchPath::Q16(fp) => fp.run(&features),
            BatchPath::Q32(fp) => fp.run(&features),
            BatchPath::Unbuilt => unreachable!("fast path built above"),
        };
        self.batch_path = path;
        Ok(result?)
    }

    /// Checks a query's arity against the model.
    fn check_query(&self, query: &[u64]) -> Result<(), MicroRecError> {
        let expected = self.model.num_tables() * self.model.lookups_per_table as usize;
        if query.len() != expected {
            return Err(MicroRecError::Embedding(
                microrec_embedding::EmbeddingError::ArityMismatch { expected, actual: query.len() },
            ));
        }
        Ok(())
    }

    /// The dense branch of the feature vector (empty when the model has no
    /// dense features): raw features, or the bottom MLP's activations run
    /// at the datapath precision.
    fn dense_features(&self, query: &[u64]) -> Result<Vec<f32>, MicroRecError> {
        if self.model.dense_dim == 0 {
            return Ok(Vec::new());
        }
        let dense = synthetic_dense_features(query, self.model.dense_dim);
        let processed = match &self.bottom {
            Some(bottom) => match self.precision {
                Precision::Fixed16 => bottom
                    .forward(&dense.iter().map(|&v| Q16::from_f32(v)).collect::<Vec<_>>())?
                    .into_iter()
                    .map(Q16::to_f32)
                    .collect(),
                Precision::Fixed32 => bottom
                    .forward(&dense.iter().map(|&v| Q32::from_f32(v)).collect::<Vec<_>>())?
                    .into_iter()
                    .map(Q32::to_f32)
                    .collect(),
                Precision::F32 => bottom.forward(&dense)?,
            },
            None => dense,
        };
        Ok(processed)
    }

    /// Maps one resolved lookup to a physical read (replicas round-robin
    /// across lookup rounds).
    fn addressed_read(&self, table: usize, row: u64, round: usize) -> AddressedRead {
        let placed = &self.plan.placed[table];
        let replica = round % placed.banks.len();
        let row_bytes = placed.row_bytes(self.plan.precision);
        let offset = self.region_offsets[table][replica] + row * u64::from(row_bytes);
        AddressedRead::new(placed.banks[replica], offset, row_bytes)
    }

    /// Quantizes gathered embedding values to the datapath precision
    /// (lossless per element relative to their stored width).
    fn quantize_features(&self, values: &mut [f32]) {
        match self.precision {
            Precision::Fixed16 => {
                for v in values {
                    *v = Q16::from_f32(*v).to_f32();
                }
            }
            Precision::Fixed32 => {
                for v in values {
                    *v = Q32::from_f32(*v).to_f32();
                }
            }
            Precision::F32 => {}
        }
    }

    /// Gathers feature vectors for a whole batch, issuing each lookup
    /// round as one combined sweep of physical reads (the per-query read
    /// count is unchanged; only the dispatch is amortized).
    fn gather_features_batch(
        &mut self,
        queries: &[Vec<u64>],
    ) -> Result<Vec<Vec<f32>>, MicroRecError> {
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        let mut features = Vec::with_capacity(queries.len());
        for query in queries {
            self.check_query(query)?;
            let mut item = Vec::with_capacity(self.model.feature_len() as usize);
            item.extend(self.dense_features(query)?);
            features.push(item);
        }
        let mut requests = Vec::with_capacity(queries.len() * tables);
        for round in 0..rounds {
            requests.clear();
            for query in queries {
                let indices = &query[round * tables..(round + 1) * tables];
                for lookup in &self.catalog.resolve(indices)? {
                    requests.push(self.addressed_read(lookup.table, lookup.row, round));
                }
            }
            self.memory.parallel_read_addressed(&requests)?;
            for (item, query) in features.iter_mut().zip(queries) {
                let indices = &query[round * tables..(round + 1) * tables];
                let mut round_features = self.catalog.gather_vec(indices)?;
                self.quantize_features(&mut round_features);
                item.extend(round_features);
            }
        }
        Ok(features)
    }

    /// Gathers the (de-quantized) concatenated feature vector for a query,
    /// issuing the physical reads against the simulated memory.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn gather_features(&mut self, query: &[u64]) -> Result<Vec<f32>, MicroRecError> {
        self.check_query(query)?;
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        let mut features = Vec::with_capacity(self.model.feature_len() as usize);
        // Dense path: the bottom MLP runs on the accelerator's datapath
        // precision (its own small PE group, §Figure 1's dense branch).
        features.extend(self.dense_features(query)?);
        for round in 0..rounds {
            let indices = &query[round * tables..(round + 1) * tables];
            // Resolve to physical reads and drive the memory simulator
            // with real byte addresses (so DRAM row-buffer state is
            // modelled under the active page policy).
            let requests: Vec<AddressedRead> = self
                .catalog
                .resolve(indices)?
                .iter()
                .map(|l| self.addressed_read(l.table, l.row, round))
                .collect();
            self.memory.parallel_read_addressed(&requests)?;
            // Functional gather (embedding values quantize losslessly per
            // element relative to their stored precision).
            let mut round_features = self.catalog.gather_vec(indices)?;
            self.quantize_features(&mut round_features);
            features.extend(round_features);
        }
        Ok(features)
    }

    /// Measures the lookup-stage time of one query against the simulated
    /// memory (row-buffer state included), without running the MLP.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn measure_lookup(&mut self, query: &[u64]) -> Result<SimTime, MicroRecError> {
        self.check_query(query)?;
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        let mut total = SimTime::ZERO;
        for round in 0..rounds {
            let indices = &query[round * tables..(round + 1) * tables];
            let requests: Vec<AddressedRead> = self
                .catalog
                .resolve(indices)?
                .iter()
                .map(|l| self.addressed_read(l.table, l.row, round))
                .collect();
            total += self.memory.parallel_read_addressed(&requests)?.elapsed;
        }
        Ok(total)
    }

    /// Sets the DRAM page policy of the simulated memory (closed page by
    /// default; open page lets Zipf-skewed traffic hit open rows).
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        self.memory.set_row_policy(policy);
    }

    /// Resets accumulated memory statistics.
    pub fn reset_stats(&mut self) {
        self.memory.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_cpu::CpuReferenceEngine;
    use microrec_placement::AllocStrategy;

    fn toy_engine(precision: Precision) -> MicroRec {
        MicroRec::builder(ModelSpec::dlrm_rmc2(6, 8)).precision(precision).seed(11).build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_engine() {
        let e = toy_engine(Precision::Fixed16);
        assert_eq!(e.model().num_tables(), 6);
        assert!(e.fits_device());
        assert!(e.latency().as_us() < 100.0);
        assert!(e.throughput_items_per_sec() > 1e4);
    }

    #[test]
    fn predictions_match_cpu_reference_within_quantization() {
        let model = ModelSpec::dlrm_rmc2(6, 8);
        let cpu = CpuReferenceEngine::build(&model, 11).unwrap();
        let mut fpga16 = toy_engine(Precision::Fixed16);
        let mut fpga32 = toy_engine(Precision::Fixed32);
        for k in 0..20u64 {
            let q: Vec<u64> = (0..24).map(|j| (k * 7919 + j * 104_729) % 500_000).collect();
            let reference = cpu.predict(&q).unwrap();
            let q16 = fpga16.predict(&q).unwrap();
            let q32 = fpga32.predict(&q).unwrap();
            assert!((reference - q32).abs() < 5e-3, "Q32 {q32} vs ref {reference}");
            assert!((reference - q16).abs() < 0.2, "Q16 {q16} vs ref {reference}");
            assert!(
                (reference - q32).abs() <= (reference - q16).abs() + 1e-6,
                "Q32 must be at least as close as Q16"
            );
        }
    }

    #[test]
    fn predict_drives_memory_statistics() {
        let mut e = toy_engine(Precision::Fixed16);
        assert_eq!(e.memory().stats().total().reads, 0);
        let q = vec![0u64; 24];
        e.predict(&q).unwrap();
        // 6 physical tables x 4 rounds = 24 reads.
        assert_eq!(e.memory().stats().total().reads, 24);
        e.reset_stats();
        assert_eq!(e.memory().stats().total().reads, 0);
    }

    #[test]
    fn merged_engine_equals_unmerged_engine() {
        // A cramped memory forces merging; predictions must not change.
        let model = ModelSpec::new(
            "cramped",
            (0..6)
                .map(|i| microrec_embedding::TableSpec::new(format!("t{i}"), 100 + i as u64, 4))
                .collect(),
            vec![64, 32],
            1,
        );
        let mut few_channels = MemoryConfig::fpga_without_hbm(3);
        few_channels.banks.retain(|b| b.id.kind.is_dram());
        let accel = AccelConfig {
            clock_hz: 120_000_000,
            precision: Precision::Fixed32,
            pes_per_layer: vec![16, 16],
            macs_per_pe_cycle: 10,
        };

        let mut merged = MicroRec::builder(model.clone())
            .memory(few_channels.clone())
            .precision(Precision::Fixed32)
            .seed(3)
            .accel_config(accel.clone())
            .build()
            .unwrap();
        assert!(merged.plan().merge.tables_eliminated() > 0, "expected merging");

        let mut unmerged = MicroRec::builder(model)
            .memory(few_channels)
            .precision(Precision::Fixed32)
            .seed(3)
            .accel_config(accel)
            .search_options(HeuristicOptions {
                allow_merge: false,
                strategy: AllocStrategy::RoundRobin,
                ..Default::default()
            })
            .build()
            .unwrap();

        for k in 0..30u64 {
            let q: Vec<u64> = (0..6).map(|j| (k * 13 + j * 7) % 100).collect();
            assert_eq!(
                merged.predict(&q).unwrap(),
                unmerged.predict(&q).unwrap(),
                "merging must be invisible to predictions"
            );
        }
        assert!(merged.placement_cost().lookup_latency <= unmerged.placement_cost().lookup_latency);
    }

    #[test]
    fn predict_batch_is_bit_identical_and_counts_reads() {
        for precision in [Precision::F32, Precision::Fixed16, Precision::Fixed32] {
            let mut sequential = toy_engine(precision);
            let mut batched = toy_engine(precision);
            for batch in [1usize, 7, 64] {
                let queries: Vec<Vec<u64>> = (0..batch)
                    .map(|i| (0..24).map(|j| ((i * 7919 + j * 104_729) % 500_000) as u64).collect())
                    .collect();
                let singles: Vec<f32> =
                    queries.iter().map(|q| sequential.predict(q).unwrap()).collect();
                batched.reset_stats();
                let fast = batched.predict_batch(&queries).unwrap();
                assert_eq!(fast.len(), batch);
                for (i, (f, s)) in fast.iter().zip(&singles).enumerate() {
                    assert_eq!(
                        f.to_bits(),
                        s.to_bits(),
                        "{precision:?} batch {batch} item {i}: {f} vs {s}"
                    );
                }
                // Same physical traffic: 6 tables x 4 rounds per query.
                assert_eq!(batched.memory().stats().total().reads, (batch * 24) as u64);
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut e = toy_engine(Precision::Fixed16);
        assert!(e.predict_batch(&[]).unwrap().is_empty());
        assert_eq!(e.memory().stats().total().reads, 0);
    }

    #[test]
    fn malformed_query_rejected() {
        let mut e = toy_engine(Precision::Fixed16);
        assert!(e.predict(&[0u64; 23]).is_err());
        let mut q = vec![0u64; 24];
        q[3] = u64::MAX;
        assert!(e.predict(&q).is_err());
    }

    #[test]
    fn production_engine_builds_and_matches_table3() {
        let e = MicroRec::builder(ModelSpec::small_production()).seed(5).build().unwrap();
        assert_eq!(e.plan().num_tables(), 42);
        assert_eq!(e.placement_cost().dram_rounds, 1);
        // Memory ledger reflects the plan.
        let allocated: u64 = e.memory().banks().map(|b| b.used()).sum();
        assert_eq!(allocated, e.placement_cost().storage_bytes);
    }
}
