//! Determinism guarantees: everything seeded is bit-reproducible across
//! runs, across equivalent code paths, and independent of accumulated
//! simulator state.

use microrec_core::MicroRec;
use microrec_embedding::{Catalog, MergePlan, ModelSpec, Precision};
use microrec_memsim::MemoryConfig;
use microrec_placement::{heuristic_search, heuristic_search_parallel, HeuristicOptions};
use microrec_workload::{QueryGenConfig, QueryGenerator, RequestTrace};

const SEED: u64 = 0xD37E_2026;

#[test]
fn placement_is_deterministic() {
    let model = ModelSpec::large_production();
    let config = MemoryConfig::u280();
    let a =
        heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default()).unwrap();
    let b =
        heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default()).unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.cost, b.cost);
    // Parallel search agrees bit-for-bit at every thread count.
    for threads in 1..=6 {
        let p = heuristic_search_parallel(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions::default(),
            threads,
        )
        .unwrap();
        assert_eq!(p.plan, a.plan, "threads={threads}");
    }
}

#[test]
fn engine_predictions_are_run_independent() {
    let model = ModelSpec::dlrm_rmc2(6, 8);
    let queries = QueryGenerator::new(&model, QueryGenConfig { zipf_exponent: 1.0, seed: SEED })
        .unwrap()
        .next_batch(20);

    let run = || {
        let mut engine = MicroRec::builder(model.clone())
            .precision(Precision::Fixed16)
            .seed(SEED)
            .build()
            .unwrap();
        engine.predict_batch(&queries).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn predictions_do_not_depend_on_history() {
    // The simulated memory accumulates statistics and row-buffer state,
    // but functional answers must be pure.
    let model = ModelSpec::dlrm_rmc2(4, 8);
    let mut engine = MicroRec::builder(model.clone()).seed(SEED).build().unwrap();
    let q1 = vec![7u64; 16];
    let q2 = vec![123u64; 16];
    let fresh = engine.predict(&q1).unwrap();
    for _ in 0..50 {
        engine.predict(&q2).unwrap();
    }
    assert_eq!(engine.predict(&q1).unwrap(), fresh);
}

#[test]
fn catalog_contents_depend_only_on_seed_and_structure() {
    let model = ModelSpec::small_production();
    let plain = Catalog::build(&model, &MergePlan::none(), SEED).unwrap();
    let merged = Catalog::build(&model, &MergePlan::pairs(&[(29, 38)]), SEED).unwrap();
    let indices: Vec<u64> = model.tables.iter().map(|t| t.rows - 1).collect();
    assert_eq!(plain.gather_vec(&indices).unwrap(), merged.gather_vec(&indices).unwrap());
    // A different seed changes contents.
    let other = Catalog::build(&model, &MergePlan::none(), SEED + 1).unwrap();
    assert_ne!(plain.gather_vec(&indices).unwrap(), other.gather_vec(&indices).unwrap());
}

#[test]
fn traces_replay_identically_through_the_engine() {
    let model = ModelSpec::dlrm_rmc2(4, 4);
    let trace = RequestTrace::generate(&model, 10_000.0, 50, QueryGenConfig::default()).unwrap();
    let mut engine = MicroRec::builder(model.clone()).seed(SEED).build().unwrap();
    let first: Vec<f32> = trace.queries().iter().map(|q| engine.predict(q).unwrap()).collect();
    engine.reset_stats();
    let second: Vec<f32> = trace.queries().iter().map(|q| engine.predict(q).unwrap()).collect();
    assert_eq!(first, second);
}

#[test]
fn timing_model_is_pure() {
    use microrec_cpu::CpuTimingModel;
    let cpu = CpuTimingModel::aws_16vcpu();
    let model = ModelSpec::small_production();
    for batch in [1u64, 64, 2048] {
        assert_eq!(cpu.total_time(&model, batch), cpu.total_time(&model, batch));
    }
}
