//! Host-executed end-to-end inference: the functional CPU reference engine
//! and the MicroRec functional path (simulated memory + quantized MLP).

use std::time::Duration;

use microrec_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use microrec_core::MicroRec;
use microrec_cpu::CpuReferenceEngine;
use microrec_embedding::{ModelSpec, Precision};
use microrec_workload::{QueryGenConfig, QueryGenerator};

fn bench_inference(c: &mut Criterion) {
    let model = ModelSpec::dlrm_rmc2(8, 16);
    let cpu = CpuReferenceEngine::build(&model, 3).unwrap();
    let mut fpga =
        MicroRec::builder(model.clone()).precision(Precision::Fixed16).seed(3).build().unwrap();
    let mut gen = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
    let query = gen.next_query();
    let batch = gen.next_batch(64);

    let mut group = c.benchmark_group("inference");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));
    group.bench_function("cpu_reference_single", |b| {
        b.iter(|| cpu.predict(black_box(&query)).unwrap())
    });
    group.bench_function("microrec_functional_single", |b| {
        b.iter(|| fpga.predict(black_box(&query)).unwrap())
    });
    group.throughput(Throughput::Elements(64));
    group.bench_function("cpu_reference_batch64", |b| {
        b.iter(|| cpu.predict_batch(black_box(&batch)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
