//! Golden test over the seeded fixture corpus: every lint id must be
//! demonstrated by a failing fixture, an allow-suppressed fixture, and a
//! clean fixture, and the diagnostics must match `fixtures/expected.txt`
//! byte for byte.

use std::path::Path;

use microrec_lint::{load_config, run, LINT_IDS, MALFORMED_ALLOW};

fn fixtures_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_corpus_matches_golden_diagnostics() {
    let fixtures = fixtures_root();
    let config = load_config(&fixtures.join("lint.toml")).unwrap();
    let report = run(&fixtures, &config).unwrap();

    let got: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
    let golden = std::fs::read_to_string(fixtures.join("expected.txt")).unwrap();
    let expected: Vec<&str> =
        golden.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
    assert_eq!(got, expected, "fixture diagnostics drifted from expected.txt");
}

#[test]
fn every_lint_id_has_a_failing_fixture() {
    let fixtures = fixtures_root();
    let config = load_config(&fixtures.join("lint.toml")).unwrap();
    let report = run(&fixtures, &config).unwrap();
    for id in LINT_IDS.iter().chain(std::iter::once(&MALFORMED_ALLOW)) {
        assert!(
            report.diagnostics.iter().any(|d| d.lint == *id),
            "no failing fixture demonstrates `{id}`"
        );
    }
}

#[test]
fn every_lint_id_has_an_allow_suppressed_fixture() {
    let fixtures = fixtures_root();
    let config = load_config(&fixtures.join("lint.toml")).unwrap();
    let report = run(&fixtures, &config).unwrap();
    // One `allowed.rs` per lint directory, each suppressing exactly one
    // finding; none of them may leak into the diagnostics.
    assert_eq!(report.suppressed, LINT_IDS.len(), "one suppressed case per lint id");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.ends_with("allowed.rs")),
        "an allow-annotated fixture still reported a diagnostic"
    );
    assert!(
        !report.diagnostics.iter().any(|d| d.file.ends_with("clean.rs")),
        "a clean fixture reported a diagnostic (false positive)"
    );
}
