//! The event-driven flow simulator against the analytic pipeline model,
//! on randomized stage configurations.

use proptest::collection::vec;
use proptest::prelude::*;

use microrec_accel::{AccelConfig, FlowSim, Pipeline};
use microrec_embedding::{ModelSpec, Precision, TableSpec};
use microrec_memsim::SimTime;

/// Builds a pipeline with arbitrary-ish stage times by varying the model
/// shape and lookup time.
fn build_pipeline(feat: u32, h1: u32, h2: u32, lookup_ns: f64) -> Pipeline {
    let tables = (feat / 4).max(1);
    let model = ModelSpec::new(
        "prop",
        (0..tables).map(|i| TableSpec::new(format!("t{i}"), 100, 4)).collect(),
        vec![h1, h2],
        1,
    );
    let cfg = AccelConfig {
        clock_hz: 120_000_000,
        precision: Precision::Fixed16,
        pes_per_layer: vec![16, 16],
        macs_per_pe_cycle: 8,
    };
    Pipeline::build(&model, &cfg, SimTime::from_ns(lookup_ns)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simulation and analysis agree exactly for deterministic stages.
    #[test]
    fn flow_matches_analytic(
        feat in 4u32..256,
        h1 in 8u32..512,
        h2 in 8u32..512,
        lookup_ns in 1.0f64..5_000.0,
        n in 1usize..120,
        fifo in 1usize..8,
    ) {
        let p = build_pipeline(feat, h1, h2, lookup_ns);
        let sim = FlowSim::new(&p, fifo);
        let report = sim.run_saturated(n);
        prop_assert_eq!(report.completions[0], p.latency());
        prop_assert_eq!(report.makespan(), p.batch_latency(n as u64));
    }

    /// Latencies are monotone in queue position under saturation.
    #[test]
    fn saturated_latency_monotone(n in 2usize..60) {
        let p = build_pipeline(64, 128, 64, 400.0);
        let report = FlowSim::new(&p, 2).run_saturated(n);
        for w in report.latencies.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// Arrival jitter never reduces a completion below the saturated
    /// schedule (work conservation).
    #[test]
    fn jittered_arrivals_complete_no_earlier(gaps in vec(0u64..10_000, 1..60)) {
        let p = build_pipeline(64, 128, 64, 400.0);
        let sim = FlowSim::new(&p, 2);
        let mut t = SimTime::ZERO;
        let arrivals: Vec<SimTime> = gaps
            .iter()
            .map(|&g| {
                t += SimTime::from_ps(g);
                t
            })
            .collect();
        let jittered = sim.run(&arrivals);
        let saturated = sim.run_saturated(arrivals.len());
        for (j, s) in jittered.completions.iter().zip(&saturated.completions) {
            prop_assert!(j >= s);
        }
    }
}

/// The flow simulator reproduces the Figure 7 knee: repeated-lookup
/// pipelines stay compute-bound until the lookup stage dominates.
#[test]
fn flow_reproduces_figure7_knee() {
    let model = ModelSpec::small_production();
    let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
    let base = Pipeline::build(&model, &cfg, SimTime::from_ns(485.0)).unwrap();
    let base_tp =
        FlowSim::new(&base, 2).run_saturated(300).throughput_items_per_sec();
    let mut knee = 0;
    for rounds in 1..=12u32 {
        let p = base.with_lookup_rounds(rounds);
        let tp = FlowSim::new(&p, 2).run_saturated(300).throughput_items_per_sec();
        if tp < base_tp * 0.99 {
            knee = rounds;
            break;
        }
    }
    assert!((5..=9).contains(&knee), "event-driven knee at {knee}");
}
