//! Accelerator configuration: clocks, PE array shape, per-PE throughput.
//!
//! The paper's design instantiates 128, 128, and 32 GEMM processing
//! elements for the three hidden layers (appendix, Table 6) and clocks the
//! whole design at 120–140 MHz depending on precision and congestion. Each
//! PE sustains a number of multiply–accumulates per cycle bounded by its
//! DSP budget (14 DSPs per fp16 PE, 18 per fp32 PE) minus pipeline stalls;
//! the effective rates below (10 MACs/cycle at fixed-16, 6 at fixed-32) are
//! calibrated so the model lands within ~13 % of every FPGA throughput and
//! latency figure in Table 2.

use microrec_embedding::{ModelSpec, Precision};

/// Width (elements per cycle) of the feature-broadcast and result-gather
/// pipeline sub-stages.
pub const STREAM_WIDTH: u32 = 4;

/// Configuration of the FPGA accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    /// Kernel clock in Hz (Table 6: 120–140 MHz).
    pub clock_hz: u64,
    /// Arithmetic precision of the datapath.
    pub precision: Precision,
    /// Number of GEMM PEs assigned to each hidden layer.
    pub pes_per_layer: Vec<u32>,
    /// Effective multiply–accumulates per PE per cycle.
    pub macs_per_pe_cycle: u32,
}

impl AccelConfig {
    /// The paper's configuration for `model` at `precision`: PE counts
    /// (128, 128, 32), clock from Table 6 (fp16 designs close timing at
    /// 120 MHz; fp32 at 140 MHz, dropping to 135 MHz for the large model's
    /// higher LUT congestion).
    ///
    /// # Panics
    ///
    /// Panics if `model` does not have exactly three hidden layers (the
    /// paper's designs all do); use the struct literal for other shapes.
    #[must_use]
    pub fn for_model(model: &ModelSpec, precision: Precision) -> Self {
        assert_eq!(
            model.hidden.len(),
            3,
            "paper configuration assumes three hidden layers, got {}",
            model.hidden.len()
        );
        let clock_hz = match precision {
            Precision::Fixed16 => 120_000_000,
            Precision::F32 | Precision::Fixed32 => {
                if model.feature_len() > 512 {
                    135_000_000
                } else {
                    140_000_000
                }
            }
        };
        AccelConfig {
            clock_hz,
            precision,
            pes_per_layer: vec![128, 128, 32],
            macs_per_pe_cycle: match precision {
                Precision::Fixed16 => 10,
                Precision::F32 | Precision::Fixed32 => 6,
            },
        }
    }

    /// A configuration for models with any number of hidden layers: the
    /// paper's per-PE rates and clocks, 128 PEs per hidden layer except 32
    /// on the last (mirroring the 128/128/32 split).
    #[must_use]
    pub fn generic(model: &ModelSpec, precision: Precision) -> Self {
        let n = model.hidden.len().max(1);
        let mut pes = vec![128u32; n];
        pes[n - 1] = 32;
        let clock_hz = match precision {
            Precision::Fixed16 => 120_000_000,
            Precision::F32 | Precision::Fixed32 => 135_000_000,
        };
        AccelConfig {
            clock_hz,
            precision,
            pes_per_layer: pes,
            macs_per_pe_cycle: match precision {
                Precision::Fixed16 => 10,
                Precision::F32 | Precision::Fixed32 => 6,
            },
        }
    }

    /// Total PE count across layers.
    #[must_use]
    pub fn total_pes(&self) -> u32 {
        self.pes_per_layer.iter().sum()
    }

    /// Peak multiply–accumulate throughput (MACs per second).
    #[must_use]
    pub fn peak_macs_per_sec(&self) -> f64 {
        f64::from(self.total_pes()) * f64::from(self.macs_per_pe_cycle) * self.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clocks() {
        let small = ModelSpec::small_production();
        let large = ModelSpec::large_production();
        assert_eq!(AccelConfig::for_model(&small, Precision::Fixed16).clock_hz, 120_000_000);
        assert_eq!(AccelConfig::for_model(&small, Precision::Fixed32).clock_hz, 140_000_000);
        assert_eq!(AccelConfig::for_model(&large, Precision::Fixed16).clock_hz, 120_000_000);
        assert_eq!(AccelConfig::for_model(&large, Precision::Fixed32).clock_hz, 135_000_000);
    }

    #[test]
    fn pe_array_matches_appendix() {
        let cfg = AccelConfig::for_model(&ModelSpec::small_production(), Precision::Fixed16);
        assert_eq!(cfg.pes_per_layer, vec![128, 128, 32]);
        assert_eq!(cfg.total_pes(), 288);
    }

    #[test]
    fn fp16_outruns_fp32() {
        let small = ModelSpec::small_production();
        let f16 = AccelConfig::for_model(&small, Precision::Fixed16);
        let f32_ = AccelConfig::for_model(&small, Precision::Fixed32);
        assert!(f16.peak_macs_per_sec() > f32_.peak_macs_per_sec());
    }

    #[test]
    #[should_panic(expected = "three hidden layers")]
    fn wrong_layer_count_panics() {
        let mut model = ModelSpec::small_production();
        model.hidden.push(64);
        let _ = AccelConfig::for_model(&model, Precision::Fixed16);
    }
}
