//! Pipeline topology plans and the counter-driven auto-tuner.
//!
//! A [`PipelinePlan`] describes one concrete dataflow topology: how the
//! MLP's layers are grouped into fused FC stages, how many parallel
//! lanes each stage runs, how deep the inter-stage FIFOs are, and how
//! long a blocked endpoint spins before parking. The default plan
//! reproduces the fixed one-thread-per-layer topology of the original
//! pipeline; [`PipelinePlan::calibrate`] replaces the hand tuning with a
//! measurement pass, mirroring how the paper sizes each FPGA stage to
//! its service rate instead of replicating everything uniformly.
//!
//! Calibration is deterministic in *procedure*: the query set is derived
//! from a fixed LCG, the same micro-benchmarks run in the same order,
//! and the solver is a pure function of the measured times — two runs on
//! the same machine under the same load converge to the same plan.
//!
//! The solver applies the hop-cost rule in both directions:
//! - **Fusion**: an FC stage whose service time is below the measured
//!   FIFO handoff cost cannot pay for its own thread — its occupancy
//!   counters would show near-permanent starvation — so adjacent cheap
//!   layers fuse into one stage, eliminating the ring hop between them.
//! - **Replication**: while spare cores remain, the bottleneck stage
//!   (highest per-lane service time, if still above the hop cost) gets
//!   another lane.
//!
//! The resulting [`Calibration`] doubles as the cost model for the
//! Monolithic/Pipelined/Replicated router: it carries the measured
//! monolithic per-item time, a pilot-run measurement of the planned
//! topology, and an analytic estimate for cross-checking.

use std::sync::Arc;
use std::time::Instant;

use microrec_dnn::{FixedNum, PackedLayer, PackedMlp};
use microrec_embedding::ModelSpec;
use microrec_par::{SpscRing, DEFAULT_SPIN_ROUNDS};

use crate::engine::MicroRec;
use crate::error::MicroRecError;
use crate::pipeline::PipelineExecutor;

/// One FC stage of a plan: a run of consecutive MLP layers fused onto
/// one thread (per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcStage {
    /// Number of consecutive layers this stage applies back to back.
    pub layers: usize,
    /// Parallel lanes (threads) this stage runs as.
    pub lanes: usize,
}

/// A concrete pipeline topology: layer grouping, lane counts, FIFO
/// depth, and spin budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinePlan {
    /// Capacity of each inter-stage FIFO, in jobs.
    pub fifo_depth: usize,
    /// Spin rounds before a blocked ring endpoint parks (see
    /// [`microrec_par::SpscRing::with_spin`]).
    pub spin_rounds: usize,
    /// Parallel lanes of the lookup stage (each owns its own engine).
    pub lookup_lanes: usize,
    /// FC stages in layer order; `layers` must sum to the MLP's layer
    /// count.
    pub fc: Vec<FcStage>,
}

impl PipelinePlan {
    /// The fixed topology of the original pipeline: one single-lane
    /// stage per MLP layer.
    #[must_use]
    pub fn per_layer(num_layers: usize, fifo_depth: usize) -> Self {
        PipelinePlan {
            fifo_depth: fifo_depth.max(1),
            spin_rounds: DEFAULT_SPIN_ROUNDS,
            lookup_lanes: 1,
            fc: (0..num_layers.max(1)).map(|_| FcStage { layers: 1, lanes: 1 }).collect(),
        }
    }

    /// The fixed replicated topology [`ExecutionMode::Replicated`] runs:
    /// per-layer FC stages with the lookup stage doubled. Deterministic
    /// by construction (no measurement), so tests and the CLI exercise
    /// lane fan-out/fan-in identically on every host.
    #[must_use]
    pub fn replicated_default(num_layers: usize, fifo_depth: usize) -> Self {
        let mut plan = Self::per_layer(num_layers, fifo_depth);
        plan.lookup_lanes = 2;
        plan
    }

    /// Total MLP layers the plan covers.
    #[must_use]
    pub fn num_fc_layers(&self) -> usize {
        self.fc.iter().map(|s| s.layers).sum()
    }

    /// Stage count: lookup + FC stages + sink.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.fc.len() + 2
    }

    /// Threads the pipeline spawns: every lane of every stage plus the
    /// sink.
    #[must_use]
    pub fn total_lane_threads(&self) -> usize {
        self.lookup_lanes + self.fc.iter().map(|s| s.lanes).sum::<usize>() + 1
    }

    /// Whether any stage runs more than one lane.
    #[must_use]
    pub fn is_replicated(&self) -> bool {
        self.lookup_lanes > 1 || self.fc.iter().any(|s| s.lanes > 1)
    }

    /// Ring hops one job crosses end to end: owner → lookup → each FC
    /// stage → sink → owner.
    #[must_use]
    pub fn num_hops(&self) -> usize {
        self.fc.len() + 3
    }

    /// Checks internal consistency against the engine's layer count.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError::Runtime`] when the plan is empty, has a
    /// zero-lane or zero-layer stage, or covers the wrong layer count.
    pub fn validate(&self, num_layers: usize) -> Result<(), MicroRecError> {
        if self.fc.is_empty() {
            return Err(MicroRecError::Runtime("pipeline plan has no FC stages".into()));
        }
        if self.lookup_lanes == 0 || self.fc.iter().any(|s| s.lanes == 0 || s.layers == 0) {
            return Err(MicroRecError::Runtime(
                "pipeline plan has a zero-lane or zero-layer stage".into(),
            ));
        }
        if self.num_fc_layers() != num_layers {
            return Err(MicroRecError::Runtime(format!(
                "pipeline plan covers {} layers but the model has {num_layers}",
                self.num_fc_layers()
            )));
        }
        Ok(())
    }

    /// Compact human-readable topology, e.g.
    /// `"lookup x2 | fc[0] x1 | fc[1-2] x1 | sink"`.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("lookup x{}", self.lookup_lanes);
        let mut layer = 0usize;
        for stage in &self.fc {
            if stage.layers == 1 {
                let _ = write!(s, " | fc[{layer}] x{}", stage.lanes);
            } else {
                let _ = write!(s, " | fc[{layer}-{}] x{}", layer + stage.layers - 1, stage.lanes);
            }
            layer += stage.layers;
        }
        s.push_str(" | sink");
        s
    }

    /// Measures the engine's per-stage service times, solves a plan from
    /// them, pilots it, and returns the engine together with the plan
    /// and the [`Calibration`] cost model.
    ///
    /// `cores` bounds replication (use [`microrec_par::default_threads`]
    /// for the machine's parallelism); `rounds` is the number of
    /// calibration queries per micro-benchmark (64 is plenty; the pilot
    /// streams the same set).
    ///
    /// # Errors
    ///
    /// Returns the engine's error if a calibration query fails (the
    /// query set is valid by construction, so this indicates a broken
    /// engine), or [`MicroRecError::Runtime`] if the pilot pipeline
    /// cannot start.
    pub fn calibrate(
        engine: MicroRec,
        cores: usize,
        rounds: usize,
    ) -> Result<(MicroRec, PipelinePlan, Calibration), MicroRecError> {
        match engine.precision() {
            microrec_embedding::Precision::F32 => calibrate_typed::<f32>(engine, cores, rounds),
            microrec_embedding::Precision::Fixed16 => {
                calibrate_typed::<microrec_dnn::Q16>(engine, cores, rounds)
            }
            microrec_embedding::Precision::Fixed32 => {
                calibrate_typed::<microrec_dnn::Q32>(engine, cores, rounds)
            }
        }
    }
}

/// Measured service times and the calibrated cost model behind an
/// auto-tuned [`PipelinePlan`].
///
/// All times are mean microseconds per item.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Gather + quantize time of the lookup stage.
    pub lookup_us: f64,
    /// Per-MLP-layer packed forward time, in layer order.
    pub layer_us: Vec<f64>,
    /// One-way cost of handing an item across an SPSC ring between two
    /// threads (measured by a ping-pong echo, so it includes the wake
    /// latency a serialized handoff pays).
    pub hop_us: f64,
    /// The monolithic [`MicroRec::predict`] path, measured on the same
    /// query set.
    pub monolithic_us: f64,
    /// Pilot run of the solved plan's topology (single lookup lane),
    /// streaming the calibration queries through a real executor.
    pub pipelined_us: f64,
    /// Core budget the solver worked with.
    pub cores: usize,
}

impl Calibration {
    /// Analytic per-item estimate for `plan`: with enough cores, the
    /// bottleneck stage's per-lane service time plus one hop, floored by
    /// the serial work divided across threads; with fewer cores than
    /// threads, the serial work time-multiplexed over the cores.
    #[must_use]
    pub fn estimated_pipelined_us(&self, plan: &PipelinePlan) -> f64 {
        let mut stage_times = Vec::with_capacity(plan.fc.len() + 1);
        stage_times.push(self.lookup_us / plan.lookup_lanes as f64);
        let mut layer = 0usize;
        for stage in &plan.fc {
            let group: f64 = self.layer_us[layer..layer + stage.layers].iter().sum();
            stage_times.push(group / stage.lanes as f64);
            layer += stage.layers;
        }
        let serial = stage_times.iter().sum::<f64>() + plan.num_hops() as f64 * self.hop_us;
        let threads = plan.total_lane_threads();
        if self.cores >= threads {
            let bottleneck = stage_times.iter().cloned().fold(0.0f64, f64::max) + self.hop_us;
            bottleneck.max(serial / threads as f64)
        } else {
            serial / self.cores.max(1) as f64
        }
    }
}

/// Deterministic calibration query set: valid ids for every table slot,
/// spread by a fixed LCG so lookups stride across rows (and the hot-row
/// cache sees a realistic mix).
pub(crate) fn calibration_queries(spec: &ModelSpec, count: usize) -> Vec<Vec<u64>> {
    let arity = spec.lookups_per_item() as usize;
    let per_table = spec.lookups_per_table.max(1) as usize;
    (0..count as u64)
        .map(|k| {
            (0..arity as u64)
                .map(|j| {
                    let rows =
                        spec.tables[(j as usize / per_table).min(spec.tables.len() - 1)].rows;
                    (k.wrapping_mul(7919).wrapping_add(j.wrapping_mul(104_729))) % rows.max(1)
                })
                .collect()
        })
        .collect()
}

fn mean_us(total: std::time::Duration, items: usize) -> f64 {
    total.as_secs_f64() * 1e6 / items.max(1) as f64
}

/// One-way SPSC handoff cost, measured as half a cross-thread ping-pong
/// round trip. Serialized on purpose: this is the price a starved stage
/// pays per item, which is exactly the quantity fusion trades against.
fn measure_hop_us(depth: usize, iters: usize) -> f64 {
    let ping: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(depth.max(1)));
    let pong: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(depth.max(1)));
    let elapsed = std::thread::scope(|scope| {
        let (ping_rx, pong_tx) = (Arc::clone(&ping), Arc::clone(&pong));
        scope.spawn(move || {
            while let Some(v) = ping_rx.pop_blocking() {
                if pong_tx.push_blocking(v).is_err() {
                    break;
                }
            }
            pong_tx.close();
        });
        // Warm-up lap so thread startup does not pollute the timing.
        for i in 0..16u64 {
            let _ = ping.push_blocking(i);
            let _ = pong.pop_blocking();
        }
        let start = Instant::now();
        for i in 0..iters as u64 {
            let _ = ping.push_blocking(i);
            let _ = pong.pop_blocking();
        }
        let elapsed = start.elapsed();
        ping.close();
        elapsed
    });
    mean_us(elapsed, 2 * iters)
}

/// Greedy plan solver, a pure function of the measured times.
fn solve_plan(
    lookup_us: f64,
    layer_us: &[f64],
    hop_us: f64,
    cores: usize,
    fifo_depth: usize,
) -> PipelinePlan {
    // Start per-layer, then fuse adjacent stages that cannot pay for
    // their hop: merge the cheapest adjacent pair while either side is
    // below the hop cost (its thread would mostly stall).
    let mut groups: Vec<(usize, f64)> = layer_us.iter().map(|&t| (1usize, t)).collect();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..groups.len().saturating_sub(1) {
            let (a, b) = (groups[i].1, groups[i + 1].1);
            if a.min(b) <= hop_us {
                let combined = a + b;
                if best.is_none_or(|(_, t)| combined < t) {
                    best = Some((i, combined));
                }
            }
        }
        match best {
            Some((i, _)) if groups.len() > 1 => {
                let (len, t) = groups.remove(i + 1);
                groups[i].0 += len;
                groups[i].1 += t;
            }
            _ => break,
        }
    }
    // Respect the core budget: more stage threads than cores just
    // time-multiplexes hops for no overlap, so keep fusing the cheapest
    // adjacent pair until the thread count fits (floor: one FC stage).
    while groups.len() > 1 && groups.len() + 2 > cores {
        let mut cheapest = 0usize;
        for i in 1..groups.len() - 1 {
            if groups[i].1 + groups[i + 1].1 < groups[cheapest].1 + groups[cheapest + 1].1 {
                cheapest = i;
            }
        }
        let (len, t) = groups.remove(cheapest + 1);
        groups[cheapest].0 += len;
        groups[cheapest].1 += t;
    }
    // Replicate the bottleneck stage while spare cores remain and the
    // per-lane service time still dwarfs the hop the lane adds.
    let mut lookup_lanes = 1usize;
    let mut fc: Vec<FcStage> =
        groups.iter().map(|&(layers, _)| FcStage { layers, lanes: 1 }).collect();
    let mut spare = cores.saturating_sub(groups.len() + 2);
    while spare > 0 {
        let mut times: Vec<f64> = Vec::with_capacity(fc.len() + 1);
        times.push(lookup_us / lookup_lanes as f64);
        for (stage, &(_, t)) in fc.iter().zip(&groups) {
            times.push(t / stage.lanes as f64);
        }
        let (bottleneck, peak) = times
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, 0.0));
        if peak <= hop_us * 2.0 {
            break;
        }
        if bottleneck == 0 {
            lookup_lanes += 1;
        } else {
            fc[bottleneck - 1].lanes += 1;
        }
        spare -= 1;
    }
    // Spin budget: when every stage finishes an item faster than a
    // handoff costs, spinning at a blocked endpoint only steals cycles
    // from the thread that would unblock it — park almost immediately.
    let peak_stage = layer_us.iter().cloned().fold(lookup_us, f64::max);
    let spin_rounds = if peak_stage < hop_us { 8 } else { DEFAULT_SPIN_ROUNDS };
    PipelinePlan { fifo_depth: fifo_depth.max(1), spin_rounds, lookup_lanes, fc }
}

fn calibrate_typed<T: FixedNum + Send + Sync + 'static>(
    mut engine: MicroRec,
    cores: usize,
    rounds: usize,
) -> Result<(MicroRec, PipelinePlan, Calibration), MicroRecError> {
    let rounds = rounds.max(8);
    let queries = calibration_queries(engine.model(), rounds);
    let feature_len = engine.model().feature_len() as usize;

    // Monolithic reference (also warms the arena and caches).
    for q in &queries {
        engine.predict(q)?;
    }
    let start = Instant::now();
    for q in &queries {
        engine.predict(q)?;
    }
    let monolithic_us = mean_us(start.elapsed(), rounds);

    // Lookup stage: gather + quantize, exactly the pipeline's stage 0.
    let mut features: Vec<f32> = Vec::with_capacity(feature_len);
    let mut data: Vec<T> = Vec::with_capacity(feature_len);
    let start = Instant::now();
    for q in &queries {
        engine.gather_features_into(q, &mut features)?;
        data.clear();
        data.extend(features.iter().map(|&v| T::from_f32(v)));
    }
    let lookup_us = mean_us(start.elapsed(), rounds);

    // Per-layer forward times on the packed path the FC stages run.
    let packed: PackedMlp<T> = PackedMlp::pack(engine.mlp());
    let layers: Vec<PackedLayer<T>> = packed.into_layers();
    let mut layer_total = vec![std::time::Duration::ZERO; layers.len()];
    let mut scratch: Vec<T> = Vec::new();
    for q in &queries {
        engine.gather_features_into(q, &mut features)?;
        data.clear();
        data.extend(features.iter().map(|&v| T::from_f32(v)));
        for (i, layer) in layers.iter().enumerate() {
            let start = Instant::now();
            layer.forward_batch(&data, 1, &mut scratch).map_err(MicroRecError::Dnn)?;
            layer_total[i] += start.elapsed();
            std::mem::swap(&mut data, &mut scratch);
        }
    }
    let layer_us: Vec<f64> = layer_total.into_iter().map(|t| mean_us(t, rounds)).collect();

    let hop_us = measure_hop_us(4, 256);
    let plan = solve_plan(lookup_us, &layer_us, hop_us, cores.max(1), 4);

    // Pilot the solved topology with the one engine we have (lookup
    // forced to a single lane; extra lookup lanes need their own
    // engines, which only the serving runtime can build).
    let mut pilot_plan = plan.clone();
    pilot_plan.lookup_lanes = 1;
    let mut exec = PipelineExecutor::with_plan(vec![engine], &pilot_plan)?;
    exec.predict_batch(&queries)?; // warm the stage threads
    let start = Instant::now();
    exec.predict_batch(&queries)?;
    let pipelined_us = mean_us(start.elapsed(), rounds);

    // Refine the FIFO depth from the pilot's own counters: sustained
    // backpressure on a quarter of pushes means the rings are too
    // shallow to absorb the stage-time imbalance.
    let mut plan = plan;
    if exec.stage_stats().iter().any(|s| s.items > 0 && s.backpressure * 4 > s.items) {
        plan.fifo_depth = (plan.fifo_depth * 2).min(16);
    }
    let engine = exec
        .shutdown()
        .ok_or_else(|| MicroRecError::Runtime("calibration pilot lost its engine".into()))?;

    let calibration = Calibration {
        lookup_us,
        layer_us,
        hop_us,
        monolithic_us,
        pipelined_us,
        cores: cores.max(1),
    };
    Ok((engine, plan, calibration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ExecutionMode;

    #[test]
    fn per_layer_plan_matches_legacy_topology() {
        let plan = PipelinePlan::per_layer(3, 4);
        assert_eq!(plan.num_stages(), 5);
        assert_eq!(plan.num_fc_layers(), 3);
        assert_eq!(plan.total_lane_threads(), 5);
        assert!(!plan.is_replicated());
        assert!(plan.validate(3).is_ok());
        assert!(plan.validate(2).is_err());
        assert_eq!(plan.summary(), "lookup x1 | fc[0] x1 | fc[1] x1 | fc[2] x1 | sink");
    }

    #[test]
    fn solver_fuses_starved_stages() {
        // Every layer far below the hop cost on a single core: the
        // solver must collapse to one FC stage with no lanes.
        let plan = solve_plan(0.5, &[0.2, 0.3, 0.1], 5.0, 1, 4);
        assert_eq!(plan.fc.len(), 1);
        assert_eq!(plan.fc[0].layers, 3);
        assert!(!plan.is_replicated());
        assert_eq!(plan.spin_rounds, 8, "tiny stages park immediately");
    }

    #[test]
    fn solver_replicates_the_bottleneck_given_cores() {
        // Lookup dominates and eight cores are free: it gets the lanes.
        let plan = solve_plan(100.0, &[40.0, 35.0], 1.0, 8, 4);
        assert!(plan.lookup_lanes > 1, "{plan:?}");
        assert_eq!(plan.num_fc_layers(), 2);
        assert!(plan.validate(2).is_ok());
        assert_eq!(plan.spin_rounds, DEFAULT_SPIN_ROUNDS);
    }

    #[test]
    fn solver_never_exceeds_reasonable_threads() {
        let plan = solve_plan(10.0, &[10.0, 10.0, 10.0], 0.1, 4, 4);
        // 4 cores: stage threads (lookup + fc stages + sink) fit them.
        assert!(plan.total_lane_threads() <= 4, "{plan:?}");
    }

    #[test]
    fn calibration_queries_are_valid_and_deterministic() {
        let spec = ModelSpec::dlrm_rmc2(4, 4);
        let a = calibration_queries(&spec, 16);
        let b = calibration_queries(&spec, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        for q in &a {
            assert_eq!(q.len(), spec.lookups_per_item() as usize);
        }
        let distinct: std::collections::HashSet<&Vec<u64>> = a.iter().collect();
        assert!(distinct.len() > 1, "queries must not all collide");
    }

    #[test]
    fn estimate_prefers_monolithic_when_hops_dominate() {
        let cal = Calibration {
            lookup_us: 0.3,
            layer_us: vec![0.2],
            hop_us: 10.0,
            monolithic_us: 2.0,
            pipelined_us: 45.0,
            cores: 1,
        };
        let plan = PipelinePlan::per_layer(1, 1);
        assert!(cal.estimated_pipelined_us(&plan) > cal.monolithic_us);
        let model = crate::PathCostModel::from_calibration(&cal, &plan);
        assert_eq!(model.choose_mode(), ExecutionMode::Monolithic);
    }

    #[test]
    fn unified_cost_model_keeps_choose_tie_semantics() {
        // Equal measurements tie to monolithic, exactly as the old
        // `Calibration::choose` did (fewer threads for the same speed).
        let cal = Calibration {
            lookup_us: 1.0,
            layer_us: vec![1.0],
            hop_us: 1.0,
            monolithic_us: 100.0,
            pipelined_us: 100.0,
            cores: 1,
        };
        let plan = PipelinePlan::per_layer(1, 4);
        let model = crate::PathCostModel::from_calibration(&cal, &plan);
        assert_eq!(model.choose_mode(), ExecutionMode::Monolithic);
    }

    #[test]
    fn estimate_prefers_pipelined_for_the_lean_datapath() {
        // The staged path's serial work is far below the monolithic
        // per-item time (the lean-datapath effect the bench measures).
        let cal = Calibration {
            lookup_us: 200.0,
            layer_us: vec![300.0, 250.0],
            hop_us: 5.0,
            monolithic_us: 4000.0,
            pipelined_us: 800.0,
            cores: 1,
        };
        let plan = PipelinePlan::per_layer(2, 4);
        assert!(cal.estimated_pipelined_us(&plan) < cal.monolithic_us);
        let model = crate::PathCostModel::from_calibration(&cal, &plan);
        assert_eq!(model.choose_mode(), ExecutionMode::Pipelined);
        let mut replicated = plan;
        replicated.lookup_lanes = 2;
        let model = crate::PathCostModel::from_calibration(&cal, &replicated);
        assert_eq!(model.choose_mode(), ExecutionMode::Replicated);
    }
}
