//! Memory banks: the independently addressable units of the hybrid memory.
//!
//! A *bank* is the serialization unit of the simulator: two accesses to the
//! same bank are serviced one after the other, while accesses to different
//! banks proceed in parallel. On the U280 each HBM pseudo-channel, each DDR4
//! channel, and each on-chip BRAM/URAM block used for embeddings is one bank.

use std::fmt;

use crate::error::MemsimError;
use crate::time::SimTime;
use crate::timing::MemTiming;

/// The memory technology a bank belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemoryKind {
    // Declaration order is fastest-to-slowest for a short read, so the
    // derived `Ord` sorts on-chip banks before DRAM.
    /// On-chip block RAM bank.
    Bram,
    /// On-chip ultra RAM bank.
    Uram,
    /// High-bandwidth memory pseudo-channel (U280: 32 × 256 MB).
    Hbm,
    /// Off-chip DDR4 channel (U280: 2 × 16 GB).
    Ddr,
}

impl MemoryKind {
    /// All kinds, ordered from fastest to slowest for a short read.
    pub const ALL: [MemoryKind; 4] =
        [MemoryKind::Bram, MemoryKind::Uram, MemoryKind::Hbm, MemoryKind::Ddr];

    /// Whether this kind lives on the FPGA die (no DRAM access needed).
    #[must_use]
    pub const fn is_on_chip(self) -> bool {
        matches!(self, MemoryKind::Bram | MemoryKind::Uram)
    }

    /// Whether this kind is off-chip DRAM (HBM or DDR).
    #[must_use]
    pub const fn is_dram(self) -> bool {
        !self.is_on_chip()
    }
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryKind::Hbm => "HBM",
            MemoryKind::Ddr => "DDR",
            MemoryKind::Bram => "BRAM",
            MemoryKind::Uram => "URAM",
        };
        f.write_str(s)
    }
}

/// Identifier of one bank: a technology plus an index within it.
///
/// # Examples
///
/// ```
/// use microrec_memsim::{BankId, MemoryKind};
///
/// let b = BankId::new(MemoryKind::Hbm, 7);
/// assert_eq!(b.to_string(), "HBM[7]");
/// assert!(b.kind.is_dram());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId {
    /// Technology of the bank.
    pub kind: MemoryKind,
    /// Index within the technology (e.g. HBM pseudo-channel number).
    pub index: u16,
}

impl BankId {
    /// Creates a bank id.
    #[must_use]
    pub const fn new(kind: MemoryKind, index: u16) -> Self {
        BankId { kind, index }
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

/// A named allocation inside a bank (e.g. one embedding table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Caller-chosen label, typically the table name.
    pub label: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Byte offset of the region inside the bank (assigned first-fit).
    pub offset: u64,
}

/// One memory bank: capacity ledger plus timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Bank {
    id: BankId,
    capacity: u64,
    timing: MemTiming,
    regions: Vec<Region>,
}

impl Bank {
    /// Creates an empty bank.
    #[must_use]
    pub fn new(id: BankId, capacity: u64, timing: MemTiming) -> Self {
        Bank { id, capacity, timing, regions: Vec::new() }
    }

    /// This bank's identifier.
    #[must_use]
    pub fn id(&self) -> BankId {
        self.id
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Bytes still free.
    #[must_use]
    pub fn free(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Timing parameters of this bank's technology.
    #[must_use]
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }

    /// The regions allocated in this bank, in allocation order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Allocates `bytes` under `label`, placing the region at the first
    /// byte offset where it fits (first-fit, so released holes are reused).
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::CapacityExceeded`] if no hole is large
    /// enough.
    pub fn alloc(&mut self, label: impl Into<String>, bytes: u64) -> Result<(), MemsimError> {
        let offset = self.first_fit(bytes).ok_or(MemsimError::CapacityExceeded {
            bank: self.id,
            requested: bytes,
            available: self.free(),
        })?;
        self.regions.push(Region { label: label.into(), bytes, offset });
        Ok(())
    }

    /// First byte offset where a `bytes`-sized region fits, or `None`.
    fn first_fit(&self, bytes: u64) -> Option<u64> {
        let mut occupied: Vec<(u64, u64)> =
            self.regions.iter().map(|r| (r.offset, r.offset + r.bytes)).collect();
        occupied.sort_unstable();
        let mut cursor = 0u64;
        for (start, end) in occupied {
            if start.saturating_sub(cursor) >= bytes {
                return Some(cursor);
            }
            cursor = cursor.max(end);
        }
        if self.capacity.saturating_sub(cursor) >= bytes {
            Some(cursor)
        } else {
            None
        }
    }

    /// The region named `label`, if present.
    #[must_use]
    pub fn region(&self, label: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.label == label)
    }

    /// Releases the region named `label`.
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownRegion`] if no such region exists.
    pub fn release(&mut self, label: &str) -> Result<Region, MemsimError> {
        match self.regions.iter().position(|r| r.label == label) {
            Some(pos) => Ok(self.regions.remove(pos)),
            None => Err(MemsimError::UnknownRegion { bank: self.id, label: label.to_string() }),
        }
    }

    /// Removes all regions, returning the bank to empty.
    pub fn clear(&mut self) {
        self.regions.clear();
    }

    /// Time to service one random read of `bytes` from this bank.
    #[must_use]
    pub fn read_time(&self, bytes: u32) -> SimTime {
        self.timing.access_time(bytes)
    }

    /// Time to service a back-to-back sequence of random reads.
    ///
    /// Reads on the same bank serialize; this is the in-order sum, which is
    /// exactly the "two tables on one channel need two access rounds"
    /// behaviour §3.3 describes.
    #[must_use]
    pub fn serial_read_time<I: IntoIterator<Item = u32>>(&self, reads: I) -> SimTime {
        reads.into_iter().map(|b| self.read_time(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bank() -> Bank {
        Bank::new(BankId::new(MemoryKind::Hbm, 0), 1024, MemTiming::hbm2_vitis())
    }

    #[test]
    fn alloc_and_release_update_ledger() {
        let mut b = test_bank();
        b.alloc("t0", 600).unwrap();
        assert_eq!(b.used(), 600);
        assert_eq!(b.free(), 424);
        b.alloc("t1", 424).unwrap();
        assert_eq!(b.free(), 0);
        let r = b.release("t0").unwrap();
        assert_eq!(r.bytes, 600);
        assert_eq!(b.free(), 600);
    }

    #[test]
    fn over_allocation_is_rejected_with_details() {
        let mut b = test_bank();
        b.alloc("big", 1000).unwrap();
        let err = b.alloc("too-big", 100).unwrap_err();
        assert_eq!(
            err,
            MemsimError::CapacityExceeded { bank: b.id(), requested: 100, available: 24 }
        );
        // The failed allocation must not change the ledger.
        assert_eq!(b.used(), 1000);
    }

    #[test]
    fn release_unknown_region_errors() {
        let mut b = test_bank();
        assert!(matches!(b.release("nope"), Err(MemsimError::UnknownRegion { .. })));
    }

    #[test]
    fn serial_reads_sum() {
        let b = test_bank();
        let one = b.read_time(32);
        let two = b.serial_read_time([32, 32]);
        assert_eq!(two, one * 2);
    }

    #[test]
    fn first_fit_reuses_released_holes() {
        let mut b = test_bank();
        b.alloc("a", 300).unwrap();
        b.alloc("b", 400).unwrap();
        b.alloc("c", 300).unwrap();
        assert_eq!(b.region("b").unwrap().offset, 300);
        b.release("b").unwrap();
        // A smaller region lands in b's hole; a bigger one would not fit.
        b.alloc("d", 350).unwrap();
        assert_eq!(b.region("d").unwrap().offset, 300);
        assert!(b.alloc("e", 100).is_err(), "only 24 + 50 fragmented bytes remain");
    }

    #[test]
    fn offsets_never_overlap() {
        let mut b = test_bank();
        for i in 0..8 {
            b.alloc(format!("r{i}"), 100).unwrap();
        }
        let mut spans: Vec<(u64, u64)> =
            b.regions().iter().map(|r| (r.offset, r.offset + r.bytes)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "regions overlap: {w:?}");
        }
    }

    #[test]
    fn clear_empties_bank() {
        let mut b = test_bank();
        b.alloc("t0", 10).unwrap();
        b.alloc("t1", 10).unwrap();
        b.clear();
        assert_eq!(b.used(), 0);
        assert!(b.regions().is_empty());
    }

    #[test]
    fn kind_predicates() {
        assert!(MemoryKind::Bram.is_on_chip());
        assert!(MemoryKind::Uram.is_on_chip());
        assert!(MemoryKind::Hbm.is_dram());
        assert!(MemoryKind::Ddr.is_dram());
    }

    #[test]
    fn bank_id_ordering_groups_by_kind() {
        let a = BankId::new(MemoryKind::Bram, 5);
        let b = BankId::new(MemoryKind::Hbm, 0);
        assert!(a < b, "BRAM sorts before HBM");
    }
}

microrec_json::impl_json_enum!(MemoryKind { Bram, Uram, Hbm, Ddr });
microrec_json::impl_json_struct!(BankId, required { kind, index });
