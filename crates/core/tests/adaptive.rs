//! End-to-end tests for traffic-adaptive online re-sharding: the live
//! runtime observes a skewed workload, the background driver publishes a
//! re-shard while serving, every worker adopts it at a batch boundary, and
//! results stay bit-identical to a static run.

use std::time::{Duration, Instant};

use microrec_core::{
    ExecutionMode, MicroRec, MicroRecBuilder, ReshardingPolicy, RuntimeConfig, ServingRuntime,
};
use microrec_embedding::{ModelSpec, RowFormat, TableSpec};
use microrec_memsim::MemoryConfig;
use microrec_placement::HeuristicOptions;

/// Two hot and two cold tables on a two-channel DDR platform: the uniform
/// placement co-locates the hot pair, so skewed traffic has something to
/// fix.
fn skewed_model() -> ModelSpec {
    ModelSpec::new(
        "skewed",
        vec![
            TableSpec::new("hot-big", 200_000, 16),
            TableSpec::new("hot-small", 100_000, 8),
            TableSpec::new("cold-big", 200_000, 16),
            TableSpec::new("cold-small", 100_000, 8),
        ],
        vec![32, 16],
        1,
    )
}

fn builder() -> MicroRecBuilder {
    MicroRec::builder(skewed_model())
        .memory(MemoryConfig::fpga_without_hbm(2))
        .search_options(HeuristicOptions { allow_merge: false, ..Default::default() })
        .embedding_arena(RowFormat::F32)
        .hot_row_cache(64)
        .seed(13)
}

/// Queries that make tables 0 and 1 hot in the *miss* counters (every
/// query touches every table once, so the signal is per-table cache-miss
/// rate): their rows spread beyond the cache, while tables 2 and 3 repeat
/// one row and hit after the first probe.
fn skewed_queries(n: usize) -> Vec<Vec<u64>> {
    (0..n as u64).map(|i| vec![(i * 7919) % 200_000, (i * 104_729) % 100_000, 7, 7]).collect()
}

fn adaptive_config() -> RuntimeConfig {
    RuntimeConfig { workers: 2, max_batch: 8, max_wait_us: 1_000, adaptive: true, ..Default::default() }
}

#[test]
fn live_migration_fires_and_results_stay_bit_identical() {
    let queries = skewed_queries(256);
    let mut sequential = builder().build().expect("engine");
    let expected: Vec<f32> =
        queries.iter().map(|q| sequential.predict(q).expect("predict")).collect();

    let mut runtime = ServingRuntime::start(builder(), adaptive_config()).expect("runtime");
    // Eager gates so the scenario's skew (not wall-clock luck) decides.
    runtime.set_resharding_policy(ReshardingPolicy {
        divergence_threshold: 0.01,
        min_traffic: 64,
        cooldown_ms: 0,
    });

    // Phase 1: skewed load. Results must match the static engine bit for
    // bit even while the driver migrates underneath.
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for (p, e) in pending.into_iter().zip(&expected) {
        assert_eq!(p.wait().expect("predict").to_bits(), e.to_bits(), "diverged during phase 1");
    }

    // The background driver polls every few ms; give it a bounded window
    // to observe the full phase-1 counters before forcing the issue.
    let deadline = Instant::now() + Duration::from_secs(2);
    while runtime.migration_records().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    if runtime.migration_records().is_empty() {
        assert!(runtime.migrate_now().expect("forced migration"), "skew must move tables");
    }

    let records = runtime.migration_records();
    assert!(!records.is_empty(), "the skewed phase must publish at least one migration");
    let first = &records[0];
    assert!(first.generation >= 1);
    assert!(first.tables_moved > 0);
    assert!(first.divergence > 0.0);
    assert!(first.new_weighted_us < first.old_weighted_us);
    assert!(first.trigger_hits + first.trigger_misses > 0);

    // Phase 2: the same queries on the migrated layout — still the same
    // bits, and every request drains.
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for (p, e) in pending.into_iter().zip(&expected) {
        assert_eq!(p.wait().expect("predict").to_bits(), e.to_bits(), "diverged after migration");
    }
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.completed, 2 * queries.len() as u64);
    assert_eq!(snapshot.failed, 0);
}

/// Phase-2 companion of [`skewed_queries`]: a skew rotated onto table 0
/// and `partner` — chosen as whichever table the post-migration layout
/// co-locates with t0, since the cold-table tie-break moves with counter
/// noise — forces a second online re-shard.
fn rotated_queries(n: usize, offset: u64, partner: usize) -> Vec<Vec<u64>> {
    let rows = [200_000u64, 100_000, 200_000, 100_000];
    (0..n as u64)
        .map(|i| {
            let i = i + offset;
            let mut q = vec![7u64; 4];
            q[0] = (i * 7919) % rows[0];
            q[partner] = (i * 104_729) % rows[partner];
            q
        })
        .collect()
}

#[test]
fn rotated_hot_set_triggers_a_second_migration() {
    let n = 256;
    let mut runtime = ServingRuntime::start(builder(), adaptive_config()).expect("runtime");
    runtime.set_resharding_policy(ReshardingPolicy {
        divergence_threshold: 0.01,
        min_traffic: 64,
        cooldown_ms: 0,
    });

    let wait_for = |runtime: &ServingRuntime, count: usize| {
        let deadline = Instant::now() + Duration::from_secs(2);
        while runtime.migration_records().len() < count && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        runtime.migration_records().len()
    };

    let pending: Vec<_> =
        skewed_queries(n).into_iter().map(|q| runtime.submit(q).expect("submit")).collect();
    for p in pending {
        p.wait().expect("phase-1 predict");
    }
    assert!(wait_for(&runtime, 1) >= 1, "phase-1 skew must migrate");

    let channels = runtime.resharding_channels().expect("adaptive runtime exposes channels");
    let partner = (1..4).find(|&t| channels[t] == channels[0]).expect("co-located partner");
    let pending: Vec<_> = rotated_queries(n, 1_000_000, partner)
        .into_iter()
        .map(|q| runtime.submit(q).expect("submit"))
        .collect();
    for p in pending {
        p.wait().expect("phase-2 predict");
    }
    let total = wait_for(&runtime, 2);
    assert!(total >= 2, "rotated skew must migrate again, got {total} migration(s)");
    let records = runtime.migration_records();
    assert!(records[1].generation > records[0].generation);
    assert!(records[1].tables_moved > 0);
    runtime.shutdown();
}

#[test]
fn adaptive_gates_reject_unsupported_configurations() {
    // No shared embedding store: nothing to re-shard.
    let err = ServingRuntime::start(
        MicroRec::builder(skewed_model()).seed(13),
        adaptive_config(),
    )
    .expect_err("adaptive without a shared store must fail");
    assert!(err.to_string().contains("shared embedding store"), "{err}");

    // No hot-row cache: no per-table counters to distill.
    let err = ServingRuntime::start(
        MicroRec::builder(skewed_model())
            .memory(MemoryConfig::fpga_without_hbm(2))
            .embedding_arena(RowFormat::F32)
            .seed(13),
        adaptive_config(),
    )
    .expect_err("adaptive without a cache must fail");
    assert!(err.to_string().contains("per-table counters"), "{err}");

    // Staged execution publishes counters only at drain.
    let err = ServingRuntime::start(
        builder(),
        RuntimeConfig { execution: ExecutionMode::Pipelined, ..adaptive_config() },
    )
    .expect_err("adaptive under a staged mode must fail");
    assert!(err.to_string().contains("monolithic execution"), "{err}");

    // Routed execution keeps counters inside individual paths.
    let err = ServingRuntime::start(
        builder(),
        RuntimeConfig { execution: ExecutionMode::Routed, ..adaptive_config() },
    )
    .expect_err("adaptive under routed execution must fail");
    assert!(err.to_string().contains("routed execution"), "{err}");
}

#[test]
fn migrate_now_requires_an_adaptive_runtime() {
    let mut runtime = ServingRuntime::start(
        builder(),
        RuntimeConfig { adaptive: false, ..adaptive_config() },
    )
    .expect("runtime");
    let err = runtime.migrate_now().expect_err("non-adaptive runtime has no resharder");
    assert!(err.to_string().contains("not enabled"), "{err}");
    assert!(runtime.migration_records().is_empty());
    runtime.shutdown();
}
