//! Consistent nesting order everywhere: epsilon before zeta in both
//! callers, so the acquisition graph stays acyclic.

impl Counters {
    pub fn total(&self) -> u32 {
        let e = lock_or_recover(&self.epsilon);
        let z = lock_or_recover(&self.zeta);
        *e + *z
    }

    pub fn rebalance(&self) -> u32 {
        let e = lock_or_recover(&self.epsilon);
        let z = lock_or_recover(&self.zeta);
        *e * *z
    }
}
