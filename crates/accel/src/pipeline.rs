//! The deeply pipelined dataflow model (§4.1, Figure 6).
//!
//! Items flow through the accelerator one by one: the embedding-lookup
//! stage feeds three DNN computation stages, each internally split into
//! feature broadcast, partial-GEMM compute, and result gathering, all
//! connected by FIFOs. Because the stages overlap across items,
//!
//! * single-item latency = Σ stage times (fill the pipe once), and
//! * steady-state throughput = 1 / max stage time (the initiation
//!   interval) — which is why the paper's throughput "is not the
//!   reciprocal of latency" (§5.3).

use microrec_embedding::ModelSpec;
use microrec_memsim::SimTime;

use crate::config::{AccelConfig, STREAM_WIDTH};
use crate::error::AccelError;

/// One named pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Human-readable stage name, e.g. `"fc1.compute"`.
    pub name: String,
    /// Time one item occupies the stage.
    pub time: SimTime,
}

/// The full pipeline of the accelerator for one model configuration.
///
/// # Examples
///
/// ```
/// use microrec_accel::{AccelConfig, Pipeline};
/// use microrec_embedding::{ModelSpec, Precision};
/// use microrec_memsim::SimTime;
///
/// let model = ModelSpec::small_production();
/// let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
/// let pipe = Pipeline::build(&model, &cfg, SimTime::from_ns(485.0))?;
/// // Paper Table 2: ~16.3 us single-item latency, ~3e5 items/s.
/// assert!(pipe.latency().as_us() < 25.0);
/// assert!(pipe.throughput_items_per_sec() > 2e5);
/// # Ok::<(), microrec_accel::AccelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    stages: Vec<Stage>,
    clock_hz: u64,
}

impl Pipeline {
    /// Builds the pipeline for `model` on `config`, with the embedding
    /// lookup stage taking `lookup_time` per item (from the placement cost
    /// model).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::ConfigMismatch`] if the PE list does not match
    /// the model's hidden layers.
    pub fn build(
        model: &ModelSpec,
        config: &AccelConfig,
        lookup_time: SimTime,
    ) -> Result<Self, AccelError> {
        if config.pes_per_layer.len() != model.hidden.len() {
            return Err(AccelError::ConfigMismatch {
                expected: model.hidden.len(),
                actual: config.pes_per_layer.len(),
            });
        }
        let hz = config.clock_hz;
        let mut stages = vec![Stage { name: "embedding.lookup".to_string(), time: lookup_time }];
        // The dense branch (Figure 1): a DLRM-style bottom MLP runs on a
        // small dedicated PE group, concurrent with the lookup stage in the
        // dataflow but modelled as its own pipeline stage.
        if !model.bottom_hidden.is_empty() {
            let mut macs = 0u64;
            let mut prev = u64::from(model.dense_dim);
            for &h in &model.bottom_hidden {
                macs += prev * u64::from(h);
                prev = u64::from(h);
            }
            // A dedicated 64-PE group keeps the dense branch off the
            // critical path (it is tiny next to the top MLP).
            let bottom_pes = 64u64 * u64::from(config.macs_per_pe_cycle);
            stages.push(Stage {
                name: "bottom.compute".to_string(),
                time: SimTime::from_cycles(macs.div_ceil(bottom_pes), hz),
            });
        }
        let mut in_dim = u64::from(model.feature_len());
        for (i, (&h, &pes)) in model.hidden.iter().zip(&config.pes_per_layer).enumerate() {
            let out_dim = u64::from(h);
            let macs_per_cycle = u64::from(pes) * u64::from(config.macs_per_pe_cycle);
            // Feature broadcast to the PEs.
            let bcast = in_dim.div_ceil(u64::from(STREAM_WIDTH));
            // Partial GEMM; the last stage also absorbs the single CTR
            // output neuron.
            let mut macs = in_dim * out_dim;
            if i + 1 == model.hidden.len() {
                macs += out_dim;
            }
            let compute = macs.div_ceil(macs_per_cycle);
            // Result gathering from the PEs.
            let gather = out_dim.div_ceil(u64::from(STREAM_WIDTH));
            stages.push(Stage {
                name: format!("fc{}.broadcast", i + 1),
                time: SimTime::from_cycles(bcast, hz),
            });
            stages.push(Stage {
                name: format!("fc{}.compute", i + 1),
                time: SimTime::from_cycles(compute, hz),
            });
            stages.push(Stage {
                name: format!("fc{}.gather", i + 1),
                time: SimTime::from_cycles(gather, hz),
            });
            in_dim = out_dim;
        }
        Ok(Pipeline { stages, clock_hz: hz })
    }

    /// Assembles a pipeline from explicit stages (used to prepend or
    /// append stages such as the host link).
    #[must_use]
    pub fn from_stages(stages: Vec<Stage>, clock_hz: u64) -> Self {
        Pipeline { stages, clock_hz }
    }

    /// The stages in dataflow order.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Kernel clock.
    #[must_use]
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// End-to-end latency of a single item (sum of all stages).
    #[must_use]
    pub fn latency(&self) -> SimTime {
        self.stages.iter().map(|s| s.time).sum()
    }

    /// The initiation interval: the slowest (bottleneck) stage.
    #[must_use]
    pub fn initiation_interval(&self) -> SimTime {
        self.stages.iter().map(|s| s.time).max().unwrap_or(SimTime::ZERO)
    }

    /// Name of the bottleneck stage.
    #[must_use]
    pub fn bottleneck(&self) -> &str {
        self.stages.iter().max_by_key(|s| s.time).map(|s| s.name.as_str()).unwrap_or("")
    }

    /// Steady-state throughput in items per second.
    #[must_use]
    pub fn throughput_items_per_sec(&self) -> f64 {
        self.initiation_interval().throughput_per_sec()
    }

    /// Time to process a batch of `n` items: pipeline fill (the first
    /// item's full latency) plus one initiation interval per further item.
    /// This is the "batch latency ... of both the stable stages in the
    /// middle of the pipeline as well as the time overhead of starting and
    /// ending" the paper's Table 2 speedups are computed against.
    #[must_use]
    pub fn batch_latency(&self, n: u64) -> SimTime {
        if n == 0 {
            return SimTime::ZERO;
        }
        self.latency() + self.initiation_interval() * (n - 1)
    }

    /// Per-stage utilization: each stage's busy fraction at steady state
    /// (stage time / initiation interval). The bottleneck reads 1.0; a
    /// stage at 0.1 idles 90 % of the time — the slack Figure 7's
    /// multi-round lookups consume.
    #[must_use]
    pub fn stage_utilization(&self) -> Vec<(String, f64)> {
        let ii = self.initiation_interval();
        if ii.is_zero() {
            return self.stages.iter().map(|s| (s.name.clone(), 0.0)).collect();
        }
        self.stages.iter().map(|s| (s.name.clone(), s.time.as_ns() / ii.as_ns())).collect()
    }

    /// A copy of this pipeline with the lookup stage repeated `rounds`
    /// times (the Figure 7 robustness experiment: alternative model
    /// architectures needing multiple rounds of embedding retrieval).
    #[must_use]
    pub fn with_lookup_rounds(&self, rounds: u32) -> Pipeline {
        let mut p = self.clone();
        for s in &mut p.stages {
            if s.name == "embedding.lookup" {
                s.time = s.time * u64::from(rounds.max(1));
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_embedding::Precision;

    fn small_pipe(precision: Precision) -> Pipeline {
        let model = ModelSpec::small_production();
        let cfg = AccelConfig::for_model(&model, precision);
        // Lookup time from the placement cost model (~485 ns, one round).
        Pipeline::build(&model, &cfg, SimTime::from_ns(485.0)).unwrap()
    }

    fn large_pipe(precision: Precision) -> Pipeline {
        let model = ModelSpec::large_production();
        let cfg = AccelConfig::for_model(&model, precision);
        Pipeline::build(&model, &cfg, SimTime::from_ns(1011.0)).unwrap()
    }

    #[track_caller]
    fn assert_close(actual: f64, paper: f64, tol: f64, what: &str) {
        let err = (actual - paper).abs() / paper;
        assert!(
            err <= tol,
            "{what}: model {actual:.3e} vs paper {paper:.3e} ({:.1}%)",
            err * 100.0
        );
    }

    #[test]
    fn stage_structure() {
        let p = small_pipe(Precision::Fixed16);
        // 1 lookup + 3 layers x 3 sub-stages.
        assert_eq!(p.stages().len(), 10);
        assert_eq!(p.stages()[0].name, "embedding.lookup");
        assert_eq!(p.stages()[5].name, "fc2.compute");
    }

    #[test]
    fn matches_paper_table2_small_model() {
        // Paper: fp16 1.63e-2 ms latency, 3.05e5 items/s;
        //        fp32 2.26e-2 ms latency, 1.81e5 items/s.
        let p16 = small_pipe(Precision::Fixed16);
        assert_close(p16.latency().as_us(), 16.3, 0.15, "small fp16 latency");
        assert_close(p16.throughput_items_per_sec(), 3.05e5, 0.15, "small fp16 throughput");
        let p32 = small_pipe(Precision::Fixed32);
        assert_close(p32.latency().as_us(), 22.6, 0.15, "small fp32 latency");
        assert_close(p32.throughput_items_per_sec(), 1.81e5, 0.15, "small fp32 throughput");
    }

    #[test]
    fn matches_paper_table2_large_model() {
        // Paper: fp16 2.26e-2 ms, 1.95e5 items/s; fp32 3.10e-2 ms, 1.22e5.
        let p16 = large_pipe(Precision::Fixed16);
        assert_close(p16.latency().as_us(), 22.6, 0.15, "large fp16 latency");
        assert_close(p16.throughput_items_per_sec(), 1.95e5, 0.15, "large fp16 throughput");
        let p32 = large_pipe(Precision::Fixed32);
        assert_close(p32.latency().as_us(), 31.0, 0.15, "large fp32 latency");
        assert_close(p32.throughput_items_per_sec(), 1.22e5, 0.15, "large fp32 throughput");
    }

    #[test]
    fn latency_is_microseconds_not_milliseconds() {
        // The headline claim: 3-4 orders of magnitude under the tens-of-ms
        // SLA.
        for p in [small_pipe(Precision::Fixed16), large_pipe(Precision::Fixed32)] {
            assert!(p.latency().as_ms() < 0.05);
        }
    }

    #[test]
    fn throughput_is_not_reciprocal_of_latency() {
        let p = small_pipe(Precision::Fixed16);
        let reciprocal = 1.0 / p.latency().as_secs();
        assert!(p.throughput_items_per_sec() > 2.0 * reciprocal);
    }

    #[test]
    fn batch_latency_fills_then_streams() {
        let p = small_pipe(Precision::Fixed16);
        assert_eq!(p.batch_latency(0), SimTime::ZERO);
        assert_eq!(p.batch_latency(1), p.latency());
        let b10 = p.batch_latency(10);
        assert_eq!(b10, p.latency() + p.initiation_interval() * 9);
    }

    #[test]
    fn compute_bound_until_enough_lookup_rounds() {
        // Figure 7: the small model tolerates ~6 rounds at fixed-16 before
        // throughput starts to drop.
        let p = small_pipe(Precision::Fixed16);
        let base = p.throughput_items_per_sec();
        let mut knee = 0;
        for rounds in 1..=12 {
            let t = p.with_lookup_rounds(rounds).throughput_items_per_sec();
            if t < base * 0.999 {
                knee = rounds;
                break;
            }
        }
        assert!(
            (5..=9).contains(&knee),
            "small fp16 should stay flat until ~6-7 rounds, knee at {knee}"
        );
        // Large model tolerates fewer rounds (paper: 4).
        let p = large_pipe(Precision::Fixed16);
        let base = p.throughput_items_per_sec();
        let mut knee = 0;
        for rounds in 1..=12 {
            let t = p.with_lookup_rounds(rounds).throughput_items_per_sec();
            if t < base * 0.999 {
                knee = rounds;
                break;
            }
        }
        assert!((3..=6).contains(&knee), "large fp16 knee at {knee}");
    }

    #[test]
    fn utilization_peaks_at_the_bottleneck() {
        let p = small_pipe(Precision::Fixed16);
        let util = p.stage_utilization();
        assert_eq!(util.len(), p.stages().len());
        let max = util.iter().map(|(_, u)| *u).fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-9, "bottleneck utilization must be 1.0");
        let (name, _) = util.iter().find(|(_, u)| (*u - 1.0).abs() < 1e-9).unwrap();
        assert_eq!(name, p.bottleneck());
        // The lookup stage has slack (that Figure 7 consumes).
        let (_, lookup_util) = &util[0];
        assert!(*lookup_util < 0.25, "lookup utilization {lookup_util}");
    }

    #[test]
    fn bottleneck_is_a_compute_stage() {
        let p = small_pipe(Precision::Fixed16);
        assert!(p.bottleneck().contains("compute"), "bottleneck = {}", p.bottleneck());
    }

    #[test]
    fn config_mismatch_detected() {
        let model = ModelSpec::small_production();
        let mut cfg = AccelConfig::for_model(&model, Precision::Fixed16);
        cfg.pes_per_layer.pop();
        assert!(matches!(
            Pipeline::build(&model, &cfg, SimTime::ZERO),
            Err(AccelError::ConfigMismatch { .. })
        ));
    }
}
