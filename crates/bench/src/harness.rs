//! A minimal, dependency-free micro-benchmark harness with a
//! Criterion-compatible surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!`).
//!
//! It calibrates an iteration count per sample, warms up, takes a fixed
//! number of wall-clock samples, and reports the median time per
//! iteration plus throughput when one was declared. The numbers are
//! honest medians, not Criterion's full bootstrap analysis — good enough
//! to compare kernels in this repo without external crates.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub use crate::{criterion_group, criterion_main};

/// Top-level harness handle; one per benchmark binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measurement: Duration::from_secs(3),
            warm_up: Duration::from_secs(1),
            samples: 20,
            throughput: None,
        }
    }
}

/// Declared work per iteration, used to derive a rate from the measured
/// time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration (FLOPs, lookups, ...).
    Elements(u64),
    /// Bytes moved per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    measurement: Duration,
    warm_up: Duration,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the total measurement budget for each benchmark in the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time run before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the number of wall-clock samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Declares the work performed by one iteration of the next
    /// benchmarks, enabling a throughput line in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: calibrate, warm up, sample, report.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate: how many iterations fit in one sample slot?
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let slot = self.measurement.div_f64(self.samples as f64);
        let iters = (slot.as_secs_f64() / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

        // Warm up.
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
        }

        // Sample.
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let lo = times[0];
        let hi = times[times.len() - 1];

        print!(
            "{}/{id:<28} time: [{} {} {}]",
            self.name,
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            print!("  thrpt: {}{unit}", fmt_rate(count as f64 / median));
        }
        println!();
        self
    }

    /// Ends the group (separator line, mirrors Criterion's API).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Passed to each benchmark closure; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.3} ")
    }
}

/// Collects benchmark functions into a single runner function, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_a_trivial_bench() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2))
            .sample_size(3);
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_function("add", |b| {
            ran = true;
            b.iter(|| black_box(2u64) + black_box(2u64))
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn formatting_covers_all_scales() {
        assert!(fmt_time(2.0).ends_with('s'));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_rate(2e9).starts_with("2.000 G"));
        assert!(fmt_rate(2e6).starts_with("2.000 M"));
        assert!(fmt_rate(2e3).starts_with("2.000 K"));
        assert!(fmt_rate(2.0).starts_with("2.000"));
    }
}
