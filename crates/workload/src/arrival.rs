//! Query arrival processes and SLA accounting.
//!
//! Online recommendation serving must answer within "tens of milliseconds"
//! (§1); CPU engines therefore aggregate queries into batches, trading
//! latency for throughput, while MicroRec serves item by item (§4.1). This
//! module generates Poisson arrival streams and computes the waiting time
//! a batching engine adds — the quantity the paper's latency argument
//! turns on.

use microrec_memsim::SimTime;
use microrec_rng::{Exp, Rng};

use crate::error::WorkloadError;

/// A Poisson arrival process.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    exp: Exp,
    rng: Rng,
    now: SimTime,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_sec` mean arrivals per second.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for a non-positive rate.
    pub fn new(rate_per_sec: f64, seed: u64) -> Result<Self, WorkloadError> {
        if rate_per_sec <= 0.0 || !rate_per_sec.is_finite() {
            return Err(WorkloadError::InvalidConfig(format!(
                "arrival rate must be positive and finite, got {rate_per_sec}"
            )));
        }
        Ok(PoissonArrivals {
            exp: Exp::new(rate_per_sec).expect("validated rate"),
            rng: Rng::seed_from_u64(seed),
            now: SimTime::ZERO,
        })
    }

    /// The next arrival instant.
    pub fn next_arrival(&mut self) -> SimTime {
        let gap_secs = self.exp.sample(&mut self.rng);
        self.now += SimTime::from_ns(gap_secs * 1e9);
        self.now
    }

    /// The next `n` arrival instants.
    pub fn take(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// Latency percentiles of a set of response times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean: SimTime,
    /// Median (p50).
    pub p50: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl LatencyStats {
    /// Computes stats from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NoSamples`] for an empty slice.
    pub fn from_samples(samples: &[SimTime]) -> Result<Self, WorkloadError> {
        if samples.is_empty() {
            return Err(WorkloadError::NoSamples);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: SimTime = sorted.iter().copied().sum();
        let pick = |q: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx]
        };
        Ok(LatencyStats {
            mean: total / sorted.len() as u64,
            p50: pick(0.5),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Fraction of samples meeting `sla`.
    #[must_use]
    pub fn sla_hit_rate(samples: &[SimTime], sla: SimTime) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        samples.iter().filter(|&&s| s <= sla).count() as f64 / samples.len() as f64
    }
}

/// Simulates a batching server: queries queue until `batch_size` are
/// available (or `max_wait` passes), then the whole batch is served in
/// `service_time`. Returns per-query response times (wait + service).
///
/// This is the CPU serving discipline the paper argues against: at batch
/// 2048 the *aggregation wait alone* dwarfs the SLA.
#[must_use]
pub fn simulate_batched_serving(
    arrivals: &[SimTime],
    batch_size: usize,
    max_wait: SimTime,
    service_time: SimTime,
) -> Vec<SimTime> {
    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut server_free = SimTime::ZERO;
    let mut i = 0usize;
    while i < arrivals.len() {
        let end = (i + batch_size.max(1)).min(arrivals.len());
        // The batch closes when full or when the first query has waited
        // max_wait, whichever is earlier.
        let full_at = arrivals[end - 1];
        let timeout_at = arrivals[i] + max_wait;
        let close_at = if end - i == batch_size { full_at.min(timeout_at) } else { timeout_at };
        // Serve (possibly after the previous batch finishes).
        let start = close_at.max(server_free);
        let done = start + service_time;
        server_free = done;
        let served_end = if close_at == timeout_at {
            // Only queries that arrived before the batch closed are in it.
            let mut e = i;
            while e < end && arrivals[e] <= close_at {
                e += 1;
            }
            e.max(i + 1)
        } else {
            end
        };
        for &arr in &arrivals[i..served_end] {
            latencies.push(done.saturating_sub(arr));
        }
        i = served_end;
    }
    latencies
}

/// Simulates item-by-item pipelined serving (MicroRec's discipline): each
/// query enters the pipeline as soon as the initiation interval allows and
/// completes `pipeline_latency` later.
#[must_use]
pub fn simulate_pipelined_serving(
    arrivals: &[SimTime],
    initiation_interval: SimTime,
    pipeline_latency: SimTime,
) -> Vec<SimTime> {
    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut next_slot = SimTime::ZERO;
    for &arr in arrivals {
        let start = arr.max(next_slot);
        next_slot = start + initiation_interval;
        let done = start + pipeline_latency;
        latencies.push(done.saturating_sub(arr));
    }
    latencies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut p = PoissonArrivals::new(10_000.0, 3).unwrap();
        let arrivals = p.take(20_000);
        let span = arrivals.last().unwrap().as_secs();
        let rate = arrivals.len() as f64 / span;
        assert!((rate - 10_000.0).abs() / 10_000.0 < 0.05, "rate {rate:.0}");
        // Strictly increasing.
        for w in arrivals.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn bad_rate_rejected() {
        assert!(PoissonArrivals::new(0.0, 0).is_err());
        assert!(PoissonArrivals::new(-5.0, 0).is_err());
        assert!(PoissonArrivals::new(f64::INFINITY, 0).is_err());
    }

    #[test]
    fn latency_stats_ordering() {
        let samples: Vec<SimTime> = (1..=100).map(|i| SimTime::from_us(f64::from(i))).collect();
        let stats = LatencyStats::from_samples(&samples).unwrap();
        assert!(stats.p50 <= stats.p99);
        assert!(stats.p99 <= stats.max);
        assert_eq!(stats.max, SimTime::from_us(100.0));
        assert!((stats.mean.as_us() - 50.5).abs() < 0.01);
        assert!(LatencyStats::from_samples(&[]).is_err());
    }

    #[test]
    fn sla_hit_rate_counts() {
        let samples = vec![SimTime::from_ms(1.0), SimTime::from_ms(5.0), SimTime::from_ms(100.0)];
        let rate = LatencyStats::sla_hit_rate(&samples, SimTime::from_ms(10.0));
        assert!((rate - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn batching_adds_aggregation_wait() {
        // 10k QPS, batch 64: the first query of each batch waits for ~63
        // inter-arrival gaps (~6.3 ms) before service even starts.
        let mut p = PoissonArrivals::new(10_000.0, 1).unwrap();
        let arrivals = p.take(2_000);
        let batched =
            simulate_batched_serving(&arrivals, 64, SimTime::from_ms(50.0), SimTime::from_ms(5.0));
        let stats = LatencyStats::from_samples(&batched).unwrap();
        assert!(stats.mean.as_ms() > 5.0, "mean {} must exceed service time", stats.mean);

        let pipelined =
            simulate_pipelined_serving(&arrivals, SimTime::from_us(3.4), SimTime::from_us(16.3));
        let pstats = LatencyStats::from_samples(&pipelined).unwrap();
        assert!(pstats.p99.as_ms() < 0.1, "pipelined p99 {} should be microseconds", pstats.p99);
        assert!(pstats.p99 < stats.p50);
    }

    #[test]
    fn batch_timeout_bounds_wait() {
        // Trickle traffic (100 QPS) with batch 2048: the timeout must close
        // batches long before they fill.
        let mut p = PoissonArrivals::new(100.0, 5).unwrap();
        let arrivals = p.take(300);
        let lat = simulate_batched_serving(
            &arrivals,
            2048,
            SimTime::from_ms(20.0),
            SimTime::from_ms(28.0),
        );
        assert_eq!(lat.len(), 300);
        let stats = LatencyStats::from_samples(&lat).unwrap();
        // Wait <= 20 ms + service 28 ms + queueing.
        assert!(stats.p50.as_ms() < 120.0, "p50 {}", stats.p50);
    }

    #[test]
    fn pipelined_keeps_up_at_rate_below_capacity() {
        let mut p = PoissonArrivals::new(100_000.0, 9).unwrap();
        let arrivals = p.take(5_000);
        // II 3.4 us supports ~294k items/s > 100k offered.
        let lat =
            simulate_pipelined_serving(&arrivals, SimTime::from_us(3.4), SimTime::from_us(16.3));
        let stats = LatencyStats::from_samples(&lat).unwrap();
        assert!(stats.p99.as_us() < 200.0, "p99 {}", stats.p99);
    }
}
