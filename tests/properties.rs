//! Randomized tests over the core invariants listed in DESIGN.md §5,
//! exercised across crate boundaries. Cases are drawn from a seeded RNG so
//! every run is reproducible.

use microrec_rng::Rng;

use microrec_embedding::cartesian::{
    materialize_product, merged_row_index, product_rows, unmerged_row_indices,
};
use microrec_embedding::{Catalog, EmbeddingTable, MergePlan, ModelSpec, Precision, TableSpec};
use microrec_memsim::{MemoryConfig, SimTime};
use microrec_placement::{allocate, heuristic_search, HeuristicOptions};

/// A small random model (2–10 tables, 1–200 rows, dim 1–8).
fn small_model(rng: &mut Rng) -> ModelSpec {
    let n = rng.gen_range_usize(2, 10);
    ModelSpec::new(
        "prop",
        (0..n)
            .map(|i| {
                TableSpec::new(
                    format!("t{i}"),
                    rng.gen_range_u64(1, 200),
                    rng.gen_range_u64(1, 8) as u32,
                )
            })
            .collect(),
        vec![16, 8],
        1,
    )
}

/// Cartesian index math: merge then unmerge is the identity, and the merged
/// index is always in range.
#[test]
fn cartesian_index_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xCA27);
    for _ in 0..200 {
        let n = rng.gen_range_usize(2, 5);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(1, 50)).collect();
        let indices: Vec<u64> = sizes.iter().map(|&s| rng.gen_range_u64(0, 50) % s).collect();
        let merged = merged_row_index(&sizes, &indices).unwrap();
        assert!(merged < product_rows(&sizes).unwrap());
        let back = unmerged_row_indices(&sizes, merged).unwrap();
        assert_eq!(back, indices);
    }
}

/// Physical Cartesian products are bit-identical concatenations for every
/// (i, j) pair.
#[test]
fn cartesian_materialization_identity() {
    let mut rng = Rng::seed_from_u64(0xCA72);
    for _ in 0..60 {
        let rows_a = rng.gen_range_u64(1, 20);
        let rows_b = rng.gen_range_u64(1, 20);
        let dim_a = rng.gen_range_u64(1, 6) as u32;
        let dim_b = rng.gen_range_u64(1, 6) as u32;
        let seed = rng.next_u64();
        let a = EmbeddingTable::procedural(TableSpec::new("a", rows_a, dim_a), seed);
        let b =
            EmbeddingTable::procedural(TableSpec::new("b", rows_b, dim_b), seed.wrapping_add(1));
        let product = materialize_product(&[&a, &b], u64::MAX).unwrap();
        let (i, j) = (rng.gen_range_u64(0, rows_a), rng.gen_range_u64(0, rows_b));
        let merged = merged_row_index(&[rows_a, rows_b], &[i, j]).unwrap();
        let mut expect = a.row(i).unwrap();
        expect.extend(b.row(j).unwrap());
        assert_eq!(product.row(merged).unwrap(), expect);
    }
}

/// Any valid merge plan leaves the gathered feature vector unchanged.
#[test]
fn gather_is_merge_invariant() {
    let mut rng = Rng::seed_from_u64(0x6A72);
    let mut exercised = 0;
    while exercised < 40 {
        let model = small_model(&mut rng);
        let seed = rng.next_u64();
        let pair_seed = rng.next_u64();
        let n = model.num_tables();
        // Derive a deterministic disjoint pair set from pair_seed.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (pair_seed.rotate_left(i as u32)) ^ i as u64);
        let pairs: Vec<(usize, usize)> =
            order.chunks(2).filter(|c| c.len() == 2).take(2).map(|c| (c[0], c[1])).collect();
        if pairs.is_empty() {
            continue;
        }
        exercised += 1;

        let unmerged = Catalog::build(&model, &MergePlan::none(), seed).unwrap();
        let merged = Catalog::build(&model, &MergePlan::pairs(&pairs), seed).unwrap();
        let indices: Vec<u64> = model
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (seed.wrapping_add(i as u64 * 7)) % t.rows)
            .collect();
        assert_eq!(unmerged.gather_vec(&indices).unwrap(), merged.gather_vec(&indices).unwrap());
        // And the merged catalog needs strictly fewer physical reads.
        assert!(
            merged.resolve(&indices).unwrap().len() < unmerged.resolve(&indices).unwrap().len()
        );
    }
}

/// Every plan the allocator produces validates: all tables placed once, no
/// bank over capacity.
#[test]
fn allocator_plans_always_validate() {
    let mut rng = Rng::seed_from_u64(0xA110);
    for _ in 0..40 {
        let model = small_model(&mut rng);
        let config = MemoryConfig::u280();
        let plan = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        plan.validate(&model, &config).unwrap();
        // Determinism: same inputs, same plan.
        let again = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        assert_eq!(plan, again);
    }
}

/// The heuristic never returns something worse than the unmerged baseline,
/// and its best plan always validates.
#[test]
fn heuristic_never_regresses() {
    let mut rng = Rng::seed_from_u64(0x4E07);
    for _ in 0..25 {
        let model = small_model(&mut rng);
        let config = MemoryConfig::u280();
        let base = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )
        .unwrap();
        let best = heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default())
            .unwrap();
        assert!(best.cost.lookup_latency <= base.cost.lookup_latency);
        best.plan.validate(&model, &config).unwrap();
        // Storage only grows when latency strictly improves.
        if best.cost.storage_bytes > base.cost.storage_bytes {
            assert!(best.cost.lookup_latency < base.cost.lookup_latency);
        }
    }
}

/// Plan cost is monotone in lookups-per-table.
#[test]
fn cost_monotone_in_lookups() {
    let mut rng = Rng::seed_from_u64(0xC057);
    for _ in 0..25 {
        let model = small_model(&mut rng);
        let config = MemoryConfig::u280();
        let plan = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        let mut prev = SimTime::ZERO;
        for lookups in 1..=4u32 {
            let cost = plan.cost(&config, lookups);
            assert!(cost.lookup_latency >= prev);
            prev = cost.lookup_latency;
        }
    }
}

/// SimTime arithmetic: addition is commutative/associative and display
/// never panics.
#[test]
fn simtime_algebra() {
    let mut rng = Rng::seed_from_u64(0x71ED);
    for _ in 0..500 {
        let a = rng.gen_range_u64(0, u64::MAX / 4);
        let b = rng.gen_range_u64(0, u64::MAX / 4);
        let c = rng.gen_range_u64(0, u64::MAX / 4);
        let (x, y, z) = (SimTime::from_ps(a), SimTime::from_ps(b), SimTime::from_ps(c));
        assert_eq!(x + y, y + x);
        assert_eq!((x + y) + z, x + (y + z));
        assert_eq!(x.saturating_sub(x), SimTime::ZERO);
        assert!(x.max(y) >= x.min(y));
        let _ = format!("{x}");
    }
}

/// Q-format quantization: round-trip error bounded by half an ULP and
/// ordering preserved for in-range values.
#[test]
fn qformat_bounds() {
    use microrec_dnn::{Q16, Q32};
    let mut rng = Rng::seed_from_u64(0x9F02);
    for _ in 0..2000 {
        let v = rng.gen_range_f32(-3.9, 3.9);
        let w = rng.gen_range_f32(-3.9, 3.9);
        assert!(Q16::quantization_error(v) <= 0.5 / 8192.0 + 1e-6);
        assert!(Q32::quantization_error(v) <= 0.5 / 8_388_608.0 + 1e-6);
        if v + 1.0 / 4096.0 < w {
            assert!(Q16::from_f32(v) < Q16::from_f32(w));
        }
        // Multiplication semantics: |q(v)*q(w) - v*w| small when the
        // product is in range.
        let exact = f64::from(v) * f64::from(w);
        if exact.abs() < 3.9 {
            let q = (Q16::from_f32(v) * Q16::from_f32(w)).to_f32();
            assert!((f64::from(q) - exact).abs() < 2e-3, "{q} vs {exact}");
        }
    }
}

/// Procedural tables are pure functions of (seed, row, col).
#[test]
fn procedural_tables_are_pure() {
    let mut rng = Rng::seed_from_u64(0x9002);
    for _ in 0..60 {
        let seed = rng.next_u64();
        let rows = rng.gen_range_u64(1, 1000);
        let dim = rng.gen_range_u64(1, 16) as u32;
        let spec = TableSpec::new("t", rows, dim);
        let a = EmbeddingTable::procedural(spec.clone(), seed);
        let b = EmbeddingTable::procedural(spec, seed);
        let r = seed % rows;
        assert_eq!(a.row(r).unwrap(), b.row(r).unwrap());
        for v in a.row(r).unwrap() {
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
