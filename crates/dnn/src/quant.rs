//! Per-tensor scaled integer quantization.
//!
//! The Q-format datapath ([`Q16`](crate::Q16)/[`Q32`](crate::Q32)) uses one
//! global binary point — simple, but it wastes range on small-magnitude
//! tensors. Production quantization (and a more aggressive FPGA design)
//! scales each tensor individually: weights and activations are mapped to
//! integers through per-tensor scale factors, MACs accumulate in a wide
//! integer, and the scales are folded back at the output. This module
//! implements symmetric per-tensor quantization at arbitrary bit widths,
//! with activation scales taken from a calibration set — the standard
//! post-training-quantization recipe, and a measured extension beyond the
//! paper's fixed-point choice.

use crate::error::DnnError;
use crate::layer::Activation;
use crate::mlp::Mlp;

/// A symmetric per-tensor scale: `real = q * scale`, `q ∈ [-qmax, qmax]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantScale {
    /// Real value represented by the integer 1.
    pub scale: f32,
    /// Largest representable integer magnitude.
    pub qmax: i32,
}

impl QuantScale {
    /// Scale covering `[-max_abs, max_abs]` at `bits` total bits (one sign
    /// bit).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=31`.
    #[must_use]
    pub fn for_range(max_abs: f32, bits: u8) -> Self {
        assert!((2..=31).contains(&bits), "bits must be in 2..=31, got {bits}");
        let qmax = (1i32 << (bits - 1)) - 1;
        let max_abs = if max_abs > 0.0 { max_abs } else { 1.0 };
        QuantScale { scale: max_abs / qmax as f32, qmax }
    }

    /// Quantizes one value (round-to-nearest, saturating).
    #[must_use]
    pub fn quantize(&self, v: f32) -> i32 {
        let q = (v / self.scale).round();
        q.clamp(-(self.qmax as f32), self.qmax as f32) as i32
    }

    /// Dequantizes one integer.
    #[must_use]
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }
}

/// One quantized dense layer.
#[derive(Debug, Clone, PartialEq)]
struct QuantizedLayer {
    /// Row-major quantized weights (`out × in`).
    weights: Vec<i32>,
    input_dim: usize,
    output_dim: usize,
    w_scale: QuantScale,
    x_scale: QuantScale,
    bias: Vec<f32>,
    activation: Activation,
}

impl QuantizedLayer {
    /// Integer forward pass: quantize input, integer MACs in i64, fold the
    /// scales back, add bias, activate.
    fn forward(&self, input: &[f32], output: &mut [f32]) -> Result<(), DnnError> {
        if input.len() != self.input_dim {
            return Err(DnnError::ShapeMismatch {
                context: "QuantizedLayer input",
                expected: self.input_dim,
                actual: input.len(),
            });
        }
        if output.len() != self.output_dim {
            return Err(DnnError::ShapeMismatch {
                context: "QuantizedLayer output",
                expected: self.output_dim,
                actual: output.len(),
            });
        }
        let xq: Vec<i64> = input.iter().map(|&v| i64::from(self.x_scale.quantize(v))).collect();
        let rescale = self.w_scale.scale * self.x_scale.scale;
        for (o, slot) in output.iter_mut().enumerate() {
            let row = &self.weights[o * self.input_dim..(o + 1) * self.input_dim];
            let acc: i64 = row.iter().zip(&xq).map(|(&w, &x)| i64::from(w) * x).sum();
            let real = acc as f32 * rescale + self.bias[o];
            *slot = self.activation.apply(real);
        }
        Ok(())
    }
}

/// A post-training-quantized MLP.
///
/// # Examples
///
/// ```
/// use microrec_dnn::{Mlp, QuantizedMlp};
///
/// let mlp = Mlp::top_mlp(32, &[64, 16], 3)?;
/// let calibration: Vec<Vec<f32>> =
///     (0..8).map(|i| (0..32).map(|j| ((i * 32 + j) as f32 * 0.1).sin()).collect()).collect();
/// let q8 = QuantizedMlp::quantize(&mlp, 8, &calibration)?;
/// let x = vec![0.25f32; 32];
/// let err = (q8.predict_ctr(&x)? - mlp.predict_ctr(&x)?).abs();
/// assert!(err < 0.1);
/// # Ok::<(), microrec_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
    bits: u8,
}

impl QuantizedMlp {
    /// Quantizes `mlp` to `bits`-bit integers, calibrating activation
    /// scales on `calibration` inputs (their per-layer max magnitudes).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::EmptyNetwork`] for an empty calibration set or
    /// [`DnnError::ShapeMismatch`] if calibration inputs have the wrong
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=31`.
    pub fn quantize(mlp: &Mlp, bits: u8, calibration: &[Vec<f32>]) -> Result<Self, DnnError> {
        if calibration.is_empty() {
            return Err(DnnError::EmptyNetwork);
        }
        // Run calibration inputs through the f32 network, recording each
        // layer input's max magnitude.
        let mut layer_input_max = vec![0.0f32; mlp.layers().len()];
        for sample in calibration {
            let mut current = sample.clone();
            for (k, layer) in mlp.layers().iter().enumerate() {
                let m = current.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                layer_input_max[k] = layer_input_max[k].max(m);
                current = layer.forward_vec(&current)?;
            }
        }

        let layers = mlp
            .layers()
            .iter()
            .zip(&layer_input_max)
            .map(|(layer, &input_max)| {
                let w_scale = QuantScale::for_range(layer.weights().max_abs(), bits);
                let x_scale = QuantScale::for_range(input_max, bits);
                let weights =
                    layer.weights().as_slice().iter().map(|&w| w_scale.quantize(w)).collect();
                QuantizedLayer {
                    weights,
                    input_dim: layer.input_dim(),
                    output_dim: layer.output_dim(),
                    w_scale,
                    x_scale,
                    bias: layer.bias().to_vec(),
                    activation: layer.activation(),
                }
            })
            .collect();
        Ok(QuantizedMlp { layers, bits })
    }

    /// Quantization bit width.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Weight storage in bytes at the chosen width (packed).
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        let params: u64 = self.layers.iter().map(|l| l.weights.len() as u64).sum();
        params * u64::from(self.bits).div_ceil(8)
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for a wrong input width.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, DnnError> {
        let mut current = input.to_vec();
        for layer in &self.layers {
            let mut next = vec![0.0f32; layer.output_dim];
            layer.forward(&current, &mut next)?;
            current = next;
        }
        Ok(current)
    }

    /// Predicts the CTR for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for a wrong input width.
    pub fn predict_ctr(&self, input: &[f32]) -> Result<f32, DnnError> {
        Ok(self.forward(input)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp() -> Mlp {
        Mlp::top_mlp(32, &[64, 16], 11).unwrap()
    }

    fn calibration() -> Vec<Vec<f32>> {
        (0..16)
            .map(|i| (0..32).map(|j| ((i * 32 + j) as f32 * 0.37).sin() * 0.8).collect())
            .collect()
    }

    #[test]
    fn scale_round_trip() {
        let s = QuantScale::for_range(2.0, 8);
        assert_eq!(s.qmax, 127);
        for v in [-2.0f32, -1.0, 0.0, 0.5, 1.99] {
            let q = s.quantize(v);
            assert!((s.dequantize(q) - v).abs() <= s.scale / 2.0 + 1e-7);
        }
        // Saturation.
        assert_eq!(s.quantize(100.0), 127);
        assert_eq!(s.quantize(-100.0), -127);
    }

    #[test]
    fn zero_range_does_not_divide_by_zero() {
        let s = QuantScale::for_range(0.0, 8);
        assert_eq!(s.quantize(0.0), 0);
        assert!(s.scale > 0.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn absurd_bits_panics() {
        let _ = QuantScale::for_range(1.0, 40);
    }

    #[test]
    fn int16_tracks_reference_closely() {
        let m = mlp();
        let q = QuantizedMlp::quantize(&m, 16, &calibration()).unwrap();
        for sample in calibration() {
            let reference = m.predict_ctr(&sample).unwrap();
            let quantized = q.predict_ctr(&sample).unwrap();
            assert!((reference - quantized).abs() < 2e-3, "{quantized} vs {reference}");
        }
    }

    #[test]
    fn error_shrinks_with_bits() {
        let m = mlp();
        let cal = calibration();
        let mut prev_err = f32::INFINITY;
        for bits in [4u8, 8, 12, 16] {
            let q = QuantizedMlp::quantize(&m, bits, &cal).unwrap();
            let err: f32 = cal
                .iter()
                .map(|s| (m.predict_ctr(s).unwrap() - q.predict_ctr(s).unwrap()).abs())
                .fold(0.0, f32::max);
            assert!(
                err <= prev_err * 1.05 + 1e-6,
                "error should shrink with bits: {err} at {bits} vs {prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 1e-3, "16-bit error {prev_err}");
    }

    #[test]
    fn weight_bytes_scale_with_width() {
        let m = mlp();
        let cal = calibration();
        let q8 = QuantizedMlp::quantize(&m, 8, &cal).unwrap();
        let q16 = QuantizedMlp::quantize(&m, 16, &cal).unwrap();
        assert_eq!(q16.weight_bytes(), 2 * q8.weight_bytes());
        assert_eq!(q8.bits(), 8);
    }

    #[test]
    fn wrong_width_rejected() {
        let q = QuantizedMlp::quantize(&mlp(), 8, &calibration()).unwrap();
        assert!(q.predict_ctr(&[0.0; 31]).is_err());
        assert!(QuantizedMlp::quantize(&mlp(), 8, &[]).is_err());
    }

    #[test]
    fn per_tensor_beats_global_qformat_at_8_bits() {
        // The point of per-tensor scales: at 8 bits a global Q2.5-style
        // format would be useless for ~0.05-magnitude weights, while
        // calibrated scales keep predictions usable.
        let m = mlp();
        let cal = calibration();
        let q8 = QuantizedMlp::quantize(&m, 8, &cal).unwrap();
        for sample in cal.iter().take(4) {
            let reference = m.predict_ctr(sample).unwrap();
            let quantized = q8.predict_ctr(sample).unwrap();
            assert!((reference - quantized).abs() < 0.05, "{quantized} vs {reference}");
        }
    }
}
