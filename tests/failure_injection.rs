//! Failure-injection tests: every layer must fail loudly and cleanly —
//! typed errors with informative messages, no panics, no corrupted state —
//! when fed impossible configurations.

use std::error::Error as _;

use microrec_core::MicroRec;
use microrec_embedding::{MergePlan, ModelSpec, Precision, TableSpec};
use microrec_memsim::{BankId, HybridMemory, MemoryConfig, MemoryKind, ReadRequest};
use microrec_placement::{allocate, heuristic_search, HeuristicOptions, PlacementError};

fn model_with(tables: Vec<TableSpec>) -> ModelSpec {
    ModelSpec::new("inject", tables, vec![16], 1)
}

#[test]
fn table_larger_than_every_bank() {
    // 64 GB table > 16 GB DDR channel.
    let model = model_with(vec![TableSpec::new("leviathan", 250_000_000, 64)]);
    let err = heuristic_search(
        &model,
        &MemoryConfig::u280(),
        Precision::F32,
        &HeuristicOptions::default(),
    )
    .unwrap_err();
    match err {
        PlacementError::Infeasible(msg) => {
            assert!(msg.contains("leviathan"), "message should name the table: {msg}")
        }
        other => panic!("expected Infeasible, got {other}"),
    }
}

#[test]
fn capacity_exhaustion_is_detected_not_overpacked() {
    // 300 tables x 200 MB = 60 GB > the U280's 40 GB of DRAM.
    let tables: Vec<TableSpec> =
        (0..300).map(|i| TableSpec::new(format!("t{i}"), 1_600_000, 32)).collect();
    let model = model_with(tables);
    assert!(matches!(
        allocate(&model, &MergePlan::none(), &MemoryConfig::u280(), Precision::F32),
        Err(PlacementError::Infeasible(_))
    ));
}

#[test]
fn memory_without_dram_is_rejected() {
    let mut config = MemoryConfig::u280();
    config.banks.retain(|b| b.id.kind.is_on_chip());
    let model = model_with(vec![TableSpec::new("t", 100, 4)]);
    let err = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap_err();
    assert!(err.to_string().contains("no DRAM banks"));
}

#[test]
fn merge_plan_overflow_is_an_error_not_a_wrap() {
    // Product of two huge tables overflows u64 rows.
    let model = model_with(vec![
        TableSpec::new("a", u64::MAX / 2, 4),
        TableSpec::new("b", u64::MAX / 2, 4),
    ]);
    let err = allocate(&model, &MergePlan::pairs(&[(0, 1)]), &MemoryConfig::u280(), Precision::F32)
        .unwrap_err();
    assert!(err.to_string().contains("overflow"), "{err}");
    assert!(err.source().is_some(), "wrapped embedding error");
}

#[test]
fn engine_build_failure_reports_cause_chain() {
    let model = model_with(vec![TableSpec::new("leviathan", 250_000_000, 64)]);
    let err = MicroRec::builder(model).build().unwrap_err();
    let text = err.to_string();
    assert!(text.contains("placement"), "{text}");
    let mut depth = 0;
    let mut source: Option<&dyn std::error::Error> = err.source();
    while let Some(s) = source {
        depth += 1;
        source = s.source();
    }
    assert!(depth >= 1, "error chain should have a cause");
}

#[test]
fn memory_state_survives_rejected_batches() {
    let mut mem = HybridMemory::new(MemoryConfig::u280());
    let good = BankId::new(MemoryKind::Hbm, 0);
    let bogus = BankId::new(MemoryKind::Hbm, 200);
    mem.parallel_read(&[ReadRequest::new(good, 64)]).unwrap();
    let before = mem.stats().total();
    for _ in 0..5 {
        assert!(mem
            .parallel_read(&[ReadRequest::new(good, 64), ReadRequest::new(bogus, 64)])
            .is_err());
    }
    assert_eq!(mem.stats().total(), before, "failed batches must not record");
    // The device still works afterwards.
    mem.parallel_read(&[ReadRequest::new(good, 64)]).unwrap();
    assert_eq!(mem.stats().total().reads, before.reads + 1);
}

#[test]
fn engine_survives_malformed_queries_interleaved_with_good_ones() {
    let model = ModelSpec::dlrm_rmc2(4, 4);
    let mut engine = MicroRec::builder(model).seed(1).build().unwrap();
    let good = vec![5u64; 16];
    let expected = engine.predict(&good).unwrap();
    for bad in [vec![0u64; 3], vec![u64::MAX; 16], Vec::new()] {
        assert!(engine.predict(&bad).is_err());
        assert_eq!(
            engine.predict(&good).unwrap(),
            expected,
            "a rejected query must not perturb the engine"
        );
    }
}

#[test]
fn zero_size_models_are_rejected_everywhere() {
    let empty = ModelSpec::new("empty", vec![], vec![16], 1);
    assert!(empty.validate().is_err() || empty.num_tables() == 0);
    // The builder validates before searching.
    let zero_rows = model_with(vec![TableSpec::new("z", 0, 4)]);
    assert!(MicroRec::builder(zero_rows).build().is_err());
    let zero_dim = model_with(vec![TableSpec::new("z", 4, 0)]);
    assert!(MicroRec::builder(zero_dim).build().is_err());
}

#[test]
fn nan_resilience_in_quantization() {
    use microrec_dnn::{Q16, Q32};
    assert_eq!(Q16::from_f32(f32::NAN).to_f32(), 0.0);
    assert_eq!(Q32::from_f32(f32::NAN).to_f32(), 0.0);
    assert_eq!(Q16::from_f32(f32::INFINITY), Q16::MAX);
    assert_eq!(Q16::from_f32(f32::NEG_INFINITY), Q16::MIN);
}

#[test]
fn error_messages_are_lowercase_and_specific() {
    // The API-guideline style check, applied to real failures.
    let model = model_with(vec![TableSpec::new("t", 100, 4), TableSpec::new("t", 50, 4)]);
    let err = model.validate().unwrap_err().to_string();
    assert!(err.starts_with(char::is_lowercase), "{err}");
    assert!(err.contains("duplicate"), "{err}");
}
