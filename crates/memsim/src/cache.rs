//! A hot-entry cache model (RecNMP-style memory-side caching).
//!
//! Ke et al. 2020 (cited in §6) attack the same lookup bottleneck as
//! MicroRec by caching frequently-accessed embedding *entries* near
//! memory. This module models such a cache — set-associative with LRU
//! replacement, keyed by `(bank, row offset)` — so the reproduction can
//! *measure* how the two approaches compare under skewed traffic: caching
//! helps exactly as much as the traffic is skewed, while channel
//! parallelism helps unconditionally (the `rowbuffer` bench tells the
//! story).

use crate::bank::BankId;
use crate::rowstate::AddressedRead;
use crate::time::SimTime;

/// Configuration of the hot-entry cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Bytes per cached entry (one embedding vector slot).
    pub entry_bytes: u32,
    /// Latency of a cache hit.
    pub hit_latency: SimTime,
}

impl CacheConfig {
    /// A 1 MB, 4-way cache of 64-byte entries with SRAM hit latency —
    /// roughly RecNMP's per-rank cache budget.
    #[must_use]
    pub fn recnmp_1mb() -> Self {
        CacheConfig { sets: 4096, ways: 4, entry_bytes: 64, hit_latency: SimTime::from_ns(10.0) }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * u64::from(self.entry_bytes)
    }
}

/// One cache line's tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tag {
    bank: BankId,
    block: u64,
    /// Monotonic use counter for LRU.
    last_use: u64,
}

/// A set-associative LRU cache over embedding entries.
///
/// # Examples
///
/// ```
/// use microrec_memsim::{AddressedRead, BankId, CacheConfig, EntryCache, MemoryKind};
///
/// let mut cache = EntryCache::new(CacheConfig::recnmp_1mb());
/// let read = AddressedRead::new(BankId::new(MemoryKind::Ddr, 0), 4096, 64);
/// assert!(cache.access(&read).is_none(), "cold miss fills the line");
/// assert!(cache.access(&read).is_some(), "hot entry hits");
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EntryCache {
    config: CacheConfig,
    sets: Vec<Vec<Tag>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl EntryCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        EntryCache {
            config,
            sets: vec![Vec::new(); config.sets.max(1)],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Looks up (and on miss, fills) the entry backing `read`. Returns
    /// `Some(hit_latency)` on a hit, `None` on a miss (caller pays DRAM).
    pub fn access(&mut self, read: &AddressedRead) -> Option<SimTime> {
        self.clock += 1;
        let block = read.offset / u64::from(self.config.entry_bytes.max(1));
        let set_idx =
            ((block ^ (u64::from(read.bank.index) << 40) ^ ((read.bank.kind as u64) << 56))
                % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(tag) = set.iter_mut().find(|t| t.bank == read.bank && t.block == block) {
            tag.last_use = self.clock;
            self.hits += 1;
            return Some(self.config.hit_latency);
        }
        self.misses += 1;
        // Fill with LRU eviction.
        if set.len() >= self.config.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set.remove(lru);
        }
        set.push(Tag { bank: read.bank, block, last_use: self.clock });
        None
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::MemoryKind;

    fn read(bank: u16, offset: u64) -> AddressedRead {
        AddressedRead::new(BankId::new(MemoryKind::Hbm, bank), offset, 16)
    }

    fn tiny_cache(sets: usize, ways: usize) -> EntryCache {
        EntryCache::new(CacheConfig {
            sets,
            ways,
            entry_bytes: 64,
            hit_latency: SimTime::from_ns(10.0),
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny_cache(16, 2);
        assert!(c.access(&read(0, 128)).is_none(), "cold miss");
        assert!(c.access(&read(0, 128)).is_some(), "warm hit");
        // Same 64-byte block, different byte offset: still a hit.
        assert!(c.access(&read(0, 160)).is_some());
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_banks_do_not_alias() {
        let mut c = tiny_cache(16, 2);
        c.access(&read(0, 0));
        assert!(c.access(&read(1, 0)).is_none(), "other bank is a different entry");
        assert!(c.access(&read(0, 0)).is_some());
        assert!(c.access(&read(1, 0)).is_some());
    }

    #[test]
    fn lru_evicts_the_oldest() {
        // One set, two ways.
        let mut c = tiny_cache(1, 2);
        c.access(&read(0, 0)); // A miss+fill
        c.access(&read(0, 64)); // B miss+fill
        c.access(&read(0, 0)); // A hit (B is now LRU)
        c.access(&read(0, 128)); // C miss, evicts B
        assert!(c.access(&read(0, 0)).is_some(), "A survived");
        assert!(c.access(&read(0, 64)).is_none(), "B was evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny_cache(4, 2); // 8 entries
        for round in 0..3 {
            for i in 0..64u64 {
                let hit = c.access(&read(0, i * 64)).is_some();
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.hit_rate() < 0.1, "thrash hit rate {}", c.hit_rate());
    }

    #[test]
    fn skewed_stream_gets_high_hit_rate() {
        let mut c = EntryCache::new(CacheConfig::recnmp_1mb());
        // 90% of accesses to 100 hot entries, 10% to a huge tail.
        for i in 0..10_000u64 {
            let offset = if i % 10 != 0 { (i % 100) * 64 } else { 1_000_000 + i * 6400 };
            c.access(&read((i % 4) as u16, offset));
        }
        assert!(c.hit_rate() > 0.8, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny_cache(4, 2);
        c.access(&read(0, 0));
        c.access(&read(0, 0));
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.access(&read(0, 0)).is_none(), "cold after reset");
    }

    #[test]
    fn capacity_math() {
        let cfg = CacheConfig::recnmp_1mb();
        assert_eq!(cfg.capacity(), 4096 * 4 * 64);
    }
}
