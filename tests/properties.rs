//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md §5, exercised across crate boundaries.

use proptest::collection::vec;
use proptest::prelude::*;

use microrec_embedding::cartesian::{
    materialize_product, merged_row_index, product_rows, unmerged_row_indices,
};
use microrec_embedding::{Catalog, EmbeddingTable, MergePlan, ModelSpec, Precision, TableSpec};
use microrec_memsim::{MemoryConfig, SimTime};
use microrec_placement::{allocate, heuristic_search, HeuristicOptions};

/// Strategy: a small random model (2–10 tables, 1–200 rows, dim 1–8).
fn small_model() -> impl Strategy<Value = ModelSpec> {
    vec((1u64..200, 1u32..8), 2..10).prop_map(|tables| {
        ModelSpec::new(
            "prop",
            tables
                .into_iter()
                .enumerate()
                .map(|(i, (rows, dim))| TableSpec::new(format!("t{i}"), rows, dim))
                .collect(),
            vec![16, 8],
            1,
        )
    })
}

proptest! {
    /// Cartesian index math: merge then unmerge is the identity, and the
    /// merged index is always in range.
    #[test]
    fn cartesian_index_roundtrip(
        sizes in vec(1u64..50, 2..5),
        picks in vec(0u64..50, 2..5),
    ) {
        prop_assume!(sizes.len() == picks.len());
        let indices: Vec<u64> =
            picks.iter().zip(&sizes).map(|(&p, &n)| p % n).collect();
        let merged = merged_row_index(&sizes, &indices).unwrap();
        prop_assert!(merged < product_rows(&sizes).unwrap());
        let back = unmerged_row_indices(&sizes, merged).unwrap();
        prop_assert_eq!(back, indices);
    }

    /// Physical Cartesian products are bit-identical concatenations for
    /// every (i, j) pair.
    #[test]
    fn cartesian_materialization_identity(
        rows_a in 1u64..20,
        rows_b in 1u64..20,
        dim_a in 1u32..6,
        dim_b in 1u32..6,
        seed in any::<u64>(),
        i in 0u64..20,
        j in 0u64..20,
    ) {
        let a = EmbeddingTable::procedural(TableSpec::new("a", rows_a, dim_a), seed);
        let b = EmbeddingTable::procedural(
            TableSpec::new("b", rows_b, dim_b),
            seed.wrapping_add(1),
        );
        let product = materialize_product(&[&a, &b], u64::MAX).unwrap();
        let (i, j) = (i % rows_a, j % rows_b);
        let merged = merged_row_index(&[rows_a, rows_b], &[i, j]).unwrap();
        let mut expect = a.row(i).unwrap();
        expect.extend(b.row(j).unwrap());
        prop_assert_eq!(product.row(merged).unwrap(), expect);
    }

    /// Any valid merge plan leaves the gathered feature vector unchanged.
    #[test]
    fn gather_is_merge_invariant(
        model in small_model(),
        seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let n = model.num_tables();
        // Derive a deterministic disjoint pair set from pair_seed.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (pair_seed.rotate_left(i as u32)) ^ i as u64);
        let pairs: Vec<(usize, usize)> =
            order.chunks(2).filter(|c| c.len() == 2).take(2).map(|c| (c[0], c[1])).collect();
        prop_assume!(!pairs.is_empty());

        let unmerged = Catalog::build(&model, &MergePlan::none(), seed).unwrap();
        let merged = Catalog::build(&model, &MergePlan::pairs(&pairs), seed).unwrap();
        let indices: Vec<u64> =
            model.tables.iter().enumerate().map(|(i, t)| (seed.wrapping_add(i as u64 * 7)) % t.rows).collect();
        prop_assert_eq!(
            unmerged.gather_vec(&indices).unwrap(),
            merged.gather_vec(&indices).unwrap()
        );
        // And the merged catalog needs strictly fewer physical reads.
        prop_assert!(
            merged.resolve(&indices).unwrap().len()
                < unmerged.resolve(&indices).unwrap().len()
        );
    }

    /// Every plan the allocator produces validates: all tables placed once,
    /// no bank over capacity.
    #[test]
    fn allocator_plans_always_validate(model in small_model(), seed in any::<u64>()) {
        let config = MemoryConfig::u280();
        let plan = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        plan.validate(&model, &config).unwrap();
        // Determinism: same inputs, same plan.
        let again = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        prop_assert_eq!(&plan, &again);
        let _ = seed;
    }

    /// The heuristic never returns something worse than the unmerged
    /// baseline, and its best plan always validates.
    #[test]
    fn heuristic_never_regresses(model in small_model()) {
        let config = MemoryConfig::u280();
        let base = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )
        .unwrap();
        let best =
            heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default())
                .unwrap();
        prop_assert!(best.cost.lookup_latency <= base.cost.lookup_latency);
        best.plan.validate(&model, &config).unwrap();
        // Storage only grows when latency strictly improves.
        if best.cost.storage_bytes > base.cost.storage_bytes {
            prop_assert!(best.cost.lookup_latency < base.cost.lookup_latency);
        }
    }

    /// Plan cost is monotone in lookups-per-table.
    #[test]
    fn cost_monotone_in_lookups(model in small_model()) {
        let config = MemoryConfig::u280();
        let plan = allocate(&model, &MergePlan::none(), &config, Precision::F32).unwrap();
        let mut prev = SimTime::ZERO;
        for lookups in 1..=4u32 {
            let cost = plan.cost(&config, lookups);
            prop_assert!(cost.lookup_latency >= prev);
            prev = cost.lookup_latency;
        }
    }

    /// SimTime arithmetic: addition is commutative/associative and display
    /// never panics.
    #[test]
    fn simtime_algebra(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let (x, y, z) = (SimTime::from_ps(a), SimTime::from_ps(b), SimTime::from_ps(c));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!(x.saturating_sub(x), SimTime::ZERO);
        prop_assert!(x.max(y) >= x.min(y));
        let _ = format!("{x}");
    }

    /// Q-format quantization: round-trip error bounded by half an ULP and
    /// ordering preserved for in-range values.
    #[test]
    fn qformat_bounds(v in -3.9f32..3.9, w in -3.9f32..3.9) {
        use microrec_dnn::{Q16, Q32};
        prop_assert!(Q16::quantization_error(v) <= 0.5 / 8192.0 + 1e-6);
        prop_assert!(Q32::quantization_error(v) <= 0.5 / 8_388_608.0 + 1e-6);
        if v + 1.0 / 4096.0 < w {
            prop_assert!(Q16::from_f32(v) < Q16::from_f32(w));
        }
        // Multiplication semantics: |q(v)*q(w) - v*w| small when the
        // product is in range.
        let exact = f64::from(v) * f64::from(w);
        if exact.abs() < 3.9 {
            let q = (Q16::from_f32(v) * Q16::from_f32(w)).to_f32();
            prop_assert!((f64::from(q) - exact).abs() < 2e-3, "{q} vs {exact}");
        }
    }

    /// Procedural tables are pure functions of (seed, row, col).
    #[test]
    fn procedural_tables_are_pure(seed in any::<u64>(), rows in 1u64..1000, dim in 1u32..16) {
        let spec = TableSpec::new("t", rows, dim);
        let a = EmbeddingTable::procedural(spec.clone(), seed);
        let b = EmbeddingTable::procedural(spec, seed);
        let r = seed % rows;
        prop_assert_eq!(a.row(r).unwrap(), b.row(r).unwrap());
        for v in a.row(r).unwrap() {
            prop_assert!((-1.0..1.0).contains(&v));
        }
    }
}
