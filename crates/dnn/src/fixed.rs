//! Q-format fixed-point arithmetic.
//!
//! The paper's accelerator computes in 16-bit and 32-bit fixed point (its
//! "fp16"/"fp32" configurations, Table 2). This module provides the two
//! formats as saturating newtypes:
//!
//! * [`Q16`] — Q2.13: 1 sign bit, 2 integer bits, 13 fraction bits
//!   (range ±4, resolution ≈ 1.2e-4) — sized for a network whose
//!   activations and logits live in [-4, 4], as the paper's CTR models do.
//! * [`Q32`] — Q8.23: 1 sign bit, 8 integer bits, 23 fraction bits
//!   (range ±256, resolution ≈ 1.2e-7).
//!
//! Both saturate on overflow (the behaviour of a DSP datapath with
//! saturation logic) and round to nearest on conversion from `f32`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

macro_rules! define_fixed {
    (
        $(#[$doc:meta])*
        $name:ident, $repr:ty, $wide:ty, $frac:expr
    ) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name($repr);

        impl $name {
            /// Number of fraction bits.
            pub const FRAC_BITS: u32 = $frac;
            /// Smallest positive increment.
            pub const EPSILON: $name = $name(1);
            /// Largest representable value.
            pub const MAX: $name = $name(<$repr>::MAX);
            /// Smallest (most negative) representable value.
            pub const MIN: $name = $name(<$repr>::MIN);
            /// Zero.
            pub const ZERO: $name = $name(0);
            /// One.
            pub const ONE: $name = $name(1 << $frac);

            /// Creates a value from its raw two's-complement representation.
            #[must_use]
            pub const fn from_raw(raw: $repr) -> Self {
                $name(raw)
            }

            /// The raw two's-complement representation.
            #[must_use]
            pub const fn to_raw(self) -> $repr {
                self.0
            }

            /// Converts from `f32`, rounding to nearest and saturating.
            #[must_use]
            pub fn from_f32(v: f32) -> Self {
                if v.is_nan() {
                    return $name(0);
                }
                let scaled = (v as f64 * f64::from((1u32 << $frac) as f64)).round();
                if scaled >= <$repr>::MAX as f64 {
                    $name(<$repr>::MAX)
                } else if scaled <= <$repr>::MIN as f64 {
                    $name(<$repr>::MIN)
                } else {
                    $name(scaled as $repr)
                }
            }

            /// Converts to `f32` (exact: the mantissa always fits).
            #[must_use]
            pub fn to_f32(self) -> f32 {
                self.0 as f32 / (1u32 << $frac) as f32
            }

            /// Saturating addition.
            #[must_use]
            pub fn saturating_add(self, rhs: Self) -> Self {
                $name(self.0.saturating_add(rhs.0))
            }

            /// Saturating multiplication (full-width intermediate, then
            /// truncation of the extra fraction bits).
            #[must_use]
            pub fn saturating_mul(self, rhs: Self) -> Self {
                let wide = (self.0 as $wide) * (rhs.0 as $wide);
                let shifted = wide >> $frac;
                if shifted > <$repr>::MAX as $wide {
                    $name(<$repr>::MAX)
                } else if shifted < <$repr>::MIN as $wide {
                    $name(<$repr>::MIN)
                } else {
                    $name(shifted as $repr)
                }
            }

            /// Clamps negative values to zero (ReLU).
            #[must_use]
            pub fn relu(self) -> Self {
                if self.0 < 0 {
                    $name(0)
                } else {
                    self
                }
            }

            /// Absolute quantization error of representing `v`.
            #[must_use]
            pub fn quantization_error(v: f32) -> f32 {
                (Self::from_f32(v).to_f32() - v).abs()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                self.saturating_add(rhs)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0.saturating_sub(rhs.0))
            }
        }

        impl Mul for $name {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                self.saturating_mul(rhs)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(self.0.saturating_neg())
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, Add::add)
            }
        }

        impl From<$name> for f32 {
            fn from(v: $name) -> f32 {
                v.to_f32()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_f32())
            }
        }
    };
}

define_fixed!(
    /// 16-bit Q2.13 fixed point — the accelerator's "fp16" configuration.
    Q16, i16, i32, 13
);
define_fixed!(
    /// 32-bit Q8.23 fixed point — the accelerator's "fp32" configuration.
    Q32, i32, i64, 23
);

/// A numeric type the quantized datapath can compute in.
///
/// Implemented by [`Q16`], [`Q32`], and `f32` (the reference path), letting
/// the same layer code run at every precision the paper evaluates.
pub trait FixedNum:
    Copy + Add<Output = Self> + Mul<Output = Self> + Sum + PartialOrd + fmt::Debug + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Converts from `f32` (rounding/saturating as the format requires).
    fn from_f32(v: f32) -> Self;
    /// Converts to `f32`.
    fn to_f32(self) -> f32;
    /// ReLU.
    fn relu(self) -> Self;
}

impl FixedNum for Q16 {
    const ZERO: Self = Q16::ZERO;
    fn from_f32(v: f32) -> Self {
        Q16::from_f32(v)
    }
    fn to_f32(self) -> f32 {
        Q16::to_f32(self)
    }
    fn relu(self) -> Self {
        Q16::relu(self)
    }
}

impl FixedNum for Q32 {
    const ZERO: Self = Q32::ZERO;
    fn from_f32(v: f32) -> Self {
        Q32::from_f32(v)
    }
    fn to_f32(self) -> f32 {
        Q32::to_f32(self)
    }
    fn relu(self) -> Self {
        Q32::relu(self)
    }
}

impl FixedNum for f32 {
    const ZERO: Self = 0.0;
    fn from_f32(v: f32) -> Self {
        v
    }
    fn to_f32(self) -> f32 {
        self
    }
    fn relu(self) -> Self {
        self.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q16_round_trips_within_half_ulp() {
        for v in [-1.0f32, -0.5, 0.0, 0.25, 0.123, 0.9961, 1.0, 3.5] {
            let err = Q16::quantization_error(v);
            assert!(err <= 0.5 / 8192.0 + 1e-9, "Q16 error {err} for {v}");
        }
    }

    #[test]
    fn q32_round_trips_within_half_ulp() {
        for v in [-1.0f32, 0.0, 0.123_456, 100.5, -250.0] {
            let err = Q32::quantization_error(v);
            assert!(err <= 0.5 / 8_388_608.0 + 1e-5, "Q32 error {err} for {v}");
        }
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Q16::ONE.to_f32(), 1.0);
        assert_eq!(Q32::ONE.to_f32(), 1.0);
        assert_eq!(Q16::ZERO.to_f32(), 0.0);
        assert!((Q16::EPSILON.to_f32() - 1.0 / 8_192.0).abs() < 1e-9);
        assert!((Q32::EPSILON.to_f32() - 1.0 / 8_388_608.0).abs() < 1e-12);
    }

    #[test]
    fn multiply_matches_f32_for_small_values() {
        let a = Q32::from_f32(0.5);
        let b = Q32::from_f32(-0.25);
        assert!((a * b).to_f32() + 0.125 < 1e-4);
        let a = Q16::from_f32(1.5);
        let b = Q16::from_f32(2.0);
        assert!(((a * b).to_f32() - 3.0).abs() < 0.01);
    }

    #[test]
    fn addition_saturates_instead_of_wrapping() {
        let big = Q16::from_f32(3.9);
        let sum = big + big;
        assert_eq!(sum, Q16::MAX);
        let neg = Q16::from_f32(-3.9);
        assert_eq!(neg + neg, Q16::MIN);
    }

    #[test]
    fn multiplication_saturates() {
        let big = Q16::from_f32(3.0);
        assert_eq!(big * big, Q16::MAX);
        let big = Q32::from_f32(200.0);
        assert_eq!(big * big, Q32::MAX);
        assert_eq!(big * (-big), Q32::MIN);
    }

    #[test]
    fn from_f32_saturates_and_handles_nan() {
        assert_eq!(Q16::from_f32(1e9), Q16::MAX);
        assert_eq!(Q16::from_f32(-1e9), Q16::MIN);
        assert_eq!(Q16::from_f32(f32::NAN), Q16::ZERO);
        assert_eq!(Q32::from_f32(f32::INFINITY), Q32::MAX);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Q16::from_f32(-3.0).relu(), Q16::ZERO);
        assert_eq!(Q16::from_f32(3.0).relu(), Q16::from_f32(3.0));
        assert_eq!(FixedNum::relu(-2.5f32), 0.0);
    }

    #[test]
    fn sum_accumulates() {
        let total: Q32 = (0..10).map(|_| Q32::from_f32(0.1)).sum();
        assert!((total.to_f32() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn display_and_conversion_traits() {
        assert_eq!(Q16::from_f32(1.5).to_string(), "1.5");
        let f: f32 = Q32::from_f32(2.25).into();
        assert_eq!(f, 2.25);
    }

    #[test]
    fn neg_behaves() {
        assert_eq!((-Q16::ONE).to_f32(), -1.0);
        assert_eq!(-Q16::MIN, Q16::MAX, "negating MIN saturates to MAX");
    }

    #[test]
    fn q16_is_coarser_than_q32() {
        let v = 0.123_456_7f32;
        assert!(Q16::quantization_error(v) > Q32::quantization_error(v));
    }
}
