//! Property-based numeric tests for the DNN substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use microrec_dnn::{
    gemm_blocked, gemm_naive, Activation, DenseLayer, Matrix, Mlp, Q16, Q32, QuantizedMlp,
};

proptest! {
    /// Blocked GEMM equals the naive kernel on random shapes and values.
    #[test]
    fn blocked_equals_naive(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in any::<u32>(),
    ) {
        let f = |r: usize, c: usize, salt: usize| {
            let x = (r * 31 + c * 17 + salt + seed as usize) as f32;
            (x * 0.01).sin() * 0.5
        };
        let a = Matrix::from_fn(m, k, |r, c| f(r, c, 0));
        let b = Matrix::from_fn(k, n, |r, c| f(r, c, 1000));
        let c1 = gemm_naive(&a, &b).unwrap();
        let c2 = gemm_blocked(&a, &b).unwrap();
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4 * k as f32);
        }
    }

    /// Q-format multiply error is bounded by format resolution for
    /// in-range operands.
    #[test]
    fn fixed_mul_error_bounds(a in -1.9f32..1.9, b in -1.9f32..1.9) {
        let exact = f64::from(a) * f64::from(b);
        let q16 = (Q16::from_f32(a) * Q16::from_f32(b)).to_f32();
        prop_assert!((f64::from(q16) - exact).abs() < 8.0 / 8192.0);
        let q32 = (Q32::from_f32(a) * Q32::from_f32(b)).to_f32();
        prop_assert!((f64::from(q32) - exact).abs() < 8.0 / 8_388_608.0);
    }

    /// Fixed-point addition is exact (no rounding) while in range.
    #[test]
    fn fixed_add_is_exact(araw in -8000i16..8000, braw in -8000i16..8000) {
        let a = Q16::from_raw(araw);
        let b = Q16::from_raw(braw);
        prop_assert_eq!((a + b).to_raw(), araw.saturating_add(braw));
    }

    /// Dense-layer forward is linear: f(x+y) = f(x) + f(y) for the
    /// identity activation with zero bias.
    #[test]
    fn dense_layer_linearity(x in vec(-0.5f32..0.5, 8), y in vec(-0.5f32..0.5, 8)) {
        let w = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.1).cos() * 0.3);
        let layer = DenseLayer::new(w, vec![0.0; 4], Activation::Identity).unwrap();
        let fx = layer.forward_vec(&x).unwrap();
        let fy = layer.forward_vec(&y).unwrap();
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fxy = layer.forward_vec(&xy).unwrap();
        for i in 0..4 {
            prop_assert!((fxy[i] - fx[i] - fy[i]).abs() < 1e-4);
        }
    }

    /// Quantized inference error decreases (weakly) with bit width on
    /// random inputs.
    #[test]
    fn quantization_error_ordering(seed in any::<u64>()) {
        let mlp = Mlp::top_mlp(16, &[32, 8], seed % 1000).unwrap();
        let cal: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..16).map(|j| (((i * 16 + j) as f32) * 0.29).sin() * 0.7).collect())
            .collect();
        let q6 = QuantizedMlp::quantize(&mlp, 6, &cal).unwrap();
        let q16 = QuantizedMlp::quantize(&mlp, 16, &cal).unwrap();
        let sample = &cal[0];
        let reference = mlp.predict_ctr(sample).unwrap();
        let e6 = (q6.predict_ctr(sample).unwrap() - reference).abs();
        let e16 = (q16.predict_ctr(sample).unwrap() - reference).abs();
        prop_assert!(e16 <= e6 + 1e-4, "e16 {e16} vs e6 {e6}");
    }

    /// CTR predictions are always probabilities, at every precision.
    #[test]
    fn ctr_is_probability(seed in any::<u64>(), scale in 0.0f32..2.0) {
        let mlp = Mlp::top_mlp(8, &[16], seed % 512).unwrap();
        let x: Vec<f32> = (0..8).map(|i| ((i as f32) * 0.9).sin() * scale).collect();
        for ctr in [
            mlp.predict_ctr(&x).unwrap(),
            mlp.predict_ctr_quantized::<Q16>(&x).unwrap(),
            mlp.predict_ctr_quantized::<Q32>(&x).unwrap(),
        ] {
            prop_assert!((0.0..=1.0).contains(&ctr), "ctr {ctr}");
        }
    }
}
