//! # microrec-dnn
//!
//! Numeric substrate for the MicroRec reproduction (Jiang et al., MLSys
//! 2021): a row-major matrix type, naive/blocked GEMM kernels, dense layers
//! with ReLU/sigmoid activations, the paper's top-MLP head, and the 16/32-
//! bit Q-format fixed-point arithmetic the FPGA datapath computes in.
//!
//! ## Example
//!
//! ```
//! use microrec_dnn::{Mlp, Q16};
//!
//! let mlp = Mlp::top_mlp(64, &[128, 32], 7)?;
//! let features = vec![0.05f32; 64];
//! let reference = mlp.predict_ctr(&features)?;
//! let fixed16 = mlp.predict_ctr_quantized::<Q16>(&features)?;
//! assert!((reference - fixed16).abs() < 0.1);
//! # Ok::<(), microrec_dnn::DnnError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod fixed;
mod gather;
mod gemm;
mod interaction;
mod layer;
mod mlp;
mod packed;
mod quant;
mod scratch;
mod tensor;

pub use error::DnnError;
pub use fixed::{FixedNum, Q16, Q32};
pub use gather::{
    f16_decode, f16_decode_le_slice, f16_decode_slice, f16_decode_slice_scalar, f16_encode,
    f16_encode_slice, f32_decode_le_slice, i8_dequant_le_slice, i8_dequant_slice,
    i8_dequant_slice_scalar, i8_quant_slice,
};
pub use gemm::{
    dot, dot_quantizing, dot_scalar, gemm_auto, gemm_blocked, gemm_flops, gemm_naive, gemm_packed,
    gemv, PackedB,
};
pub use interaction::{concat, elementwise_mul, weighted_sum, FeatureInteraction};
pub use layer::{Activation, DenseLayer};
pub use mlp::Mlp;
pub use packed::{forward_layers, PackedLayer, PackedMlp};
pub use quant::{QuantScale, QuantizedMlp};
pub use scratch::ScratchArena;
pub use tensor::Matrix;
