//! End-to-end tests for the staged dataflow pipeline: bit-identity with
//! the monolithic predict path across every precision × arena-format ×
//! cache combination (including replicated lane topologies), clean
//! shutdown drain through the serving runtime, auto-mode calibration,
//! per-lane cache-counter merging, and stage-failure containment.

use microrec_core::{
    ExecutionMode, MicroRec, MicroRecBuilder, PipelineConfig, PipelineExecutor, PipelinePlan,
    RuntimeConfig, ServingRuntime,
};
use microrec_embedding::{ModelSpec, Precision, RowFormat, TableSpec};

fn small_model() -> ModelSpec {
    ModelSpec::new(
        "small",
        (0..6).map(|i| TableSpec::new(format!("t{i}"), 2000, 8)).collect(),
        vec![64, 32],
        4,
    )
}

fn small_builder(precision: Precision) -> MicroRecBuilder {
    MicroRec::builder(small_model()).precision(precision).seed(29)
}

fn small_queries(n: usize) -> Vec<Vec<u64>> {
    (0..n).map(|i| (0..24).map(|j| ((i * 7919 + j * 104_729) % 2000) as u64).collect()).collect()
}

/// A storage/caching variant applied to a builder.
type Variant = (&'static str, fn(MicroRecBuilder) -> MicroRecBuilder);

/// Every storage/caching variant of the engine.
fn variants() -> Vec<Variant> {
    vec![
        ("legacy tables", |b| b),
        ("f32 arena", |b| b.embedding_arena(RowFormat::F32)),
        ("f16 arena", |b| b.embedding_arena(RowFormat::F16)),
        ("i8 arena", |b| b.embedding_arena(RowFormat::I8)),
        ("f32 arena + cache", |b| b.embedding_arena(RowFormat::F32).hot_row_cache(128)),
        ("f16 arena + cache", |b| b.embedding_arena(RowFormat::F16).hot_row_cache(128)),
        ("i8 arena + cache", |b| b.embedding_arena(RowFormat::I8).hot_row_cache(128)),
    ]
}

#[test]
fn pipelined_is_bit_identical_to_monolithic_everywhere() {
    let queries = small_queries(40);
    for precision in [Precision::F32, Precision::Fixed16, Precision::Fixed32] {
        for (label, configure) in variants() {
            let mut mono = configure(small_builder(precision)).build().unwrap();
            let pipe_engine = configure(small_builder(precision)).build().unwrap();
            let mut exec = PipelineExecutor::new(pipe_engine, PipelineConfig::default()).unwrap();
            for (i, q) in queries.iter().enumerate() {
                let want = mono.predict(q).unwrap();
                let got = exec.predict(q).unwrap();
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{precision:?} / {label}: query {i} diverged"
                );
            }
        }
    }
}

#[test]
fn pipelined_batch_matches_monolithic_batch() {
    let queries = small_queries(64);
    for precision in [Precision::F32, Precision::Fixed16, Precision::Fixed32] {
        let mut mono = small_builder(precision).build().unwrap();
        let pipe_engine = small_builder(precision).build().unwrap();
        let mut exec = PipelineExecutor::new(pipe_engine, PipelineConfig::default()).unwrap();
        let want = mono.predict_batch(&queries).unwrap();
        let got = exec.predict_batch(&queries).unwrap();
        assert_eq!(want.len(), got.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{precision:?}: batch item {i} diverged");
        }
    }
}

#[test]
fn pipelined_runtime_drains_cleanly_and_reports_stages() {
    let queries = small_queries(300);
    let mut mono = small_builder(Precision::Fixed16).build().unwrap();
    let expected: Vec<f32> = queries.iter().map(|q| mono.predict(q).unwrap()).collect();

    let config = RuntimeConfig {
        workers: 1,
        max_batch: 16,
        max_wait_us: 2_000,
        execution: ExecutionMode::Pipelined,
        ..RuntimeConfig::default()
    };
    let mut runtime = ServingRuntime::start(small_builder(Precision::Fixed16), config).unwrap();
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    let snapshot = runtime.shutdown();

    assert_eq!(snapshot.admitted, 300);
    assert_eq!(snapshot.completed, 300);
    assert_eq!(snapshot.failed, 0);
    for (p, e) in pending.into_iter().zip(&expected) {
        let got = p.wait().expect("every admitted request completes");
        assert_eq!(got.to_bits(), e.to_bits(), "pipelined runtime diverged from monolithic");
    }

    // The snapshot surfaces the per-stage dataflow counters: 3 MLP layers
    // (2 hidden + output head) → 5 stages, each having seen all 300 jobs.
    let stages = snapshot.stages.expect("pipelined runtime publishes stage counters");
    assert_eq!(stages.len(), 5);
    assert_eq!(stages[0].name, "lookup");
    assert_eq!(stages.last().unwrap().name, "sink");
    for stage in &stages {
        assert_eq!(stage.items, 300, "stage {} lost jobs", stage.name);
        assert!(stage.mean_occupancy() >= 1.0, "occupancy counts the popped job itself");
    }
}

#[test]
fn pipelined_runtime_publishes_cache_counters_at_drain() {
    let config = RuntimeConfig {
        workers: 1,
        max_batch: 8,
        execution: ExecutionMode::Pipelined,
        ..RuntimeConfig::default()
    };
    let builder =
        small_builder(Precision::Fixed16).embedding_arena(RowFormat::F16).hot_row_cache(256);
    let mut runtime = ServingRuntime::start(builder, config).unwrap();
    // Repeat the same few queries so the hot-row cache must hit.
    let queries = small_queries(8);
    let pending: Vec<_> = (0..10)
        .flat_map(|_| queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")))
        .collect();
    for p in pending {
        p.wait().expect("predict");
    }
    runtime.shutdown();
    let stats = runtime.lookup_stats().expect("cache-enabled runtime exposes lookup stats");
    assert_eq!(stats.format, "f16");
    assert!(stats.hits > 0, "repeated queries must hit the cache");
    assert!(stats.bytes_from_memory > 0);
}

#[test]
fn malformed_queries_fail_alone_in_pipelined_runtime() {
    let config = RuntimeConfig {
        workers: 1,
        max_batch: 8,
        execution: ExecutionMode::Pipelined,
        ..RuntimeConfig::default()
    };
    let mut runtime = ServingRuntime::start(small_builder(Precision::Fixed16), config).unwrap();
    let queries = small_queries(16);
    let mut pending = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let mut q = q.clone();
        if i % 4 == 0 {
            // Out-of-range row index: correct arity (admitted), fails in
            // the lookup stage.
            q[0] = u64::MAX;
        }
        pending.push((i, runtime.submit(q).expect("arity is fine, so admission succeeds")));
    }
    let snapshot = runtime.shutdown();
    for (i, p) in pending {
        let result = p.wait();
        if i % 4 == 0 {
            assert!(result.is_err(), "query {i} carries an out-of-range row");
        } else {
            assert!(result.is_ok(), "query {i} is well-formed");
        }
    }
    assert_eq!(snapshot.failed, 4);
    assert_eq!(snapshot.completed, 12);
}

#[test]
fn poisoned_stage_fails_items_without_wedging() {
    let engine = small_builder(Precision::Fixed16).build().unwrap();
    let mut exec = PipelineExecutor::new(engine, PipelineConfig::default()).unwrap();
    let q = small_queries(1).remove(0);
    assert!(exec.predict(&q).is_ok());
    assert!(exec.is_healthy());

    // Poison the middle fc stage: the next job panics its thread. The
    // guard closes the stage's rings, the close cascades, and the predict
    // returns an error instead of hanging.
    exec.poison_stage(2);
    assert!(exec.predict(&q).is_err(), "job through a dead stage must fail");
    assert!(!exec.is_healthy(), "executor reports the poisoning");

    // Every later call fails fast, still without wedging.
    assert!(exec.predict(&q).is_err());
    assert!(exec.predict_batch(&[q.clone(), q]).is_err());
    assert!(exec.shutdown().is_some(), "lookup stage survived and returns its engine");
}

/// A lane topology for the 3-layer small model: `lanes` lookup lanes and
/// `lanes` lanes on the first fc stage, so the mesh fans out and back in
/// on both sides of a join.
fn replicated_plan(lanes: usize) -> PipelinePlan {
    let mut plan = PipelinePlan::per_layer(3, PipelineConfig::default().fifo_depth);
    plan.lookup_lanes = lanes;
    plan.fc[0].lanes = lanes;
    plan
}

#[test]
fn replicated_lanes_are_bit_identical_and_ordered_everywhere() {
    let queries = small_queries(30);
    for precision in [Precision::F32, Precision::Fixed16, Precision::Fixed32] {
        for (label, configure) in [
            ("no cache", (|b| b) as fn(MicroRecBuilder) -> MicroRecBuilder),
            ("f16 arena + cache", |b| b.embedding_arena(RowFormat::F16).hot_row_cache(128)),
        ] {
            let mut mono = configure(small_builder(precision)).build().unwrap();
            let want: Vec<f32> = queries.iter().map(|q| mono.predict(q).unwrap()).collect();
            for lanes in [1usize, 2, 3] {
                let engines: Vec<MicroRec> = (0..lanes)
                    .map(|_| configure(small_builder(precision)).build().unwrap())
                    .collect();
                let mut exec =
                    PipelineExecutor::with_plan(engines, &replicated_plan(lanes)).unwrap();
                // predict_batch checks order restoration too: result i
                // must belong to query i even though lanes race.
                let got = exec.predict_batch(&queries).unwrap();
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{precision:?} / {label} / {lanes} lanes: query {i} diverged"
                    );
                }
                let engines = exec.shutdown_all();
                assert_eq!(engines.len(), lanes, "every lane engine comes back");
            }
        }
    }
}

#[test]
fn replicated_runtime_drains_cleanly_and_reports_lanes() {
    let queries = small_queries(300);
    let mut mono = small_builder(Precision::Fixed16).build().unwrap();
    let expected: Vec<f32> = queries.iter().map(|q| mono.predict(q).unwrap()).collect();

    let config = RuntimeConfig {
        workers: 1,
        max_batch: 16,
        max_wait_us: 2_000,
        execution: ExecutionMode::Replicated,
        ..RuntimeConfig::default()
    };
    let mut runtime = ServingRuntime::start(small_builder(Precision::Fixed16), config).unwrap();
    assert_eq!(runtime.resolved_execution(), ExecutionMode::Replicated);
    assert_eq!(runtime.plan().expect("replicated runtime has a plan").lookup_lanes, 2);
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    let snapshot = runtime.shutdown();

    assert_eq!(snapshot.completed, 300);
    assert_eq!(snapshot.failed, 0);
    for (p, e) in pending.into_iter().zip(&expected) {
        let got = p.wait().expect("every admitted request completes");
        assert_eq!(got.to_bits(), e.to_bits(), "replicated runtime diverged from monolithic");
    }

    let stages = snapshot.stages.expect("replicated runtime publishes stage counters");
    assert_eq!(stages[0].name, "lookup");
    assert_eq!(stages[0].lanes, 2, "lookup runs as two lanes");
    for stage in &stages {
        assert_eq!(stage.items, 300, "stage {} lost jobs across its lanes", stage.name);
    }
}

#[test]
fn auto_runtime_calibrates_routes_and_serves() {
    let queries = small_queries(100);
    let mut mono = small_builder(Precision::Fixed16).build().unwrap();
    let expected: Vec<f32> = queries.iter().map(|q| mono.predict(q).unwrap()).collect();

    let config = RuntimeConfig {
        workers: 1,
        max_batch: 16,
        execution: ExecutionMode::Auto,
        ..RuntimeConfig::default()
    };
    let mut runtime = ServingRuntime::start(small_builder(Precision::Fixed16), config).unwrap();
    let resolved = runtime.resolved_execution();
    assert_ne!(resolved, ExecutionMode::Auto, "auto resolves to a concrete mode at startup");
    let calibration = runtime.calibration().expect("auto keeps its cost model").clone();
    assert!(calibration.monolithic_us > 0.0);
    assert!(calibration.pipelined_us > 0.0);
    assert_eq!(calibration.layer_us.len(), 3, "one service time per MLP layer");

    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.completed, 100);
    for (p, e) in pending.into_iter().zip(&expected) {
        let got = p.wait().expect("predict");
        assert_eq!(got.to_bits(), e.to_bits(), "auto-routed runtime diverged from monolithic");
    }
}

#[test]
fn replicated_cache_counters_merge_without_double_counting() {
    // The same workload through a single-lane pipelined runtime and a
    // two-lane replicated one. Each lookup lane owns a private cache, so
    // hit/miss splits differ, but the merged totals must account for
    // every row lookup exactly once in both topologies.
    let queries = small_queries(20);
    let rows_per_query = 6 * 4; // tables x lookups_per_table
    let repeats = 5;
    let expected_lookups = (queries.len() * repeats * rows_per_query) as u64;

    let mut totals = Vec::new();
    for execution in [ExecutionMode::Pipelined, ExecutionMode::Replicated] {
        let config = RuntimeConfig { workers: 1, max_batch: 8, execution, ..Default::default() };
        let builder =
            small_builder(Precision::Fixed16).embedding_arena(RowFormat::F16).hot_row_cache(256);
        let mut runtime = ServingRuntime::start(builder, config).unwrap();
        let pending: Vec<_> = (0..repeats)
            .flat_map(|_| queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")))
            .collect();
        for p in pending {
            p.wait().expect("predict");
        }
        runtime.shutdown();
        let stats = runtime.lookup_stats().expect("cache-enabled runtime exposes lookup stats");
        assert!(stats.hits > 0, "{execution:?}: repeated queries must hit the cache");
        assert_eq!(
            stats.hits + stats.misses,
            expected_lookups,
            "{execution:?}: every lookup counted exactly once"
        );
        let per_table: u64 = stats.per_table_hits.iter().chain(&stats.per_table_misses).sum();
        assert_eq!(per_table, expected_lookups, "{execution:?}: per-table totals agree");
        totals.push(stats.hits + stats.misses);
    }
    assert_eq!(totals[0], totals[1], "lane count must not change the lookup total");
}

#[test]
fn replicated_poisoned_lane_fails_items_without_wedging() {
    let engines: Vec<MicroRec> =
        (0..2).map(|_| small_builder(Precision::Fixed16).build().unwrap()).collect();
    let mut exec = PipelineExecutor::with_plan(engines, &replicated_plan(2)).unwrap();
    let q = small_queries(1).remove(0);
    assert!(exec.predict(&q).is_ok());
    assert!(exec.is_healthy());

    // Poison the replicated fc stage: one of its lanes panics on the next
    // job. The lane guard closes that lane's rings, the close cascades
    // through the join, and predicts fail instead of hanging.
    exec.poison_stage(1);
    assert!(exec.predict(&q).is_err(), "job through a dead lane must fail");
    assert!(!exec.is_healthy(), "executor reports the poisoning");
    assert!(exec.predict(&q).is_err());
    assert!(exec.predict_batch(&[q.clone(), q]).is_err());
    // The lookup lanes survive the downstream fault and hand their
    // engines back.
    assert!(!exec.shutdown_all().is_empty(), "surviving lanes return their engines");
}

#[test]
fn shutdown_returns_engine_and_depth_one_fifo_works() {
    let engine = small_builder(Precision::Fixed32).build().unwrap();
    let mut mono = small_builder(Precision::Fixed32).build().unwrap();
    let mut exec = PipelineExecutor::new(engine, PipelineConfig { fifo_depth: 1 }).unwrap();
    let queries = small_queries(20);
    for q in &queries {
        let want = mono.predict(q).unwrap();
        let got = exec.predict(q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }
    let engine = exec.shutdown().expect("engine comes back after a clean drain");
    // 6 tables × 4 rounds × 20 queries of physical reads ran through it.
    assert_eq!(engine.memory().stats().total().reads, 6 * 4 * 20);
}
