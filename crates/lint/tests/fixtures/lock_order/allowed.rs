//! The same shape, with one edge of the cycle justified: dropping the
//! gamma→delta edge leaves the remaining graph acyclic.

impl Gauges {
    pub fn snapshot(&self) -> u32 {
        let c = lock_or_recover(&self.gamma);
        let d = lock_or_recover(&self.delta);
        *c + *d
    }

    pub fn reset(&self) -> u32 {
        let d = lock_or_recover(&self.delta);
        // lint: allow(lock-order) maintenance path; never runs concurrently with snapshot()
        let c = lock_or_recover(&self.gamma);
        *c + *d
    }
}
