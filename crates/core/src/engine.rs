//! The MicroRec inference engine — the paper's primary contribution,
//! assembled: Cartesian-merged tables placed across the hybrid memory by
//! Algorithm 1, an item-by-item pipelined accelerator, and a fixed-point
//! DNN datapath sharing weights with the `f32` reference.

use std::sync::Arc;

use microrec_accel::{estimate_usage, AccelConfig, Pipeline, ResourceUsage, U280_CAPACITY};
use microrec_dnn::{FixedNum, Mlp, PackedMlp, ScratchArena, Q16, Q32};
use microrec_embedding::{
    synthetic_dense_features, Catalog, EmbeddingArena, HotRowCache, ModelSpec, Precision,
    RowFormat, TierCounters, TieredBacking, TieredStore,
};
use microrec_memsim::{AddressedRead, HybridMemory, MemoryConfig, RowPolicy, SimTime};
use microrec_placement::{heuristic_search, HeuristicOptions, Plan, PlanCost};

use crate::epoch::{ArenaGeneration, GenerationCell};
use crate::error::MicroRecError;

/// Channel assignment induced by a placement plan: each logical table
/// inherits the dense channel index of the memory bank its physical table
/// was placed on (first-seen bank order). Shared by the initial build and
/// the online re-shard path, so a migration reproduces exactly the layout
/// a fresh build with the same plan would produce.
pub(crate) fn channel_assignment(catalog: &Catalog, plan: &Plan) -> Vec<usize> {
    let mut banks = Vec::new();
    (0..catalog.logical_tables().len())
        .map(|lidx| {
            let (pidx, _) = catalog.locate(lidx);
            let bank = plan.placed[pidx].banks[0];
            banks.iter().position(|&b| b == bank).unwrap_or_else(|| {
                banks.push(bank);
                banks.len() - 1
            })
        })
        .collect()
}

/// Builder for a [`MicroRec`] engine.
///
/// # Examples
///
/// ```
/// use microrec_core::MicroRec;
/// use microrec_embedding::{ModelSpec, Precision};
///
/// let mut engine = MicroRec::builder(ModelSpec::dlrm_rmc2(8, 4))
///     .precision(Precision::Fixed16)
///     .seed(7)
///     .build()?;
/// let query = vec![42u64; 8 * 4];
/// let ctr = engine.predict(&query)?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MicroRecBuilder {
    model: ModelSpec,
    memory: MemoryConfig,
    precision: Precision,
    storage_precision: Precision,
    seed: u64,
    options: HeuristicOptions,
    accel: Option<AccelConfig>,
    arena_format: Option<RowFormat>,
    arena_limit_bytes: u64,
    cache_rows: usize,
    cache_ways: usize,
    shared_arena: Option<Arc<EmbeddingArena>>,
    tiered_budget: Option<u64>,
    prefetch_workers: usize,
    shared_tiered: Option<Arc<TieredBacking>>,
    epoch: Option<Arc<GenerationCell>>,
}

impl MicroRecBuilder {
    /// Starts a builder for `model` with U280 memory, fixed-16 datapath
    /// precision, 32-bit embedding storage (the paper keeps "the same
    /// element data width of 32-bits" in memory for both precisions,
    /// Table 4), and default search options.
    #[must_use]
    pub fn new(model: ModelSpec) -> Self {
        MicroRecBuilder {
            model,
            memory: MemoryConfig::u280(),
            precision: Precision::Fixed16,
            storage_precision: Precision::F32,
            seed: 0x00AC_CE55,
            options: HeuristicOptions::default(),
            accel: None,
            arena_format: None,
            arena_limit_bytes: u64::MAX,
            cache_rows: 0,
            cache_ways: 8,
            shared_arena: None,
            tiered_budget: None,
            prefetch_workers: 2,
            shared_tiered: None,
            epoch: None,
        }
    }

    /// Sets the memory platform.
    #[must_use]
    pub fn memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Sets the datapath precision.
    #[must_use]
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the embedding storage precision (default 32-bit, matching the
    /// paper's memory layout for both datapath precisions).
    #[must_use]
    pub fn storage_precision(mut self, precision: Precision) -> Self {
        self.storage_precision = precision;
        self
    }

    /// Sets the RNG seed for table contents and weights.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets placement-search options (e.g. disabling Cartesian merging for
    /// the HBM-only ablation).
    #[must_use]
    pub fn search_options(mut self, options: HeuristicOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the accelerator configuration (PE counts / clock).
    #[must_use]
    pub fn accel_config(mut self, accel: AccelConfig) -> Self {
        self.accel = Some(accel);
        self
    }

    /// Materializes the logical tables into a contiguous, 64-byte-aligned
    /// [`EmbeddingArena`] (one buffer per memory channel) in the given row
    /// format, replacing procedural per-element hashing on the functional
    /// gather path. `RowFormat::F32` is bit-identical to the legacy path;
    /// `F16`/`I8` trade 2–4× fewer row bytes for bounded quantization
    /// error.
    #[must_use]
    pub fn embedding_arena(mut self, format: RowFormat) -> Self {
        self.arena_format = Some(format);
        self
    }

    /// Caps how many bytes [`MicroRecBuilder::embedding_arena`] may
    /// materialize (default: unlimited).
    #[must_use]
    pub fn arena_limit_bytes(mut self, limit: u64) -> Self {
        self.arena_limit_bytes = limit;
        self
    }

    /// Fronts the gather path with a Zipf-aware [`HotRowCache`] holding up
    /// to `rows` dequantized rows (0 disables the cache, the default).
    /// Cache-on output is bit-identical to cache-off.
    #[must_use]
    pub fn hot_row_cache(mut self, rows: usize) -> Self {
        self.cache_rows = rows;
        self
    }

    /// Sets the cache's set associativity (default 8).
    #[must_use]
    pub fn cache_ways(mut self, ways: usize) -> Self {
        self.cache_ways = ways.max(1);
        self
    }

    /// Uses an existing read-only arena instead of materializing a new one
    /// per engine. Replicas built from clones of this builder then share
    /// one arena allocation (see [`crate::EnginePool::from_builder`]).
    #[must_use]
    pub fn shared_arena(mut self, arena: Arc<EmbeddingArena>) -> Self {
        self.arena_format = Some(arena.format());
        self.shared_arena = Some(arena);
        self
    }

    /// Serves embeddings through the three-tier parameter store instead of
    /// a single all-resident arena: whole tables are admitted to a
    /// budget-capped resident [`EmbeddingArena`] (smallest first — the
    /// greedy optimum for once-per-round table traffic) and the rest are
    /// written to a file-backed cold tier read via positioned `pread`,
    /// with misses overlapped by an async prefetcher. Output is
    /// bit-identical to [`MicroRecBuilder::embedding_arena`] with the same
    /// `format` at any budget.
    #[must_use]
    pub fn tiered_storage(mut self, budget_bytes: u64, format: RowFormat) -> Self {
        self.tiered_budget = Some(budget_bytes);
        self.arena_format = Some(format);
        self
    }

    /// Number of async cold-tier prefetch threads each engine spawns on
    /// its first cold miss (default 2; 0 reads cold rows synchronously).
    #[must_use]
    pub fn prefetch_workers(mut self, workers: usize) -> Self {
        self.prefetch_workers = workers;
        self
    }

    /// Uses an existing tiered backing (resident arena + cold store)
    /// instead of materializing a new one per engine, the tiered twin of
    /// [`MicroRecBuilder::shared_arena`]: replica engines share one
    /// resident allocation and one cold file.
    #[must_use]
    pub fn shared_tiered_backing(mut self, backing: Arc<TieredBacking>) -> Self {
        self.arena_format = Some(backing.format());
        self.tiered_budget = Some(backing.budget_bytes());
        self.shared_tiered = Some(backing);
        self
    }

    /// Attaches an epoch [`GenerationCell`]: every engine built from this
    /// builder polls the cell at batch boundaries (top of each gather) and
    /// adopts newly published arena generations — the seam that lets an
    /// online re-shard reach every execution mode (monolithic, pipelined,
    /// replicated pool, routed) without any of them re-plumbing.
    #[must_use]
    pub fn epoch_cell(mut self, cell: Arc<GenerationCell>) -> Self {
        self.epoch = Some(cell);
        self
    }

    /// The shared all-resident arena handle, when prepared.
    pub(crate) fn shared_arena_handle(&self) -> Option<&Arc<EmbeddingArena>> {
        self.shared_arena.as_ref()
    }

    /// The shared tiered backing handle, when prepared.
    pub(crate) fn shared_tiered_handle(&self) -> Option<&Arc<TieredBacking>> {
        self.shared_tiered.as_ref()
    }

    /// The memory platform engines will be placed on.
    pub(crate) fn memory_config(&self) -> &MemoryConfig {
        &self.memory
    }

    /// The embedding storage precision plans are sized for.
    pub(crate) fn stored_precision(&self) -> Precision {
        self.storage_precision
    }

    /// The placement-search options.
    pub(crate) fn heuristic_options(&self) -> &HeuristicOptions {
        &self.options
    }

    /// Whether this builder serves through the tiered parameter store.
    #[must_use]
    pub fn is_tiered(&self) -> bool {
        self.tiered_budget.is_some() || self.shared_tiered.is_some()
    }

    /// The configured resident byte budget, when tiered.
    #[must_use]
    pub fn tiered_budget_bytes(&self) -> Option<u64> {
        self.tiered_budget
    }

    /// Builds this configuration's arena once and installs it as the
    /// shared arena, so every subsequent [`MicroRecBuilder::build`] (on
    /// this builder or its clones) reuses the same allocation. No-op when
    /// no arena format is configured or a shared arena is already set.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the placement search or arena
    /// materialization fails.
    pub fn prepare_shared_arena(&mut self) -> Result<(), MicroRecError> {
        if self.tiered_budget.is_some() {
            // Tiered twin: build once, share the backing (resident arena +
            // cold store) across every engine built from this builder.
            if self.shared_tiered.is_none() {
                let engine = self.clone().build()?;
                self.shared_tiered = engine.tiered_store().map(|t| Arc::clone(t.backing()));
            }
            return Ok(());
        }
        if self.arena_format.is_none() || self.shared_arena.is_some() {
            return Ok(());
        }
        let engine = self.clone().build()?;
        self.shared_arena = engine.arena().cloned();
        Ok(())
    }

    /// The model this builder targets.
    #[must_use]
    pub fn model_spec(&self) -> &ModelSpec {
        &self.model
    }

    /// The datapath precision engines will be built with.
    #[must_use]
    pub fn datapath_precision(&self) -> Precision {
        self.precision
    }

    /// Hot-row cache capacity each built engine will get (0 = disabled).
    #[must_use]
    pub fn cache_rows(&self) -> usize {
        self.cache_rows
    }

    /// The arena row format the builder will materialize, if configured.
    #[must_use]
    pub fn arena_row_format(&self) -> Option<RowFormat> {
        self.arena_format
    }

    /// Runs the placement search and assembles the engine.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the model is inconsistent, cannot be
    /// placed, or the accelerator configuration does not fit it.
    pub fn build(self) -> Result<MicroRec, MicroRecError> {
        self.model.validate()?;
        let outcome =
            heuristic_search(&self.model, &self.memory, self.storage_precision, &self.options)?;
        let plan = outcome.plan;
        let cost = outcome.cost;

        let mut memory = HybridMemory::new(self.memory);
        plan.apply(&mut memory)?;
        // Byte offset of every (table, replica) region, for addressed reads.
        let mut region_offsets = Vec::with_capacity(plan.placed.len());
        for table in &plan.placed {
            let mut offsets = Vec::with_capacity(table.banks.len());
            for (r, &bank) in table.banks.iter().enumerate() {
                let label = if table.banks.len() > 1 {
                    format!("{}#r{r}", table.spec.name)
                } else {
                    table.spec.name.clone()
                };
                offsets.push(memory.region_offset(bank, &label)?);
            }
            region_offsets.push(offsets);
        }

        let catalog = Catalog::build(&self.model, &plan.merge, self.seed)?;

        // Channel assignment: each logical table inherits the memory
        // channel (bank) its physical table was placed on.
        let compute_channels = |catalog: &Catalog| -> Vec<usize> { channel_assignment(catalog, &plan) };

        // Embedding fast path: a tiered parameter store, a shared or
        // freshly materialized all-resident arena, and an optional hot-row
        // cache in front of either.
        let mut arena: Option<Arc<EmbeddingArena>> = None;
        let mut tiered: Option<TieredStore> = None;
        if let Some(shared) = &self.shared_tiered {
            if !shared.matches(catalog.logical_tables()) {
                return Err(MicroRecError::Runtime(
                    "shared tiered backing does not match the model's tables".into(),
                ));
            }
            tiered = Some(TieredStore::new(Arc::clone(shared), self.prefetch_workers));
        } else if let Some(budget) = self.tiered_budget {
            let format = self.arena_format.unwrap_or(RowFormat::F32);
            let channel_of = compute_channels(&catalog);
            let backing =
                TieredBacking::build(catalog.logical_tables(), format, &channel_of, budget)?;
            tiered = Some(TieredStore::new(backing, self.prefetch_workers));
        } else {
            arena = match (&self.shared_arena, self.arena_format) {
                (Some(shared), _) => {
                    if !shared.matches(catalog.logical_tables()) {
                        return Err(MicroRecError::Runtime(
                            "shared embedding arena does not match the model's tables".into(),
                        ));
                    }
                    Some(Arc::clone(shared))
                }
                (None, Some(format)) => {
                    let channel_of = compute_channels(&catalog);
                    Some(Arc::new(EmbeddingArena::build(
                        catalog.logical_tables(),
                        format,
                        &channel_of,
                        self.arena_limit_bytes,
                    )?))
                }
                (None, None) => None,
            };
        }
        let cache = if self.cache_rows > 0 {
            let dims: Vec<u32> = catalog
                .logical_tables()
                .iter()
                .map(microrec_embedding::EmbeddingTable::dim)
                .collect();
            Some(HotRowCache::new(&dims, self.cache_rows, self.cache_ways))
        } else {
            None
        };
        // Per-table offsets into one round's concatenated feature slice,
        // plus the reusable miss list for the batched cache probe — both
        // sized once here so the gather path never allocates.
        let feature_offsets: Vec<usize> = catalog
            .logical_tables()
            .iter()
            .scan(0usize, |acc, t| {
                let offset = *acc;
                *acc += t.dim() as usize;
                Some(offset)
            })
            .collect();
        let miss_scratch = Vec::with_capacity(catalog.logical_tables().len());

        let mlp = Mlp::top_mlp(self.model.feature_len(), &self.model.hidden, self.seed ^ 0x5EED)?;
        let bottom = if self.model.has_bottom_mlp() {
            Some(Mlp::bottom_mlp(
                self.model.dense_dim,
                &self.model.bottom_hidden,
                self.seed ^ 0x5EED,
            )?)
        } else {
            None
        };
        let accel = self.accel.unwrap_or_else(|| {
            if self.model.hidden.len() == 3 {
                AccelConfig::for_model(&self.model, self.precision)
            } else {
                AccelConfig::generic(&self.model, self.precision)
            }
        });
        let pipeline = Pipeline::build(&self.model, &accel, cost.lookup_latency)?;

        // Joining an epoch cell mid-stream: record the version current at
        // build time; the first gather adopts anything published later.
        let epoch_seen = self.epoch.as_ref().map_or(0, |cell| cell.version());

        Ok(MicroRec {
            epoch: self.epoch,
            epoch_seen,
            model: self.model,
            precision: self.precision,
            plan,
            cost,
            memory,
            region_offsets,
            catalog,
            arena,
            tiered,
            cache,
            feature_offsets,
            miss_scratch,
            mlp,
            bottom,
            accel,
            pipeline,
            batch_path: BatchPath::Unbuilt,
        })
    }
}

/// Lazily built batched fast path at one datapath precision: packed
/// weights (quantized once), a reusable scratch arena, and a staging
/// buffer for quantized inputs. After the first batch, steady-state
/// serving of same-or-smaller batches stops allocating in the DNN stage.
#[derive(Debug, Clone)]
struct FastPath<T> {
    packed: PackedMlp<T>,
    arena: ScratchArena<T>,
    staging: Vec<T>,
}

impl<T: FixedNum> FastPath<T> {
    fn build(mlp: &Mlp) -> Self {
        // lint: allow(transitive-hot-path-alloc) built once per precision swap; FastPath::run reuses it
        FastPath { packed: PackedMlp::pack(mlp), arena: ScratchArena::new(), staging: Vec::new() }
    }

    /// Quantizes the gathered feature vectors and runs the packed batched
    /// forward pass; returns de-quantized CTRs in query order.
    fn run(&mut self, features: &[Vec<f32>]) -> Result<Vec<f32>, microrec_dnn::DnnError> {
        let batch = features.len();
        self.staging.clear();
        for item in features {
            self.staging.extend(item.iter().map(|&v| T::from_f32(v)));
        }
        self.packed.warm(batch, &mut self.arena);
        let out = self.packed.forward_batch_into(&self.staging, batch, &mut self.arena)?;
        let stride = self.packed.output_dim().max(1);
        // lint: allow(hot-path-alloc) the collected Vec is the output handed to the caller
        Ok(out.chunks_exact(stride).map(|c| c[0].to_f32()).collect())
    }
}

/// The engine's cached fast path, keyed by the (fixed) datapath precision.
#[derive(Debug, Clone)]
enum BatchPath {
    Unbuilt,
    F32(FastPath<f32>),
    Q16(FastPath<Q16>),
    Q32(FastPath<Q32>),
}

/// The assembled MicroRec engine.
#[derive(Debug, Clone)]
pub struct MicroRec {
    model: ModelSpec,
    precision: Precision,
    plan: Plan,
    cost: PlanCost,
    memory: HybridMemory,
    region_offsets: Vec<Vec<u64>>,
    catalog: Catalog,
    arena: Option<Arc<EmbeddingArena>>,
    tiered: Option<TieredStore>,
    cache: Option<HotRowCache>,
    feature_offsets: Vec<usize>,
    miss_scratch: Vec<usize>,
    mlp: Mlp,
    bottom: Option<Mlp>,
    accel: AccelConfig,
    pipeline: Pipeline,
    batch_path: BatchPath,
    /// Epoch cell polled at batch boundaries (None = static layout).
    epoch: Option<Arc<GenerationCell>>,
    /// Last cell version this engine adopted (or decided not to).
    epoch_seen: u64,
}

impl MicroRec {
    /// Starts building an engine for `model`.
    #[must_use]
    pub fn builder(model: ModelSpec) -> MicroRecBuilder {
        MicroRecBuilder::new(model)
    }

    /// The served model.
    #[must_use]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The chosen placement plan.
    #[must_use]
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The plan's cost summary (lookup latency, rounds, storage).
    #[must_use]
    pub fn placement_cost(&self) -> &PlanCost {
        &self.cost
    }

    /// The table catalog (logical→physical mapping).
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The pipeline timing model.
    #[must_use]
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The accelerator configuration.
    #[must_use]
    pub fn accel_config(&self) -> &AccelConfig {
        &self.accel
    }

    /// Datapath precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The top MLP, for callers that stage its layers separately (the
    /// dataflow pipeline packs one layer per FC stage).
    pub(crate) fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The hybrid memory with the plan applied (capacity ledger + access
    /// statistics).
    #[must_use]
    pub fn memory(&self) -> &HybridMemory {
        &self.memory
    }

    /// The arena backing embedding reads, when one is configured.
    #[must_use]
    pub fn arena(&self) -> Option<&Arc<EmbeddingArena>> {
        self.arena.as_ref()
    }

    /// The hot-row cache fronting embedding reads, when enabled (its
    /// per-table hit/miss and bytes-moved counters accumulate across
    /// predictions until [`MicroRec::reset_stats`]).
    #[must_use]
    pub fn hot_row_cache(&self) -> Option<&HotRowCache> {
        self.cache.as_ref()
    }

    /// The tiered parameter store serving embedding reads, when this
    /// engine was built with [`MicroRecBuilder::tiered_storage`].
    #[must_use]
    pub fn tiered_store(&self) -> Option<&TieredStore> {
        self.tiered.as_ref()
    }

    /// Whether embeddings are served through the tiered parameter store.
    #[must_use]
    pub fn is_tiered(&self) -> bool {
        self.tiered.is_some()
    }

    /// Per-tier serving counters (zeros when the engine is not tiered).
    #[must_use]
    pub fn tier_counters(&self) -> TierCounters {
        self.tiered.as_ref().map(TieredStore::counters).unwrap_or_default()
    }

    /// The layout generation this engine currently serves (0 = as built).
    #[must_use]
    pub fn store_generation(&self) -> u64 {
        if let Some(tiered) = &self.tiered {
            tiered.backing().generation()
        } else if let Some(arena) = &self.arena {
            arena.generation()
        } else {
            0
        }
    }

    /// Polls the attached epoch cell (one atomic load when idle) and
    /// adopts a newly published generation. Called at the top of every
    /// gather — i.e. at batch boundaries — so one batch never mixes
    /// generations. A failed adoption (shape mismatch) records the version
    /// anyway: the engine keeps serving its current generation rather than
    /// re-failing on every batch.
    #[inline]
    fn poll_epoch(&mut self) {
        let Some(cell) = &self.epoch else { return };
        let version = cell.version();
        if version == self.epoch_seen {
            return;
        }
        let snapshot = cell.snapshot();
        self.epoch_seen = version;
        let _ = self.adopt_generation(&snapshot);
    }

    /// Replaces this engine's embedding store with `generation`'s handles,
    /// validating shapes against the catalog first. Swaps are like for
    /// like: a tiered engine adopts tiered backings, an arena engine
    /// adopts arenas. The hot-row cache is deliberately *not* flushed —
    /// rebuilt generations relocate encoded rows verbatim, so every cached
    /// dequantized row is still bit-correct.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError::Runtime`] if the generation's store kind
    /// or table shapes do not match this engine; the engine is unchanged.
    pub fn adopt_generation(&mut self, generation: &ArenaGeneration) -> Result<(), MicroRecError> {
        if let Some(store) = &self.tiered {
            let Some(backing) = &generation.backing else {
                return Err(MicroRecError::Runtime(
                    "tiered engine cannot adopt a generation without a tiered backing".into(),
                ));
            };
            if !backing.matches(self.catalog.logical_tables()) {
                return Err(MicroRecError::Runtime(
                    "published tiered backing does not match the engine's tables".into(),
                ));
            }
            if !Arc::ptr_eq(store.backing(), backing) {
                self.tiered = Some(store.with_backing(Arc::clone(backing)));
            }
            return Ok(());
        }
        if self.arena.is_some() {
            let Some(arena) = &generation.arena else {
                return Err(MicroRecError::Runtime(
                    "arena engine cannot adopt a generation without an arena".into(),
                ));
            };
            if !arena.matches(self.catalog.logical_tables()) {
                return Err(MicroRecError::Runtime(
                    "published arena does not match the engine's tables".into(),
                ));
            }
            self.arena = Some(Arc::clone(arena));
            return Ok(());
        }
        Err(MicroRecError::Runtime(
            "engine without an arena or tiered store cannot adopt generations".into(),
        ))
    }

    /// End-to-end single-item inference latency.
    #[must_use]
    pub fn latency(&self) -> SimTime {
        self.pipeline.latency()
    }

    /// Steady-state throughput in items per second.
    #[must_use]
    pub fn throughput_items_per_sec(&self) -> f64 {
        self.pipeline.throughput_items_per_sec()
    }

    /// Operations per second (the paper's GOP/s metric).
    #[must_use]
    pub fn throughput_ops_per_sec(&self) -> f64 {
        self.model.flops_per_item() as f64 * self.throughput_items_per_sec()
    }

    /// Time to process `n` items through the pipeline.
    #[must_use]
    pub fn batch_latency(&self, n: u64) -> SimTime {
        self.pipeline.batch_latency(n)
    }

    /// Estimated FPGA resource usage (Table 6 model).
    #[must_use]
    pub fn resource_usage(&self) -> ResourceUsage {
        estimate_usage(&self.model, &self.accel)
    }

    /// Whether the design fits the U280.
    #[must_use]
    pub fn fits_device(&self) -> bool {
        self.resource_usage().fits(&U280_CAPACITY)
    }

    /// Functionally predicts the CTR for one query, driving the simulated
    /// memory (statistics accumulate in [`MicroRec::memory`]) and the
    /// fixed-point datapath.
    ///
    /// The query layout matches the CPU reference engine: round-major,
    /// `lookups_per_table × num_tables` indices.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        let features = self.gather_features(query)?;
        let ctr = match self.precision {
            Precision::Fixed16 => self.mlp.predict_ctr_quantized::<Q16>(&features)?,
            Precision::Fixed32 => self.mlp.predict_ctr_quantized::<Q32>(&features)?,
            // lint: allow(transitive-hot-path-alloc) f32 reference forward allocates per layer; batches use the packed path
            Precision::F32 => self.mlp.predict_ctr(&features)?,
        };
        Ok(ctr)
    }

    /// Predicts CTRs for a batch of queries through the amortized fast
    /// path: one embedding-gather sweep per lookup round for the whole
    /// batch, and one packed GEMM per MLP layer for all items.
    ///
    /// Results are **bit-identical** to calling [`MicroRec::predict`] per
    /// query, and the simulated memory sees exactly the same reads (one
    /// per table per round per query). The packed weights and scratch
    /// buffers are built on first use and reused across calls.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        if queries.is_empty() {
            // lint: allow(hot-path-alloc) an empty Vec never touches the allocator
            return Ok(Vec::new());
        }
        // lint: allow(transitive-hot-path-alloc) drives the memory simulator and reference dense branch; both allocate by design
        let features = self.gather_features_batch(queries)?;
        let mut path = std::mem::replace(&mut self.batch_path, BatchPath::Unbuilt);
        let precision_matches = matches!(
            (&path, self.precision),
            (BatchPath::F32(_), Precision::F32)
                | (BatchPath::Q16(_), Precision::Fixed16)
                | (BatchPath::Q32(_), Precision::Fixed32)
        );
        if !precision_matches {
            path = match self.precision {
                Precision::F32 => BatchPath::F32(FastPath::build(&self.mlp)),
                Precision::Fixed16 => BatchPath::Q16(FastPath::build(&self.mlp)),
                Precision::Fixed32 => BatchPath::Q32(FastPath::build(&self.mlp)),
            };
        }
        let result = match &mut path {
            BatchPath::F32(fp) => fp.run(&features),
            BatchPath::Q16(fp) => fp.run(&features),
            BatchPath::Q32(fp) => fp.run(&features),
            BatchPath::Unbuilt => unreachable!("fast path built above"),
        };
        self.batch_path = path;
        Ok(result?)
    }

    /// Checks a query's arity against the model.
    fn check_query(&self, query: &[u64]) -> Result<(), MicroRecError> {
        let expected = self.model.num_tables() * self.model.lookups_per_table as usize;
        if query.len() != expected {
            return Err(MicroRecError::Embedding(
                microrec_embedding::EmbeddingError::ArityMismatch { expected, actual: query.len() },
            ));
        }
        Ok(())
    }

    /// The dense branch of the feature vector (empty when the model has no
    /// dense features): raw features, or the bottom MLP's activations run
    /// at the datapath precision.
    fn dense_features(&self, query: &[u64]) -> Result<Vec<f32>, MicroRecError> {
        if self.model.dense_dim == 0 {
            return Ok(Vec::new());
        }
        let dense = synthetic_dense_features(query, self.model.dense_dim);
        let processed = match &self.bottom {
            Some(bottom) => match self.precision {
                Precision::Fixed16 => bottom
                    .forward(&dense.iter().map(|&v| Q16::from_f32(v)).collect::<Vec<_>>())?
                    .into_iter()
                    .map(Q16::to_f32)
                    .collect(),
                Precision::Fixed32 => bottom
                    .forward(&dense.iter().map(|&v| Q32::from_f32(v)).collect::<Vec<_>>())?
                    .into_iter()
                    .map(Q32::to_f32)
                    .collect(),
                Precision::F32 => bottom.forward(&dense)?,
            },
            None => dense,
        };
        Ok(processed)
    }

    /// Maps one resolved lookup to a physical read (replicas round-robin
    /// across lookup rounds).
    fn addressed_read(&self, table: usize, row: u64, round: usize) -> AddressedRead {
        let placed = &self.plan.placed[table];
        let replica = round % placed.banks.len();
        let row_bytes = placed.row_bytes(self.plan.precision);
        let offset = self.region_offsets[table][replica] + row * u64::from(row_bytes);
        AddressedRead::new(placed.banks[replica], offset, row_bytes)
    }

    /// Quantizes gathered embedding values to the datapath precision
    /// (lossless per element relative to their stored width).
    fn quantize_features(&self, values: &mut [f32]) {
        match self.precision {
            Precision::Fixed16 => {
                for v in values {
                    *v = Q16::from_f32(*v).to_f32();
                }
            }
            Precision::Fixed32 => {
                for v in values {
                    *v = Q32::from_f32(*v).to_f32();
                }
            }
            Precision::F32 => {}
        }
    }

    /// Functionally gathers one lookup round's concatenated feature slice
    /// for a query, through the fast path when configured: hot-row cache
    /// in front of the arena (or the legacy per-table read on a miss when
    /// no arena is built). Cache and arena change where the bytes come
    /// from — a dequantized cached copy vs. a stride-indexed arena row vs.
    /// a procedural/materialized table read — never what they are, so all
    /// combinations are bit-identical for `RowFormat::F32` storage.
    fn gather_round_into(&mut self, indices: &[u64], out: &mut [f32]) -> Result<(), MicroRecError> {
        // Tiered parameter store: the round is classified per tier before
        // any miss is serviced, with cold reads overlapped by the
        // prefetcher. With a cache, only the probe misses reach the tiers
        // and every served row is admitted through the `on_row` hook.
        if let Some(tiered) = self.tiered.as_mut() {
            return match self.cache.as_mut() {
                Some(cache) => {
                    cache.probe_round(indices, out, &mut self.miss_scratch);
                    tiered.serve_rows(
                        indices,
                        &self.miss_scratch,
                        &self.feature_offsets,
                        out,
                        |t, slot, bytes| cache.insert(t, indices[t], slot, bytes),
                    )?;
                    Ok(())
                }
                None => Ok(tiered.gather_round(indices, &self.feature_offsets, out)?),
            };
        }
        let arena = self.arena.as_deref();
        let catalog = &self.catalog;
        match self.cache.as_mut() {
            Some(cache) => {
                // Probe the whole round first, then service the misses in
                // bulk: the independent probe loads overlap instead of
                // serializing behind each miss's storage read.
                cache.probe_round(indices, out, &mut self.miss_scratch);
                for &table in &self.miss_scratch {
                    let row = indices[table];
                    let offset = self.feature_offsets[table];
                    let dim = catalog.logical_tables()[table].dim() as usize;
                    let slot = &mut out[offset..offset + dim];
                    let source_bytes = match arena {
                        Some(a) => {
                            a.read_row_into(table, row, slot)?;
                            a.source_row_bytes(table)
                        }
                        None => {
                            // lint: allow(transitive-hot-path-alloc) no-arena fallback clones the row; serving gathers through the arena
                            catalog.logical_tables()[table].read_row(row, slot)?;
                            dim * 4
                        }
                    };
                    cache.insert(table, row, slot, source_bytes);
                }
                Ok(())
            }
            None => match arena {
                Some(a) => Ok(a.gather_into(indices, out)?),
                // lint: allow(transitive-hot-path-alloc) no-arena fallback path; arena gather_into is the serving route
                None => Ok(catalog.gather(indices, out)?),
            },
        }
    }

    /// Gathers feature vectors for a whole batch, issuing each lookup
    /// round as one combined sweep of physical reads (the per-query read
    /// count is unchanged; only the dispatch is amortized).
    fn gather_features_batch(
        &mut self,
        queries: &[Vec<u64>],
    ) -> Result<Vec<Vec<f32>>, MicroRecError> {
        self.poll_epoch();
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        let round_len = self.catalog.feature_len() as usize;
        let mut features = Vec::with_capacity(queries.len());
        for query in queries {
            self.check_query(query)?;
            let mut item = Vec::with_capacity(self.model.feature_len() as usize);
            item.extend(self.dense_features(query)?);
            features.push(item);
        }
        let mut requests = Vec::with_capacity(queries.len() * tables);
        for round in 0..rounds {
            requests.clear();
            for query in queries {
                let indices = &query[round * tables..(round + 1) * tables];
                for lookup in &self.catalog.resolve(indices)? {
                    requests.push(self.addressed_read(lookup.table, lookup.row, round));
                }
            }
            self.memory.parallel_read_addressed(&requests)?;
            for (item, query) in features.iter_mut().zip(queries) {
                let indices = &query[round * tables..(round + 1) * tables];
                let base = item.len();
                item.resize(base + round_len, 0.0);
                self.gather_round_into(indices, &mut item[base..])?;
                self.quantize_features(&mut item[base..]);
            }
        }
        Ok(features)
    }

    /// Gathers the (de-quantized) concatenated feature vector for a query,
    /// issuing the physical reads against the simulated memory.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn gather_features(&mut self, query: &[u64]) -> Result<Vec<f32>, MicroRecError> {
        let mut features = Vec::with_capacity(self.model.feature_len() as usize);
        self.gather_features_into(query, &mut features)?;
        Ok(features)
    }

    /// [`MicroRec::gather_features`] into a caller-owned buffer (cleared
    /// first), so a streaming caller — e.g. the pipeline's lookup stage —
    /// reuses one allocation across queries. Identical semantics and
    /// bit-identical output.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn gather_features_into(
        &mut self,
        query: &[u64],
        features: &mut Vec<f32>,
    ) -> Result<(), MicroRecError> {
        // lint: allow(transitive-hot-path-alloc) generation-adoption allocates once per published migration, not per batch
        self.poll_epoch();
        self.check_query(query)?;
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        let round_len = self.catalog.feature_len() as usize;
        features.clear();
        // Dense path: the bottom MLP runs on the accelerator's datapath
        // precision (its own small PE group, §Figure 1's dense branch).
        // lint: allow(transitive-hot-path-alloc) reference bottom-MLP branch builds per-query dense vectors by design
        features.extend(self.dense_features(query)?);
        let mut requests: Vec<AddressedRead> = Vec::with_capacity(tables);
        for round in 0..rounds {
            let indices = &query[round * tables..(round + 1) * tables];
            // Resolve to physical reads and drive the memory simulator
            // with real byte addresses (so DRAM row-buffer state is
            // modelled under the active page policy).
            requests.clear();
            // lint: allow(transitive-hot-path-alloc) resolve materializes the round's physical locations (simulator bookkeeping)
            for l in &self.catalog.resolve(indices)? {
                requests.push(self.addressed_read(l.table, l.row, round));
            }
            self.memory.parallel_read_addressed(&requests)?;
            // Functional gather through the fast path (embedding values
            // quantize losslessly per element relative to their stored
            // precision).
            let base = features.len();
            features.resize(base + round_len, 0.0);
            self.gather_round_into(indices, &mut features[base..])?;
            self.quantize_features(&mut features[base..]);
        }
        Ok(())
    }

    /// Measures the lookup-stage time of one query against the simulated
    /// memory (row-buffer state included), without running the MLP.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn measure_lookup(&mut self, query: &[u64]) -> Result<SimTime, MicroRecError> {
        self.check_query(query)?;
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        let mut total = SimTime::ZERO;
        for round in 0..rounds {
            let indices = &query[round * tables..(round + 1) * tables];
            let requests: Vec<AddressedRead> = self
                .catalog
                .resolve(indices)?
                .iter()
                .map(|l| self.addressed_read(l.table, l.row, round))
                .collect();
            total += self.memory.parallel_read_addressed(&requests)?.elapsed;
        }
        Ok(total)
    }

    /// Sets the DRAM page policy of the simulated memory (closed page by
    /// default; open page lets Zipf-skewed traffic hit open rows).
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        self.memory.set_row_policy(policy);
    }

    /// Resets accumulated memory statistics and, when the hot-row cache is
    /// enabled, its hit/miss/bytes counters (cached rows stay resident).
    pub fn reset_stats(&mut self) {
        self.memory.reset_stats();
        if let Some(cache) = &mut self.cache {
            cache.reset_stats();
        }
        if let Some(tiered) = &mut self.tiered {
            tiered.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_cpu::CpuReferenceEngine;
    use microrec_placement::AllocStrategy;

    fn toy_engine(precision: Precision) -> MicroRec {
        MicroRec::builder(ModelSpec::dlrm_rmc2(6, 8)).precision(precision).seed(11).build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_engine() {
        let e = toy_engine(Precision::Fixed16);
        assert_eq!(e.model().num_tables(), 6);
        assert!(e.fits_device());
        assert!(e.latency().as_us() < 100.0);
        assert!(e.throughput_items_per_sec() > 1e4);
    }

    #[test]
    fn predictions_match_cpu_reference_within_quantization() {
        let model = ModelSpec::dlrm_rmc2(6, 8);
        let cpu = CpuReferenceEngine::build(&model, 11).unwrap();
        let mut fpga16 = toy_engine(Precision::Fixed16);
        let mut fpga32 = toy_engine(Precision::Fixed32);
        for k in 0..20u64 {
            let q: Vec<u64> = (0..24).map(|j| (k * 7919 + j * 104_729) % 500_000).collect();
            let reference = cpu.predict(&q).unwrap();
            let q16 = fpga16.predict(&q).unwrap();
            let q32 = fpga32.predict(&q).unwrap();
            assert!((reference - q32).abs() < 5e-3, "Q32 {q32} vs ref {reference}");
            assert!((reference - q16).abs() < 0.2, "Q16 {q16} vs ref {reference}");
            assert!(
                (reference - q32).abs() <= (reference - q16).abs() + 1e-6,
                "Q32 must be at least as close as Q16"
            );
        }
    }

    #[test]
    fn predict_drives_memory_statistics() {
        let mut e = toy_engine(Precision::Fixed16);
        assert_eq!(e.memory().stats().total().reads, 0);
        let q = vec![0u64; 24];
        e.predict(&q).unwrap();
        // 6 physical tables x 4 rounds = 24 reads.
        assert_eq!(e.memory().stats().total().reads, 24);
        e.reset_stats();
        assert_eq!(e.memory().stats().total().reads, 0);
    }

    #[test]
    fn merged_engine_equals_unmerged_engine() {
        // A cramped memory forces merging; predictions must not change.
        let model = ModelSpec::new(
            "cramped",
            (0..6)
                .map(|i| microrec_embedding::TableSpec::new(format!("t{i}"), 100 + i as u64, 4))
                .collect(),
            vec![64, 32],
            1,
        );
        let mut few_channels = MemoryConfig::fpga_without_hbm(3);
        few_channels.banks.retain(|b| b.id.kind.is_dram());
        let accel = AccelConfig {
            clock_hz: 120_000_000,
            precision: Precision::Fixed32,
            pes_per_layer: vec![16, 16],
            macs_per_pe_cycle: 10,
        };

        let mut merged = MicroRec::builder(model.clone())
            .memory(few_channels.clone())
            .precision(Precision::Fixed32)
            .seed(3)
            .accel_config(accel.clone())
            .build()
            .unwrap();
        assert!(merged.plan().merge.tables_eliminated() > 0, "expected merging");

        let mut unmerged = MicroRec::builder(model)
            .memory(few_channels)
            .precision(Precision::Fixed32)
            .seed(3)
            .accel_config(accel)
            .search_options(HeuristicOptions {
                allow_merge: false,
                strategy: AllocStrategy::RoundRobin,
                ..Default::default()
            })
            .build()
            .unwrap();

        for k in 0..30u64 {
            let q: Vec<u64> = (0..6).map(|j| (k * 13 + j * 7) % 100).collect();
            assert_eq!(
                merged.predict(&q).unwrap(),
                unmerged.predict(&q).unwrap(),
                "merging must be invisible to predictions"
            );
        }
        assert!(merged.placement_cost().lookup_latency <= unmerged.placement_cost().lookup_latency);
    }

    #[test]
    fn predict_batch_is_bit_identical_and_counts_reads() {
        for precision in [Precision::F32, Precision::Fixed16, Precision::Fixed32] {
            let mut sequential = toy_engine(precision);
            let mut batched = toy_engine(precision);
            for batch in [1usize, 7, 64] {
                let queries: Vec<Vec<u64>> = (0..batch)
                    .map(|i| (0..24).map(|j| ((i * 7919 + j * 104_729) % 500_000) as u64).collect())
                    .collect();
                let singles: Vec<f32> =
                    queries.iter().map(|q| sequential.predict(q).unwrap()).collect();
                batched.reset_stats();
                let fast = batched.predict_batch(&queries).unwrap();
                assert_eq!(fast.len(), batch);
                for (i, (f, s)) in fast.iter().zip(&singles).enumerate() {
                    assert_eq!(
                        f.to_bits(),
                        s.to_bits(),
                        "{precision:?} batch {batch} item {i}: {f} vs {s}"
                    );
                }
                // Same physical traffic: 6 tables x 4 rounds per query.
                assert_eq!(batched.memory().stats().total().reads, (batch * 24) as u64);
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut e = toy_engine(Precision::Fixed16);
        assert!(e.predict_batch(&[]).unwrap().is_empty());
        assert_eq!(e.memory().stats().total().reads, 0);
    }

    #[test]
    fn malformed_query_rejected() {
        let mut e = toy_engine(Precision::Fixed16);
        assert!(e.predict(&[0u64; 23]).is_err());
        let mut q = vec![0u64; 24];
        q[3] = u64::MAX;
        assert!(e.predict(&q).is_err());
    }

    fn small_model() -> ModelSpec {
        ModelSpec::new(
            "small",
            (0..6).map(|i| microrec_embedding::TableSpec::new(format!("t{i}"), 2000, 8)).collect(),
            vec![64, 32],
            4,
        )
    }

    fn small_builder(precision: Precision) -> MicroRecBuilder {
        MicroRec::builder(small_model()).precision(precision).seed(29)
    }

    fn small_queries(n: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| (0..24).map(|j| ((i * 7919 + j * 104_729) % 2000) as u64).collect())
            .collect()
    }

    #[test]
    fn fast_path_is_bit_identical_across_storage_and_cache() {
        // Legacy procedural reads, an f32 arena, a cache-fronted arena, and
        // a cache over the legacy path must all predict identical bits, for
        // every datapath precision, in both predict and predict_batch.
        for precision in [Precision::F32, Precision::Fixed16, Precision::Fixed32] {
            let mut legacy = small_builder(precision).build().unwrap();
            let mut variants = [
                small_builder(precision).embedding_arena(RowFormat::F32).build().unwrap(),
                small_builder(precision)
                    .embedding_arena(RowFormat::F32)
                    .hot_row_cache(128)
                    .build()
                    .unwrap(),
                small_builder(precision).hot_row_cache(128).build().unwrap(),
            ];
            let queries = small_queries(40);
            let want: Vec<f32> = queries.iter().map(|q| legacy.predict(q).unwrap()).collect();
            for (v, engine) in variants.iter_mut().enumerate() {
                // Sequential predict: run twice so the second pass hits the
                // warm cache — results must not change.
                for pass in 0..2 {
                    for (i, q) in queries.iter().enumerate() {
                        let got = engine.predict(q).unwrap();
                        assert_eq!(
                            got.to_bits(),
                            want[i].to_bits(),
                            "{precision:?} variant {v} pass {pass} query {i}"
                        );
                    }
                }
                // Batched path over the same (now cached) rows.
                engine.reset_stats();
                let got = engine.predict_batch(&queries).unwrap();
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "{precision:?} variant {v} batch {i}");
                }
                // The simulated memory still sees every physical read —
                // the cache is a host-side structure, not a DRAM model.
                assert_eq!(engine.memory().stats().total().reads, (queries.len() * 6 * 4) as u64);
            }
        }
    }

    /// Encoded row bytes of the 6×2000×8 small model in `format`.
    fn small_model_bytes(format: RowFormat) -> u64 {
        let per_row = 8 * format.bytes_per_elem() + if format == RowFormat::I8 { 4 } else { 0 };
        (6 * 2000 * per_row) as u64
    }

    #[test]
    fn tiered_engine_is_bit_identical_to_all_resident() {
        // A tiered engine at a 1/3 budget (cold tier guaranteed) must
        // predict the same bits as the all-resident arena at every row
        // format, with and without the hot-row cache in front, through
        // both predict and predict_batch.
        for format in [RowFormat::F32, RowFormat::F16, RowFormat::I8] {
            let budget = small_model_bytes(format) / 3;
            let mut full =
                small_builder(Precision::Fixed16).embedding_arena(format).build().unwrap();
            let queries = small_queries(30);
            let want: Vec<f32> = queries.iter().map(|q| full.predict(q).unwrap()).collect();
            for cache_rows in [0usize, 128] {
                let mut engine = small_builder(Precision::Fixed16)
                    .tiered_storage(budget, format)
                    .hot_row_cache(cache_rows)
                    .build()
                    .unwrap();
                let backing = engine.tiered_store().unwrap().backing();
                assert!(backing.num_resident_tables() < 6, "cold tier must exist");
                assert!(backing.resident_bytes() <= budget, "residency respects the budget");
                for (i, q) in queries.iter().enumerate() {
                    let got = engine.predict(q).unwrap();
                    assert_eq!(
                        got.to_bits(),
                        want[i].to_bits(),
                        "{format} cache {cache_rows} q{i}"
                    );
                }
                let got = engine.predict_batch(&queries).unwrap();
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "{format} cache {cache_rows} batch {i}");
                }
                let counters = engine.tier_counters();
                assert!(counters.resident_hits > 0 && counters.cold_reads > 0);
                assert_eq!(counters.cold_errors, 0);
                engine.reset_stats();
                assert_eq!(engine.tier_counters(), microrec_embedding::TierCounters::default());
            }
        }
    }

    #[test]
    fn shared_tiered_backing_is_one_allocation_across_builds() {
        let budget = small_model_bytes(RowFormat::F16) / 3;
        let mut builder = small_builder(Precision::Fixed16).tiered_storage(budget, RowFormat::F16);
        builder.prepare_shared_arena().unwrap();
        let a = builder.clone().build().unwrap();
        let b = builder.clone().build().unwrap();
        assert!(
            Arc::ptr_eq(a.tiered_store().unwrap().backing(), b.tiered_store().unwrap().backing()),
            "replicas must share one tiered backing"
        );
        let mut own = small_builder(Precision::Fixed16)
            .tiered_storage(budget, RowFormat::F16)
            .build()
            .unwrap();
        let (mut a, mut b) = (a, b);
        for q in small_queries(5) {
            let want = own.predict(&q).unwrap();
            assert_eq!(a.predict(&q).unwrap().to_bits(), want.to_bits());
            assert_eq!(b.predict(&q).unwrap().to_bits(), want.to_bits());
        }
    }

    #[test]
    fn quantized_arena_stays_close_to_reference() {
        let mut legacy = small_builder(Precision::F32).build().unwrap();
        for (format, tol) in [(RowFormat::F16, 1e-2), (RowFormat::I8, 5e-2)] {
            let mut quantized = small_builder(Precision::F32)
                .embedding_arena(format)
                .hot_row_cache(64)
                .build()
                .unwrap();
            for q in small_queries(20) {
                let want = legacy.predict(&q).unwrap();
                let got = quantized.predict(&q).unwrap();
                assert!((want - got).abs() < tol as f32, "{format}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn cache_counters_accumulate_and_reset() {
        let mut e = small_builder(Precision::Fixed16)
            .embedding_arena(RowFormat::F16)
            .hot_row_cache(256)
            .build()
            .unwrap();
        let queries = small_queries(10);
        for q in &queries {
            e.predict(q).unwrap();
        }
        let cache = e.hot_row_cache().unwrap();
        // Every lookup (6 tables x 4 rounds x 10 queries) hit the cache
        // layer and was classified.
        assert_eq!(cache.hits() + cache.misses(), 240);
        assert!(cache.bytes_from_memory() > 0);
        assert_eq!(cache.per_table_hits().len(), 6);
        e.reset_stats();
        let cache = e.hot_row_cache().unwrap();
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert_eq!(cache.bytes_from_memory(), 0);
    }

    #[test]
    fn shared_arena_is_one_allocation_across_builds() {
        let mut builder = small_builder(Precision::Fixed16).embedding_arena(RowFormat::F16);
        builder.prepare_shared_arena().unwrap();
        let a = builder.clone().build().unwrap();
        let b = builder.clone().build().unwrap();
        assert!(
            Arc::ptr_eq(a.arena().unwrap(), b.arena().unwrap()),
            "replicas must share one arena allocation"
        );
        // And predictions agree with an engine that built its own arena.
        let mut own =
            small_builder(Precision::Fixed16).embedding_arena(RowFormat::F16).build().unwrap();
        let (mut a, mut b) = (a, b);
        for q in small_queries(5) {
            let want = own.predict(&q).unwrap();
            assert_eq!(a.predict(&q).unwrap().to_bits(), want.to_bits());
            assert_eq!(b.predict(&q).unwrap().to_bits(), want.to_bits());
        }
    }

    #[test]
    fn mismatched_shared_arena_is_rejected() {
        let mut builder = small_builder(Precision::Fixed16).embedding_arena(RowFormat::F16);
        builder.prepare_shared_arena().unwrap();
        let arena = builder.build().unwrap().arena().unwrap().clone();
        let err =
            MicroRec::builder(ModelSpec::dlrm_rmc2(6, 8)).shared_arena(arena).build().unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn production_engine_builds_and_matches_table3() {
        let e = MicroRec::builder(ModelSpec::small_production()).seed(5).build().unwrap();
        assert_eq!(e.plan().num_tables(), 42);
        assert_eq!(e.placement_cost().dram_rounds, 1);
        // Memory ledger reflects the plan.
        let allocated: u64 = e.memory().banks().map(|b| b.used()).sum();
        assert_eq!(allocated, e.placement_cost().storage_bytes);
    }
}
