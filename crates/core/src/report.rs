//! Comparison reports: CPU baseline vs MicroRec.
//!
//! These types regenerate the paper's evaluation tables. Speedups follow
//! the paper's definitions exactly:
//!
//! * **End-to-end (Table 2)** — CPU batch latency at batch `B` divided by
//!   the FPGA's *batch latency* for the same `B` (pipeline fill plus
//!   `B − 1` initiation intervals; the caption notes the FPGA figure
//!   "consists of both the stable stages ... as well as the time overhead
//!   of starting and ending").
//! * **Embedding layer (Table 4)** — CPU embedding-layer latency at `B`
//!   divided by `B ×` the accelerator's per-item lookup latency.

use microrec_cpu::CpuTimingModel;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::SimTime;

use crate::engine::MicroRec;
use crate::error::MicroRecError;
use crate::pipeline::{Calibration, PipelinePlan, StageSnapshot};
use crate::router::RouterSnapshot;
use crate::runtime::{ReplayOutcome, RuntimeConfig, RuntimeLookupStats};

/// One CPU operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPoint {
    /// Batch size.
    pub batch: u64,
    /// Batch latency.
    pub latency: SimTime,
    /// Throughput in items per second.
    pub items_per_sec: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
}

/// One FPGA operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPoint {
    /// Datapath precision.
    pub precision: Precision,
    /// Single-item latency.
    pub latency: SimTime,
    /// Steady-state throughput in items per second.
    pub items_per_sec: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
}

/// End-to-end comparison for one model (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct EndToEndReport {
    /// Model name.
    pub model: String,
    /// CPU rows, one per batch size.
    pub cpu: Vec<CpuPoint>,
    /// FPGA single-item point.
    pub fpga: FpgaPoint,
    /// FPGA batch latency per CPU batch size (for the speedup rows).
    pub fpga_batch_latency: Vec<SimTime>,
}

impl EndToEndReport {
    /// Builds the report by running the CPU timing model at each batch and
    /// the already-built `engine` for the FPGA side.
    #[must_use]
    pub fn build(engine: &MicroRec, cpu: &CpuTimingModel, batches: &[u64]) -> Self {
        let model = engine.model();
        let cpu_points = batches
            .iter()
            .map(|&b| CpuPoint {
                batch: b,
                latency: cpu.total_time(model, b),
                items_per_sec: cpu.throughput_items_per_sec(model, b),
                ops_per_sec: cpu.throughput_ops_per_sec(model, b),
            })
            .collect();
        let fpga = FpgaPoint {
            precision: engine.precision(),
            latency: engine.latency(),
            items_per_sec: engine.throughput_items_per_sec(),
            ops_per_sec: engine.throughput_ops_per_sec(),
        };
        let fpga_batch_latency = batches.iter().map(|&b| engine.batch_latency(b)).collect();
        EndToEndReport { model: model.name.clone(), cpu: cpu_points, fpga, fpga_batch_latency }
    }

    /// Speedup of the FPGA over the CPU at each batch size (the paper's
    /// "Speedup: FPGA" rows).
    #[must_use]
    pub fn speedups(&self) -> Vec<f64> {
        self.cpu
            .iter()
            .zip(&self.fpga_batch_latency)
            .map(|(c, &f)| c.latency.as_ns() / f.as_ns())
            .collect()
    }
}

/// Embedding-layer comparison for one model (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingReport {
    /// Model name.
    pub model: String,
    /// CPU embedding-layer latency per batch size.
    pub cpu: Vec<(u64, SimTime)>,
    /// Per-item lookup latency, HBM only (no Cartesian merging).
    pub fpga_hbm: SimTime,
    /// Per-item lookup latency with HBM + Cartesian products.
    pub fpga_hbm_cartesian: SimTime,
}

impl EmbeddingReport {
    /// Builds the report from the two engines (merged and unmerged).
    #[must_use]
    pub fn build(
        merged: &MicroRec,
        unmerged: &MicroRec,
        cpu: &CpuTimingModel,
        batches: &[u64],
    ) -> Self {
        let model = merged.model();
        EmbeddingReport {
            model: model.name.clone(),
            cpu: batches.iter().map(|&b| (b, cpu.embedding_time(model, b))).collect(),
            fpga_hbm: unmerged.placement_cost().lookup_latency,
            fpga_hbm_cartesian: merged.placement_cost().lookup_latency,
        }
    }

    /// `(speedup_hbm, speedup_hbm_cartesian)` per batch size.
    #[must_use]
    pub fn speedups(&self) -> Vec<(u64, f64, f64)> {
        self.cpu
            .iter()
            .map(|&(b, t)| {
                let fpga_hbm = self.fpga_hbm.as_ns() * b as f64;
                let fpga_cart = self.fpga_hbm_cartesian.as_ns() * b as f64;
                (b, t.as_ns() / fpga_hbm, t.as_ns() / fpga_cart)
            })
            .collect()
    }
}

/// AWS rental prices of the appendix cost comparison (USD per hour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwsPrices {
    /// The CPU server (16 vCPU).
    pub cpu_per_hour: f64,
    /// The FPGA server (U250-class).
    pub fpga_per_hour: f64,
}

impl Default for AwsPrices {
    fn default() -> Self {
        // Appendix: $1.82/h CPU vs $1.65/h FPGA.
        AwsPrices { cpu_per_hour: 1.82, fpga_per_hour: 1.65 }
    }
}

/// Cost-efficiency comparison (appendix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// USD per million inferences on the CPU server.
    pub cpu_usd_per_million: f64,
    /// USD per million inferences on the FPGA server.
    pub fpga_usd_per_million: f64,
}

impl CostReport {
    /// Computes cost per million inferences from throughputs.
    #[must_use]
    pub fn build(cpu_items_per_sec: f64, fpga_items_per_sec: f64, prices: AwsPrices) -> Self {
        let per_million = |price_per_hour: f64, rate: f64| price_per_hour / 3600.0 / rate * 1e6;
        CostReport {
            cpu_usd_per_million: per_million(prices.cpu_per_hour, cpu_items_per_sec),
            fpga_usd_per_million: per_million(prices.fpga_per_hour, fpga_items_per_sec),
        }
    }

    /// How many times cheaper the FPGA serves a fixed query volume.
    #[must_use]
    pub fn advantage(&self) -> f64 {
        self.cpu_usd_per_million / self.fpga_usd_per_million
    }
}

/// Embedding-lookup counters for one serving run: which row format the
/// engines stored, how the hot-row cache performed, and how many bytes
/// the lookups moved from cache versus backing memory. Attached to
/// [`ServingFrontierRecord`] as the optional `lookup` field, so records
/// written before the fast path existed still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupCountersRecord {
    /// Arena row format (`"f32"`, `"f16"`, or `"i8"`).
    pub format: String,
    /// Hot-row cache capacity in rows (0 = cache disabled).
    pub cache_rows: u64,
    /// Cache hits across all tables and workers.
    pub hits: u64,
    /// Cache misses across all tables and workers.
    pub misses: u64,
    /// `hits / (hits + misses)`; 0 when no lookups ran.
    pub hit_rate: f64,
    /// Feature bytes served from the cache (dequantized f32).
    pub bytes_from_cache: u64,
    /// Source-row bytes fetched from backing storage on misses.
    pub bytes_from_memory: u64,
    /// Cache hits per logical table.
    pub per_table_hits: Vec<u64>,
    /// Cache misses per logical table.
    pub per_table_misses: Vec<u64>,
    /// Rows served by the tiered store's resident arena; `None` for runs
    /// that predate the tiered store or did not use it (records written
    /// without these per-tier keys still parse).
    pub resident_hits: Option<u64>,
    /// Rows read from the file-backed cold tier.
    pub cold_reads: Option<u64>,
    /// Cold reads fully overlapped by the async prefetcher.
    pub prefetch_hits: Option<u64>,
    /// Bytes moved off the cold store.
    pub bytes_from_cold: Option<u64>,
}

microrec_json::impl_json_struct!(
    LookupCountersRecord,
    required {
        format,
        cache_rows,
        hits,
        misses,
        hit_rate,
        bytes_from_cache,
        bytes_from_memory,
        per_table_hits,
        per_table_misses,
    },
    default { resident_hits, cold_reads, prefetch_hits, bytes_from_cold }
);

impl LookupCountersRecord {
    /// Converts the runtime's aggregated lookup stats into the record form.
    /// Per-tier fields are populated only for tiered runs.
    #[must_use]
    pub fn from_stats(stats: &RuntimeLookupStats) -> Self {
        LookupCountersRecord {
            format: stats.format.to_string(),
            cache_rows: stats.cache_rows as u64,
            hits: stats.hits,
            misses: stats.misses,
            hit_rate: stats.hit_rate(),
            bytes_from_cache: stats.bytes_from_cache,
            bytes_from_memory: stats.bytes_from_memory,
            per_table_hits: stats.per_table_hits.clone(),
            per_table_misses: stats.per_table_misses.clone(),
            resident_hits: stats.tiered.then_some(stats.resident_hits),
            cold_reads: stats.tiered.then_some(stats.cold_reads),
            prefetch_hits: stats.tiered.then_some(stats.prefetch_hits),
            bytes_from_cold: stats.tiered.then_some(stats.bytes_from_cold),
        }
    }
}

/// Counters of one dataflow-pipeline stage, in the form bench records
/// persist (`BENCH_pipeline.json`). Built from the executor's or the
/// runtime's [`StageSnapshot`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStageRecord {
    /// Stage name (`"lookup"`, `"fc0"`…, `"sink"`).
    pub stage: String,
    /// Jobs the stage processed.
    pub items: u64,
    /// Pops that found the stage's input FIFO empty.
    pub stalls: u64,
    /// Pushes that found the stage's output FIFO full.
    pub backpressure: u64,
    /// Mean input-FIFO occupancy observed at pop time.
    pub mean_occupancy: f64,
    /// Parallel lanes the stage ran as (0 in records written before
    /// replication existed; treat 0 and 1 the same).
    pub lanes: u64,
}

microrec_json::impl_json_struct!(
    PipelineStageRecord,
    required { stage, items, stalls, backpressure, mean_occupancy },
    default { lanes }
);

impl PipelineStageRecord {
    /// Converts one stage's counters into the record form.
    #[must_use]
    pub fn from_snapshot(snapshot: &StageSnapshot) -> Self {
        PipelineStageRecord {
            stage: snapshot.name.clone(),
            items: snapshot.items,
            stalls: snapshot.stalls,
            backpressure: snapshot.backpressure,
            mean_occupancy: snapshot.mean_occupancy(),
            lanes: snapshot.lanes,
        }
    }
}

/// The auto-tuner's measured cost model and the topology it solved, in
/// the form bench records persist (`BENCH_pipeline.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRecord {
    /// Human-readable lane topology (see [`PipelinePlan::summary`]).
    pub plan: String,
    /// FIFO depth the plan settled on.
    pub fifo_depth: u64,
    /// SPSC spin budget the plan settled on.
    pub spin_rounds: u64,
    /// Measured gather + quantize time of the lookup stage (µs/item).
    pub lookup_us: f64,
    /// Measured per-layer packed forward times (µs/item, layer order).
    pub layer_us: Vec<f64>,
    /// Measured one-way cross-thread handoff cost (µs).
    pub hop_us: f64,
    /// Measured monolithic `predict` time (µs/item).
    pub monolithic_us: f64,
    /// Measured pilot run of the solved topology (µs/item).
    pub pipelined_us: f64,
    /// Core budget the solver worked with.
    pub cores: u64,
    /// The execution mode the cost model chose.
    pub chosen: String,
}

microrec_json::impl_json_struct!(
    CalibrationRecord,
    required {
        plan,
        fifo_depth,
        spin_rounds,
        lookup_us,
        layer_us,
        hop_us,
        monolithic_us,
        pipelined_us,
        cores,
        chosen
    }
);

impl CalibrationRecord {
    /// Converts a calibration and its solved plan into the record form.
    #[must_use]
    pub fn from_calibration(calibration: &Calibration, plan: &PipelinePlan) -> Self {
        CalibrationRecord {
            plan: plan.summary(),
            fifo_depth: plan.fifo_depth as u64,
            spin_rounds: plan.spin_rounds as u64,
            lookup_us: calibration.lookup_us,
            layer_us: calibration.layer_us.clone(),
            hop_us: calibration.hop_us,
            monolithic_us: calibration.monolithic_us,
            pipelined_us: calibration.pipelined_us,
            cores: calibration.cores as u64,
            chosen: crate::router::PathCostModel::from_calibration(calibration, plan)
                .choose_mode()
                .as_str()
                .to_string(),
        }
    }
}

/// One path's routing statistics, in the form bench records persist.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterPathRecord {
    /// Path name (`"monolithic"`, `"monolithic-nocache"`, `"pipelined"`,
    /// `"pool"`…).
    pub path: String,
    /// Engine variant (`"monolithic"`, `"pipelined"`, `"replicated"`,
    /// `"pool"`).
    pub kind: String,
    /// Arena row format label.
    pub format: String,
    /// Whether a hot-row cache fronts this path.
    pub cached: bool,
    /// Batches the router dispatched to this path.
    pub dispatches: u64,
    /// Items the router dispatched to this path.
    pub items: u64,
    /// Mean predicted batch latency at dispatch time (µs).
    pub mean_predicted_us: f64,
    /// Mean observed batch latency (µs).
    pub mean_observed_us: f64,
    /// Calibrated per-batch fixed cost (µs).
    pub fixed_us: f64,
    /// Calibrated marginal per-item cost (µs).
    pub per_item_us: f64,
    /// Calibrated single-item latency (µs) — the SLO guard's metric.
    pub single_us: f64,
}

microrec_json::impl_json_struct!(
    RouterPathRecord,
    required {
        path,
        kind,
        format,
        cached,
        dispatches,
        items,
        mean_predicted_us,
        mean_observed_us,
        fixed_us,
        per_item_us,
        single_us,
    }
);

/// Aggregate router statistics for one run (`BENCH_serving.json`'s
/// optional `router` field and the `serve --live --routed` summary).
#[derive(Debug, Clone, PartialEq)]
pub struct RouterRecord {
    /// One row per registered path, in registration order.
    pub paths: Vec<RouterPathRecord>,
    /// Times the SLO guard engaged and took the lowest-latency path.
    pub slo_fallbacks: u64,
    /// Staleness re-probe dispatches.
    pub probes: u64,
    /// Final traffic-cacheability estimate (-1 when the sketch never
    /// warmed).
    pub traffic_hit_rate: f64,
}

microrec_json::impl_json_struct!(
    RouterRecord,
    required { paths, slo_fallbacks, probes, traffic_hit_rate }
);

impl RouterRecord {
    /// Converts a router snapshot into the record form.
    #[must_use]
    pub fn from_snapshot(snapshot: &RouterSnapshot) -> Self {
        RouterRecord {
            paths: snapshot
                .paths
                .iter()
                .map(|p| RouterPathRecord {
                    path: p.descriptor.name.to_string(),
                    kind: p.descriptor.kind.as_str().to_string(),
                    format: p.descriptor.format.to_string(),
                    cached: p.descriptor.cached,
                    dispatches: p.dispatches,
                    items: p.items,
                    mean_predicted_us: p.mean_predicted_us,
                    mean_observed_us: p.mean_observed_us,
                    fixed_us: p.cost.fixed_us,
                    per_item_us: p.cost.per_item_us,
                    single_us: p.cost.single_us,
                })
                .collect(),
            slo_fallbacks: snapshot.slo_fallbacks,
            probes: snapshot.probes,
            traffic_hit_rate: snapshot.traffic_hit_rate.unwrap_or(-1.0),
        }
    }
}

/// One online placement migration: what triggered it, the plan delta, and
/// how long the shielded rebuild and the publish took. Attached to
/// [`ServingFrontierRecord`] as the optional `migrations` field, so
/// records written before traffic-adaptive placement existed still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Layout generation published by this migration (the as-built layout
    /// is generation 0).
    pub generation: u64,
    /// Total hot-row-cache hits in the trigger window (since the previous
    /// migration, or startup).
    pub trigger_hits: u64,
    /// Total hot-row-cache misses in the trigger window — the counts the
    /// traffic profile was distilled from.
    pub trigger_misses: u64,
    /// Predicted fractional improvement of the weighted lookup score
    /// (`(old - new) / old`) that cleared the policy threshold.
    pub divergence: f64,
    /// Traffic-weighted lookup score of the old layout (µs).
    pub old_weighted_us: f64,
    /// Traffic-weighted lookup score of the new layout (µs).
    pub new_weighted_us: f64,
    /// Logical tables whose channel assignment changed.
    pub tables_moved: u64,
    /// Wall-clock time of the off-thread arena rebuild (µs).
    pub build_us: f64,
    /// Wall-clock time of the publish itself (µs) — the only step the
    /// serving path can observe, and it is one mutex store plus an atomic
    /// bump.
    pub swap_us: f64,
}

microrec_json::impl_json_struct!(
    MigrationRecord,
    required {
        generation,
        trigger_hits,
        trigger_misses,
        divergence,
        old_weighted_us,
        new_weighted_us,
        tables_moved,
        build_us,
        swap_us,
    }
);

/// One point on the serving runtime's QPS/tail-latency frontier: the
/// outcome of replaying one offered load through one runtime
/// configuration. Serializes to the `BENCH_serving.json` row format.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingFrontierRecord {
    /// Offered Poisson load (queries per second).
    pub offered_qps: f64,
    /// Sustained completion rate (queries per second).
    pub qps: f64,
    /// Median enqueue→completion latency (µs).
    pub p50_us: f64,
    /// 95th-percentile latency (µs).
    pub p95_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile latency (µs).
    pub p999_us: f64,
    /// Mean latency (µs).
    pub mean_latency_us: f64,
    /// Fraction of offered requests dropped at admission.
    pub drop_rate: f64,
    /// Mean requests per executed micro-batch.
    pub mean_batch_size: f64,
    /// Worker threads (engine replicas).
    pub workers: u64,
    /// Batch-size close threshold.
    pub max_batch: u64,
    /// Batch-deadline close threshold (µs).
    pub max_wait_us: u64,
    /// Admission-queue capacity.
    pub queue_depth: u64,
    /// Requests that produced a prediction.
    pub completed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Embedding-lookup counters, when the run used the arena fast path.
    /// Absent from records written before the fast path existed.
    pub lookup: Option<LookupCountersRecord>,
    /// Per-path routing counters, when the run used routed execution.
    /// Absent from records written before the router existed.
    pub router: Option<RouterRecord>,
    /// Online placement migrations the run performed, when it served with
    /// `--adaptive`. Absent from records written before traffic-adaptive
    /// placement existed.
    pub migrations: Option<Vec<MigrationRecord>>,
}

microrec_json::impl_json_struct!(
    ServingFrontierRecord,
    required {
        offered_qps,
        qps,
        p50_us,
        p95_us,
        p99_us,
        p999_us,
        mean_latency_us,
        drop_rate,
        mean_batch_size,
        workers,
        max_batch,
        max_wait_us,
        queue_depth,
        completed,
        rejected,
    },
    default { lookup, router, migrations }
);

impl ServingFrontierRecord {
    /// Builds the record for one replayed load point.
    #[must_use]
    pub fn from_run(config: &RuntimeConfig, outcome: &ReplayOutcome) -> Self {
        let snap = &outcome.snapshot;
        ServingFrontierRecord {
            offered_qps: outcome.offered_qps,
            qps: outcome.qps,
            p50_us: snap.latency.p50_us,
            p95_us: snap.latency.p95_us,
            p99_us: snap.latency.p99_us,
            p999_us: snap.latency.p999_us,
            mean_latency_us: snap.mean_latency_us,
            drop_rate: snap.drop_rate(),
            mean_batch_size: snap.mean_batch_size,
            workers: config.workers as u64,
            max_batch: config.max_batch as u64,
            max_wait_us: config.max_wait_us,
            queue_depth: config.queue_depth as u64,
            completed: outcome.completed as u64,
            rejected: outcome.rejected as u64,
            lookup: None,
            router: None,
            migrations: None,
        }
    }

    /// Attaches embedding-lookup counters from a runtime's aggregated
    /// stats (builder style, for use after [`Self::from_run`]).
    #[must_use]
    pub fn with_lookup(mut self, stats: &RuntimeLookupStats) -> Self {
        self.lookup = Some(LookupCountersRecord::from_stats(stats));
        self
    }

    /// Attaches per-path routing counters from a routed runtime (builder
    /// style, for use after [`Self::from_run`]).
    #[must_use]
    pub fn with_router(mut self, snapshot: &RouterSnapshot) -> Self {
        self.router = Some(RouterRecord::from_snapshot(snapshot));
        self
    }

    /// Attaches the online migrations an adaptive run performed (builder
    /// style, for use after [`Self::from_run`]).
    #[must_use]
    pub fn with_migrations(mut self, records: &[MigrationRecord]) -> Self {
        self.migrations = Some(records.to_vec());
        self
    }
}

/// Convenience: builds the full Table 2 report for `model` at `precision`.
///
/// # Errors
///
/// Returns [`MicroRecError`] if the engine cannot be built.
pub fn end_to_end_report(
    model: &ModelSpec,
    precision: Precision,
    batches: &[u64],
) -> Result<EndToEndReport, MicroRecError> {
    let engine = MicroRec::builder(model.clone()).precision(precision).build()?;
    Ok(EndToEndReport::build(&engine, &CpuTimingModel::aws_16vcpu(), batches))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BATCHES: [u64; 6] = [1, 64, 256, 512, 1024, 2048];

    #[test]
    fn table2_speedup_small_fp16_matches_paper() {
        let report =
            end_to_end_report(&ModelSpec::small_production(), Precision::Fixed16, &BATCHES)
                .unwrap();
        let speedups = report.speedups();
        // Paper: 204.72x at B=1 down to 4.19x at B=2048.
        let b1 = speedups[0];
        let b2048 = speedups[5];
        assert!((100.0..350.0).contains(&b1), "B=1 speedup {b1:.1}");
        assert!((3.0..6.0).contains(&b2048), "B=2048 speedup {b2048:.2}");
        // Speedups decrease with batch size.
        for w in speedups.windows(2) {
            assert!(w[1] <= w[0], "speedups must decrease with batch");
        }
    }

    #[test]
    fn table2_speedup_large_fp32_matches_paper() {
        let report =
            end_to_end_report(&ModelSpec::large_production(), Precision::Fixed32, &BATCHES)
                .unwrap();
        let speedups = report.speedups();
        // Paper: 241.54x at B=1, 3.39x at B=2048.
        assert!((120.0..420.0).contains(&speedups[0]), "B=1 speedup {:.1}", speedups[0]);
        assert!((2.4..4.8).contains(&speedups[5]), "B=2048 speedup {:.2}", speedups[5]);
    }

    #[test]
    fn fpga_wins_at_every_batch_size() {
        for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
            for precision in [Precision::Fixed16, Precision::Fixed32] {
                let report = end_to_end_report(&model, precision, &BATCHES).unwrap();
                for (i, s) in report.speedups().iter().enumerate() {
                    assert!(*s > 1.0, "{} {precision} B={} speedup {s}", model.name, BATCHES[i]);
                }
            }
        }
    }

    #[test]
    fn cost_report_matches_appendix_conclusion() {
        // Appendix: 4-5x speedup at fixed-32 with a cheaper instance =>
        // clear long-term benefit.
        let report =
            end_to_end_report(&ModelSpec::small_production(), Precision::Fixed32, &[2048]).unwrap();
        let cost = CostReport::build(
            report.cpu[0].items_per_sec,
            report.fpga.items_per_sec,
            AwsPrices::default(),
        );
        assert!(cost.advantage() > 2.0, "advantage {:.2}", cost.advantage());
        assert!(cost.fpga_usd_per_million < cost.cpu_usd_per_million);
    }

    #[test]
    fn serving_record_without_lookup_field_still_parses() {
        // Records committed before the embedding fast path existed carry
        // no `lookup` key; decoding must default it to `None`.
        let old = r#"{
            "offered_qps": 1000.0, "qps": 990.0,
            "p50_us": 10.0, "p95_us": 20.0, "p99_us": 30.0, "p999_us": 40.0,
            "mean_latency_us": 12.0, "drop_rate": 0.01, "mean_batch_size": 4.0,
            "workers": 2, "max_batch": 8, "max_wait_us": 100, "queue_depth": 64,
            "completed": 990, "rejected": 10
        }"#;
        let rec: ServingFrontierRecord = microrec_json::from_str(old).unwrap();
        assert_eq!(rec.lookup, None);
        assert_eq!(rec.router, None);
        assert_eq!(rec.completed, 990);
    }

    #[test]
    fn serving_record_with_router_round_trips_and_old_records_still_parse() {
        // A PR 4-era record: has `lookup` but predates `router`.
        let pre_router = r#"{
            "offered_qps": 1000.0, "qps": 990.0,
            "p50_us": 10.0, "p95_us": 20.0, "p99_us": 30.0, "p999_us": 40.0,
            "mean_latency_us": 12.0, "drop_rate": 0.01, "mean_batch_size": 4.0,
            "workers": 2, "max_batch": 8, "max_wait_us": 100, "queue_depth": 64,
            "completed": 990, "rejected": 10,
            "lookup": {
                "format": "f16", "cache_rows": 4096, "hits": 900, "misses": 100,
                "hit_rate": 0.9, "bytes_from_cache": 57600, "bytes_from_memory": 3200,
                "per_table_hits": [450, 450], "per_table_misses": [50, 50]
            }
        }"#;
        let mut rec: ServingFrontierRecord = microrec_json::from_str(pre_router).unwrap();
        assert!(rec.lookup.is_some());
        assert_eq!(rec.router, None);

        rec.router = Some(RouterRecord {
            paths: vec![RouterPathRecord {
                path: "monolithic".to_string(),
                kind: "monolithic".to_string(),
                format: "f16".to_string(),
                cached: true,
                dispatches: 120,
                items: 1900,
                mean_predicted_us: 800.0,
                mean_observed_us: 820.0,
                fixed_us: 5.0,
                per_item_us: 50.0,
                single_us: 55.0,
            }],
            slo_fallbacks: 3,
            probes: 2,
            traffic_hit_rate: 0.82,
        });
        let encoded = microrec_json::to_string(&rec);
        let back: ServingFrontierRecord = microrec_json::from_str(&encoded).unwrap();
        assert_eq!(back, rec);
        let router = back.router.unwrap();
        assert_eq!(router.paths.len(), 1);
        assert_eq!(router.paths[0].path, "monolithic");
        assert_eq!(router.slo_fallbacks, 3);
    }

    #[test]
    fn serving_record_without_migrations_field_still_parses() {
        // A PR 7-era record: has `lookup` and `router` semantics but
        // predates traffic-adaptive placement, so no `migrations` key;
        // decoding must default it to `None`.
        let pre_adaptive = r#"{
            "offered_qps": 1000.0, "qps": 990.0,
            "p50_us": 10.0, "p95_us": 20.0, "p99_us": 30.0, "p999_us": 40.0,
            "mean_latency_us": 12.0, "drop_rate": 0.01, "mean_batch_size": 4.0,
            "workers": 2, "max_batch": 8, "max_wait_us": 100, "queue_depth": 64,
            "completed": 990, "rejected": 10,
            "lookup": {
                "format": "f16", "cache_rows": 4096, "hits": 900, "misses": 100,
                "hit_rate": 0.9, "bytes_from_cache": 57600, "bytes_from_memory": 3200,
                "per_table_hits": [450, 450], "per_table_misses": [50, 50]
            }
        }"#;
        let rec: ServingFrontierRecord = microrec_json::from_str(pre_adaptive).unwrap();
        assert_eq!(rec.migrations, None);
        assert!(rec.lookup.is_some());

        // And the migration-extended form round-trips.
        let extended = rec.with_migrations(&[MigrationRecord {
            generation: 1,
            trigger_hits: 42_000,
            trigger_misses: 18_000,
            divergence: 0.12,
            old_weighted_us: 1.9,
            new_weighted_us: 1.67,
            tables_moved: 3,
            build_us: 5200.0,
            swap_us: 4.0,
        }]);
        let encoded = microrec_json::to_string(&extended);
        let back: ServingFrontierRecord = microrec_json::from_str(&encoded).unwrap();
        assert_eq!(back, extended);
        let migrations = back.migrations.unwrap();
        assert_eq!(migrations.len(), 1);
        assert_eq!(migrations[0].generation, 1);
        assert_eq!(migrations[0].tables_moved, 3);
    }

    #[test]
    fn serving_record_with_lookup_round_trips() {
        let old = r#"{
            "offered_qps": 1000.0, "qps": 990.0,
            "p50_us": 10.0, "p95_us": 20.0, "p99_us": 30.0, "p999_us": 40.0,
            "mean_latency_us": 12.0, "drop_rate": 0.01, "mean_batch_size": 4.0,
            "workers": 2, "max_batch": 8, "max_wait_us": 100, "queue_depth": 64,
            "completed": 990, "rejected": 10
        }"#;
        let mut rec: ServingFrontierRecord = microrec_json::from_str(old).unwrap();
        rec.lookup = Some(LookupCountersRecord {
            format: "f16".to_string(),
            cache_rows: 4096,
            hits: 900,
            misses: 100,
            hit_rate: 0.9,
            bytes_from_cache: 57600,
            bytes_from_memory: 3200,
            per_table_hits: vec![450, 450],
            per_table_misses: vec![50, 50],
            resident_hits: Some(80),
            cold_reads: Some(20),
            prefetch_hits: Some(18),
            bytes_from_cold: Some(640),
        });
        let encoded = microrec_json::to_string(&rec);
        let back: ServingFrontierRecord = microrec_json::from_str(&encoded).unwrap();
        assert_eq!(back, rec);
        let lookup = back.lookup.unwrap();
        assert_eq!(lookup.format, "f16");
        assert_eq!(lookup.per_table_hits, vec![450, 450]);
        assert_eq!(lookup.cold_reads, Some(20));
    }

    #[test]
    fn lookup_record_without_tier_fields_still_parses() {
        // A PR 4-era `lookup` block predates the tiered parameter store:
        // no per-tier keys; decoding must default each of them to `None`.
        let pre_tiered = r#"{
            "format": "f16", "cache_rows": 4096, "hits": 900, "misses": 100,
            "hit_rate": 0.9, "bytes_from_cache": 57600, "bytes_from_memory": 3200,
            "per_table_hits": [450, 450], "per_table_misses": [50, 50]
        }"#;
        let rec: LookupCountersRecord = microrec_json::from_str(pre_tiered).unwrap();
        assert_eq!(rec.resident_hits, None);
        assert_eq!(rec.cold_reads, None);
        assert_eq!(rec.prefetch_hits, None);
        assert_eq!(rec.bytes_from_cold, None);
        assert_eq!(rec.hits, 900);
        // And the tier-extended form round-trips.
        let tiered = LookupCountersRecord {
            resident_hits: Some(700),
            cold_reads: Some(200),
            prefetch_hits: Some(180),
            bytes_from_cold: Some(6400),
            ..rec
        };
        let encoded = microrec_json::to_string(&tiered);
        let back: LookupCountersRecord = microrec_json::from_str(&encoded).unwrap();
        assert_eq!(back, tiered);
    }

    #[test]
    fn cpu_points_are_self_consistent() {
        let report =
            end_to_end_report(&ModelSpec::small_production(), Precision::Fixed16, &[256]).unwrap();
        let p = report.cpu[0];
        let implied = p.batch as f64 / p.latency.as_secs();
        assert!((implied - p.items_per_sec).abs() / p.items_per_sec < 1e-9);
    }
}
