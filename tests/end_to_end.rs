//! Cross-crate functional integration: the MicroRec engine, the CPU
//! reference, the workload generator, and the serving simulators working
//! together.

use microrec_core::MicroRec;
use microrec_cpu::CpuReferenceEngine;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::{MemoryKind, SimTime};
use microrec_placement::HeuristicOptions;
use microrec_workload::{
    simulate_batched_serving, simulate_pipelined_serving, LatencyStats, PoissonArrivals,
    QueryGenConfig, QueryGenerator,
};

const SEED: u64 = 2024;

/// Generated queries flow through both engines and agree within
/// quantization error — on the *production-scale* small model.
#[test]
fn production_model_functional_equivalence() {
    let model = ModelSpec::small_production();
    let cpu = CpuReferenceEngine::build(&model, SEED).unwrap();
    let mut fpga =
        MicroRec::builder(model.clone()).precision(Precision::Fixed32).seed(SEED).build().unwrap();
    let mut queries = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
    for _ in 0..25 {
        let q = queries.next_query();
        let reference = cpu.predict(&q).unwrap();
        let quantized = fpga.predict(&q).unwrap();
        assert!(
            (reference - quantized).abs() < 1e-2,
            "fp32-fixed {quantized} vs reference {reference}"
        );
    }
}

/// Rank order is preserved under quantization: sorting candidates by
/// fixed-point CTR gives (nearly) the same top item as the reference.
#[test]
fn ranking_survives_quantization() {
    let model = ModelSpec::dlrm_rmc2(8, 16);
    let cpu = CpuReferenceEngine::build(&model, SEED).unwrap();
    let mut fpga =
        MicroRec::builder(model.clone()).precision(Precision::Fixed16).seed(SEED).build().unwrap();
    let mut queries = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
    let candidates = queries.next_batch(16);

    let mut ref_scores: Vec<(usize, f32)> =
        candidates.iter().enumerate().map(|(i, q)| (i, cpu.predict(q).unwrap())).collect();
    let mut fpga_scores: Vec<(usize, f32)> =
        candidates.iter().enumerate().map(|(i, q)| (i, fpga.predict(q).unwrap())).collect();
    ref_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    fpga_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    // The reference's top pick appears in the fixed-16 top 3.
    let ref_top = ref_scores[0].0;
    let fpga_top3: Vec<usize> = fpga_scores.iter().take(3).map(|s| s.0).collect();
    assert!(
        fpga_top3.contains(&ref_top),
        "reference top {ref_top} not in fixed-16 top-3 {fpga_top3:?}"
    );
}

/// The engine's memory statistics reflect the placement: production model
/// queries hit HBM, DDR, and on-chip banks in the expected proportions.
#[test]
fn memory_statistics_reflect_placement() {
    let model = ModelSpec::small_production();
    let mut engine = MicroRec::builder(model.clone()).seed(SEED).build().unwrap();
    let mut queries = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
    for q in queries.next_batch(10) {
        engine.predict(&q).unwrap();
    }
    let stats = engine.memory().stats();
    // 42 physical tables x 10 queries.
    assert_eq!(stats.total().reads, 420);
    let onchip = stats.by_kind(MemoryKind::Bram);
    assert_eq!(onchip.reads, 80, "8 on-chip tables x 10 queries");
    let hbm = stats.by_kind(MemoryKind::Hbm);
    let ddr = stats.by_kind(MemoryKind::Ddr);
    assert_eq!(hbm.reads + ddr.reads, 340, "34 DRAM tables x 10 queries");
    assert!(ddr.reads >= 10, "the giant tables live on DDR");
}

/// Serving comparison: under identical Poisson load, the pipelined engine
/// meets a 30 ms SLA that the batching CPU engine misses at high batch.
#[test]
fn serving_sla_comparison() {
    let model = ModelSpec::small_production();
    let engine = MicroRec::builder(model.clone()).precision(Precision::Fixed16).build().unwrap();
    let cpu = microrec_cpu::CpuTimingModel::aws_16vcpu();

    let mut arrivals = PoissonArrivals::new(60_000.0, 11).unwrap();
    let stream = arrivals.take(20_000);
    let sla = SimTime::from_ms(30.0);

    let cpu_latencies = simulate_batched_serving(
        &stream,
        2048,
        SimTime::from_ms(15.0),
        cpu.total_time(&model, 2048),
    );
    let fpga_latencies = simulate_pipelined_serving(
        &stream,
        engine.pipeline().initiation_interval(),
        engine.latency(),
    );
    let cpu_hit = LatencyStats::sla_hit_rate(&cpu_latencies, sla);
    let fpga_hit = LatencyStats::sla_hit_rate(&fpga_latencies, sla);
    assert!(fpga_hit > 0.999, "pipelined SLA hit {fpga_hit}");
    assert!(fpga_hit > cpu_hit, "fpga {fpga_hit} must beat cpu {cpu_hit}");
    let fpga_stats = LatencyStats::from_samples(&fpga_latencies).unwrap();
    assert!(fpga_stats.p99.as_us() < 1_000.0, "p99 {}", fpga_stats.p99);
}

/// The ablation path works end to end: an engine built with merging
/// disabled has strictly worse lookup latency but identical predictions.
#[test]
fn ablation_engines_agree_functionally() {
    let model = ModelSpec::small_production();
    let mut merged = MicroRec::builder(model.clone()).seed(SEED).build().unwrap();
    let mut unmerged = MicroRec::builder(model.clone())
        .seed(SEED)
        .search_options(HeuristicOptions { allow_merge: false, ..Default::default() })
        .build()
        .unwrap();
    assert!(merged.placement_cost().lookup_latency < unmerged.placement_cost().lookup_latency);
    let mut queries = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
    for q in queries.next_batch(10) {
        assert_eq!(merged.predict(&q).unwrap(), unmerged.predict(&q).unwrap());
    }
}

/// Multi-lookup (DLRM) models work across the whole stack, including
/// replica round-robin in the memory path.
#[test]
fn dlrm_multi_lookup_end_to_end() {
    let model = ModelSpec::dlrm_rmc2(8, 8);
    let mut engine =
        MicroRec::builder(model.clone()).precision(Precision::Fixed32).seed(SEED).build().unwrap();
    assert_eq!(engine.placement_cost().dram_rounds, 1, "replication flattens 32 lookups");
    let mut queries = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
    let batch = queries.next_batch(5);
    let scores = engine.predict_batch(&batch).unwrap();
    assert_eq!(scores.len(), 5);
    for s in scores {
        assert!(s > 0.0 && s < 1.0);
    }
    // 8 tables x 4 lookups x 5 queries.
    assert_eq!(engine.memory().stats().total().reads, 160);
}

/// The umbrella crate re-exports compose.
#[test]
fn facade_reexports() {
    let model = microrec_repro::embedding::ModelSpec::dlrm_rmc2(4, 4);
    let cpu = microrec_repro::cpu::CpuReferenceEngine::build(&model, 1).unwrap();
    let q = vec![0u64; 16];
    let _ = cpu.predict(&q).unwrap();
    let t = microrec_repro::memsim::SimTime::from_us(1.0);
    assert_eq!(t.as_ns(), 1000.0);
}
