//! Staged dataflow pipeline: the monolithic predict path decomposed into
//! FIFO-connected stages, mirroring the paper's accelerator structure
//! (Figure 1: embedding lookup → concatenation → one PE group per FC
//! layer, coupled by on-chip FIFOs so item *i+1*'s lookup overlaps item
//! *i*'s GEMM).
//!
//! The topology is described by a [`PipelinePlan`]: each stage runs as
//! one or more parallel **lanes** (threads), and adjacent FC layers can
//! be **fused** into one stage when their occupancy counters show the
//! extra thread would mostly stall. The **lookup** stage owns one engine
//! per lane (memory simulator, arena, cache) and produces the quantized
//! concatenated feature vector; each **fc** stage owns its group of
//! pre-packed layers ([`PackedLayer`], shared read-only across lanes)
//! and a per-lane scratch buffer; the **sink** stage turns the final
//! activation into the CTR and recycles the job shell back to the
//! caller.
//!
//! Stages are connected by the bounded SPSC rings vendored in
//! `microrec-par`. Between a stage with P lanes and one with C lanes
//! sits a P×C ring *mesh*, so every ring keeps exactly one producer and
//! one consumer. Item *q* is processed by lane *q mod P* of a P-lane
//! stage; the fan-out side deals items over the mesh by a deterministic
//! cyclic schedule and the fan-in side ([`microrec_par::FanIn`])
//! re-emits them in sequence order, parking early arrivals from fast
//! lanes in a pre-allocated reorder buffer. Dispatch is deterministic,
//! so results are **bit-identical** to [`MicroRec::predict`] at every
//! lane count: the same engine gather, the same [`PackedLayer`] kernels,
//! the same final `to_f32`, in the same order.
//!
//! Failure containment: a malformed query turns into an error *job* that
//! flows through the remaining stages untouched, so one bad item never
//! stalls its neighbours. A panicking lane closes its rings on unwind;
//! the close cascades lane by lane to the result ring, every in-flight
//! item fails with a runtime error, and the executor reports unhealthy —
//! it never wedges.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;

use microrec_dnn::{forward_layers, FixedNum, PackedLayer, PackedMlp, Q16, Q32};
use microrec_embedding::Precision;
use microrec_par::{FanIn, FanOut, Sequenced, SpscPushError, SpscRing};

use crate::engine::MicroRec;
use crate::error::MicroRecError;

pub mod plan;

pub use plan::{Calibration, FcStage, PipelinePlan};

/// How the serving runtime executes inference on each worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// The classic path: one thread per worker runs gather + full MLP
    /// back to back through [`MicroRec::predict_batch`].
    #[default]
    Monolithic,
    /// The staged dataflow path: each worker owns a [`PipelineExecutor`]
    /// whose lookup/fc/sink stages run on their own threads, connected by
    /// bounded FIFOs (the fixed per-layer, one-lane topology).
    Pipelined,
    /// The staged path with the lookup stage replicated across two lanes
    /// ([`PipelinePlan::replicated_default`]): deterministic lane
    /// fan-out/fan-in without a calibration pass.
    Replicated,
    /// Calibrate at startup ([`PipelinePlan::calibrate`]) and route to
    /// whichever of the other modes the measured cost model picks.
    Auto,
    /// Build the full path matrix ([`crate::PathSet`]) per worker and
    /// route every formed batch to its predicted-fastest path, with EWMA
    /// feedback and the SLO guard (see [`crate::PathCostModel`]).
    Routed,
}

impl ExecutionMode {
    /// Stable lower-case name for reports and the CLI.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ExecutionMode::Monolithic => "monolithic",
            ExecutionMode::Pipelined => "pipelined",
            ExecutionMode::Replicated => "replicated",
            ExecutionMode::Auto => "auto",
            ExecutionMode::Routed => "routed",
        }
    }
}

/// Configuration of a [`PipelineExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Capacity of each inter-stage FIFO, in jobs. Depth 1 serializes the
    /// stages (useful as a counter-case); the default of 4 lets short
    /// stage-time imbalances absorb into the rings.
    pub fifo_depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { fifo_depth: 4 }
    }
}

/// Point-in-time counters of one pipeline stage (summed across workers
/// when read through the serving runtime; lanes of one stage share the
/// counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage name: `"lookup"`, `"fc0"`…`"fcN"` (`"fc0-2"` when fused),
    /// or `"sink"`.
    pub name: String,
    /// Parallel lanes this stage runs as.
    pub lanes: u64,
    /// Jobs this stage processed (summed across its lanes).
    pub items: u64,
    /// Pops that found the input FIFO empty (the stage was starved).
    pub stalls: u64,
    /// Pushes that found the output FIFO full (the stage was blocked by
    /// its consumer).
    pub backpressure: u64,
    /// Sum over pops of the input-FIFO occupancy observed at that pop
    /// (including the popped job); divide by `items` for the mean.
    pub occupancy_sum: u64,
}

impl StageSnapshot {
    /// Mean input-FIFO occupancy observed at pop time (0 when idle).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.items as f64
        }
    }
}

/// Live counters of one stage, updated by its lane threads with relaxed
/// atomics (safe for any number of lanes).
#[derive(Debug)]
struct StageState {
    name: String,
    lanes: u64,
    items: AtomicU64,
    stalls: AtomicU64,
    backpressure: AtomicU64,
    occupancy_sum: AtomicU64,
}

impl StageState {
    fn named(name: String, lanes: usize) -> Self {
        StageState {
            name,
            lanes: lanes as u64,
            items: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            backpressure: AtomicU64::new(0),
            occupancy_sum: AtomicU64::new(0),
        }
    }
}

/// Counter block shared between the lane threads, the executor, and the
/// serving runtime's snapshot path.
#[derive(Debug)]
pub(crate) struct PipelineShared {
    stages: Vec<StageState>,
    poisoned: AtomicBool,
}

impl PipelineShared {
    pub(crate) fn snapshots(&self) -> Vec<StageSnapshot> {
        self.stages
            .iter()
            .map(|s| StageSnapshot {
                name: s.name.clone(),
                lanes: s.lanes,
                items: s.items.load(Relaxed),
                stalls: s.stalls.load(Relaxed),
                backpressure: s.backpressure.load(Relaxed),
                occupancy_sum: s.occupancy_sum.load(Relaxed),
            })
            .collect()
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Relaxed)
    }
}

/// Sentinel: no stage is poisoned (jobs carry this in `poison_at`).
const NO_POISON: usize = usize::MAX;

/// One query's travelling state. The shell (both `Vec`s) is recycled
/// through the owner's free list, so the steady-state pipeline allocates
/// nothing per item.
#[derive(Debug)]
struct PipeJob<T> {
    seq: u64,
    query: Vec<u64>,
    data: Vec<T>,
    err: Option<MicroRecError>,
    poison_at: usize,
}

impl<T> Sequenced for PipeJob<T> {
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// What the sink hands back: the answer plus the job shell for reuse.
#[derive(Debug)]
struct PipeResult<T> {
    seq: u64,
    value: Result<f32, MicroRecError>,
    shell: PipeJob<T>,
}

/// Counted pop from a lane's fan-in: records a stall when no item is
/// immediately available and the observed occupancy + item count on
/// success.
fn pop_counted<T: Sequenced>(input: &mut FanIn<T>, stage: &StageState) -> Option<T> {
    if !input.is_ready() && !input.expected_closed() {
        stage.stalls.fetch_add(1, Relaxed);
    }
    let item = input.pop()?;
    stage.occupancy_sum.fetch_add(input.occupancy() as u64 + 1, Relaxed);
    stage.items.fetch_add(1, Relaxed);
    Some(item)
}

/// Counted push into a lane's fan-out: records backpressure when the
/// scheduled output ring is full, then blocks until space frees. `Err`
/// hands the item back on a closed ring.
fn push_counted<T>(output: &mut FanOut<T>, stage: &StageState, item: T) -> Result<(), T> {
    match output.try_push(item) {
        Ok(()) => Ok(()),
        Err(SpscPushError::Closed(item)) => Err(item),
        Err(SpscPushError::Full(item)) => {
            stage.backpressure.fetch_add(1, Relaxed);
            output.push_blocking(item)
        }
    }
}

/// Counted push for the sink's plain result ring (single consumer, no
/// fan-out needed).
fn push_counted_ring<T>(ring: &SpscRing<T>, stage: &StageState, item: T) -> Result<(), T> {
    match ring.try_push(item) {
        Ok(()) => Ok(()),
        Err(SpscPushError::Closed(item)) => Err(item),
        Err(SpscPushError::Full(item)) => {
            stage.backpressure.fetch_add(1, Relaxed);
            ring.push_blocking(item)
        }
    }
}

/// Unwind guard every lane holds: closing its whole input column and
/// output row on exit — normal or panicking — makes shutdown (and lane
/// failure) cascade through the pipeline instead of wedging it. On a
/// panic it also marks the pipeline poisoned so the owner can report
/// *why* the rings died.
struct LaneGuard<In, Out> {
    inputs: Vec<Arc<SpscRing<In>>>,
    outputs: Vec<Arc<SpscRing<Out>>>,
    shared: Arc<PipelineShared>,
}

impl<In, Out> Drop for LaneGuard<In, Out> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.poisoned.store(true, Relaxed);
        }
        for ring in &self.inputs {
            ring.close();
        }
        for ring in &self.outputs {
            ring.close();
        }
    }
}

/// The ring mesh in front of one stage: `mesh[p][c]` carries jobs from
/// producer lane `p` to consumer lane `c`.
type StageMesh<T> = Vec<Vec<Arc<SpscRing<PipeJob<T>>>>>;

/// How one lane is wired into the meshes on either side of its stage:
/// the ring column it consumes, the ring row it feeds, and the cyclic
/// schedules plus sequence arithmetic that keep order deterministic.
struct LaneWiring<T> {
    in_rings: Vec<Arc<SpscRing<PipeJob<T>>>>,
    in_schedule: Vec<usize>,
    first_seq: u64,
    seq_stride: u64,
    reorder_capacity: usize,
    out_rings: Vec<Arc<SpscRing<PipeJob<T>>>>,
    out_schedule: Vec<usize>,
}

impl<T: Send> LaneWiring<T> {
    fn guard(&self, shared: &Arc<PipelineShared>) -> LaneGuard<PipeJob<T>, PipeJob<T>> {
        LaneGuard {
            inputs: self.in_rings.clone(),
            outputs: self.out_rings.clone(),
            shared: Arc::clone(shared),
        }
    }

    fn split(self) -> (FanIn<PipeJob<T>>, FanOut<PipeJob<T>>) {
        let input = FanIn::new(
            self.in_rings,
            self.in_schedule,
            self.first_seq,
            self.seq_stride,
            self.reorder_capacity,
        );
        let output = FanOut::new(self.out_rings, self.out_schedule);
        (input, output)
    }
}

/// Stage 0, one lane: owns an engine; gathers + quantizes the feature
/// vector for every item whose sequence number lands on this lane.
fn lookup_loop<T: FixedNum + Send>(
    mut engine: MicroRec,
    wiring: LaneWiring<T>,
    shared: &Arc<PipelineShared>,
) -> MicroRec {
    // lint: allow(transitive-hot-path-alloc) lane guard is wired once, before the steady-state loop
    let _guard = wiring.guard(shared);
    // lint: allow(transitive-hot-path-alloc) fan-in/fan-out construction happens before the first job
    let (mut input, mut output) = wiring.split();
    let stage = &shared.stages[0];
    let mut features: Vec<f32> = Vec::with_capacity(engine.model().feature_len() as usize);
    while let Some(mut job) = pop_counted(&mut input, stage) {
        if job.err.is_none() {
            if job.poison_at == 0 {
                // lint: allow(no-panic-serving) test-only fault injection; the guard contains it
                panic!("pipeline stage 'lookup' poisoned by test hook");
            }
            match engine.gather_features_into(&job.query, &mut features) {
                Ok(()) => {
                    job.data.clear();
                    job.data.extend(features.iter().map(|&v| T::from_f32(v)));
                }
                Err(e) => job.err = Some(e),
            }
        }
        if push_counted(&mut output, stage, job).is_err() {
            break;
        }
    }
    engine
}

/// Stages 1..=F, one lane: applies its stage's fused group of packed
/// layers back to back, ping-ponging the job's payload with a per-lane
/// scratch buffer. The layer group itself is shared read-only across
/// the stage's lanes.
fn fc_loop<T: FixedNum + Send>(
    layers: &Arc<Vec<PackedLayer<T>>>,
    stage_index: usize,
    wiring: LaneWiring<T>,
    shared: &Arc<PipelineShared>,
) {
    // lint: allow(transitive-hot-path-alloc) lane guard is wired once, before the steady-state loop
    let _guard = wiring.guard(shared);
    // lint: allow(transitive-hot-path-alloc) fan-in/fan-out construction happens before the first job
    let (mut input, mut output) = wiring.split();
    let stage = &shared.stages[stage_index];
    let width = layers.iter().map(PackedLayer::output_dim).max().unwrap_or(0);
    let mut scratch: Vec<T> = Vec::with_capacity(width);
    while let Some(mut job) = pop_counted(&mut input, stage) {
        if job.err.is_none() {
            if job.poison_at == stage_index {
                // lint: allow(no-panic-serving) test-only fault injection; the guard contains it
                panic!("pipeline stage '{}' poisoned by test hook", stage.name);
            }
            if let Err(e) = forward_layers(layers, 1, &mut job.data, &mut scratch) {
                job.err = Some(MicroRecError::Dnn(e));
            }
        }
        if push_counted(&mut output, stage, job).is_err() {
            break;
        }
    }
}

/// Final stage, always one lane: converts the last activation (or the
/// carried error) into the caller-visible result and sends the emptied
/// shell back for reuse.
fn sink_guard<T: FixedNum + Send>(
    in_rings: &[Arc<SpscRing<PipeJob<T>>>],
    output: &Arc<SpscRing<PipeResult<T>>>,
    shared: &Arc<PipelineShared>,
) -> LaneGuard<PipeJob<T>, PipeResult<T>> {
    LaneGuard {
        inputs: in_rings.to_vec(),
        outputs: vec![Arc::clone(output)],
        shared: Arc::clone(shared),
    }
}

fn sink_loop<T: FixedNum + Send>(
    index: usize,
    in_rings: Vec<Arc<SpscRing<PipeJob<T>>>>,
    in_schedule: Vec<usize>,
    reorder_capacity: usize,
    output: &Arc<SpscRing<PipeResult<T>>>,
    shared: &Arc<PipelineShared>,
) {
    // lint: allow(transitive-hot-path-alloc) lane guard is wired once, before the steady-state loop
    let _guard = sink_guard(&in_rings, output, shared);
    // lint: allow(transitive-hot-path-alloc) fan-in construction happens before the first job
    let mut input = FanIn::new(in_rings, in_schedule, 0, 1, reorder_capacity);
    let stage = &shared.stages[index];
    while let Some(mut job) = pop_counted(&mut input, stage) {
        if job.err.is_none() && job.poison_at == index {
            // lint: allow(no-panic-serving) test-only fault injection; the guard contains it
            panic!("pipeline stage 'sink' poisoned by test hook");
        }
        let value = match job.err.take() {
            Some(e) => Err(e),
            None => Ok(job.data.first().map_or(0.0, |v| v.to_f32())),
        };
        job.query.clear();
        job.data.clear();
        let seq = job.seq;
        if push_counted_ring(output, stage, PipeResult { seq, value, shell: job }).is_err() {
            break;
        }
    }
}

/// `(offset + k * stride) mod modulo` for one full period: the cyclic
/// order in which a lane visits its ring row/column. Deterministic, so
/// both sides of a mesh agree on where every sequence number travels.
fn cycle_schedule(offset: usize, stride: usize, modulo: usize) -> Vec<usize> {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let period = modulo / gcd(stride, modulo).max(1);
    (0..period.max(1)).map(|k| (offset + k * stride) % modulo).collect()
}

/// The executor at one concrete datapath precision.
#[derive(Debug)]
struct TypedPipeline<T> {
    submit: FanOut<PipeJob<T>>,
    results: Arc<SpscRing<PipeResult<T>>>,
    shared: Arc<PipelineShared>,
    /// Recycled job shells; bounded by the pipeline's in-flight capacity.
    free: Vec<PipeJob<T>>,
    next_seq: u64,
    poison_at: usize,
    lookups: Vec<JoinHandle<MicroRec>>,
    stages: Vec<JoinHandle<()>>,
}

impl<T: FixedNum + Send + Sync + 'static> TypedPipeline<T> {
    fn build(engines: Vec<MicroRec>, plan: &PipelinePlan) -> Result<Self, MicroRecError> {
        let packed: PackedMlp<T> = PackedMlp::pack(engines[0].mlp());
        let layers = packed.into_layers();
        plan.validate(layers.len())?;
        if engines.len() != plan.lookup_lanes {
            return Err(MicroRecError::Runtime(format!(
                "plan wants {} lookup lanes but {} engines were provided",
                plan.lookup_lanes,
                engines.len()
            )));
        }
        let depth = plan.fifo_depth.max(1);
        let spin = plan.spin_rounds;

        // Split the packed layers into the plan's fused groups, shared
        // read-only across each stage's lanes.
        let mut groups: Vec<Arc<Vec<PackedLayer<T>>>> = Vec::with_capacity(plan.fc.len());
        let mut names: Vec<String> = Vec::with_capacity(plan.fc.len());
        let mut layer_iter = layers.into_iter();
        let mut first = 0usize;
        for stage in &plan.fc {
            let group: Vec<PackedLayer<T>> = layer_iter.by_ref().take(stage.layers).collect();
            names.push(if stage.layers == 1 {
                format!("fc{first}")
            } else {
                format!("fc{first}-{}", first + stage.layers - 1)
            });
            first += stage.layers;
            groups.push(Arc::new(group));
        }

        // Lanes per stage: lookup, each FC stage, sink.
        let mut lane_counts: Vec<usize> = Vec::with_capacity(plan.num_stages());
        lane_counts.push(plan.lookup_lanes);
        lane_counts.extend(plan.fc.iter().map(|s| s.lanes));
        lane_counts.push(1);

        let mut stage_states = Vec::with_capacity(plan.num_stages());
        stage_states.push(StageState::named("lookup".to_string(), plan.lookup_lanes));
        for (name, stage) in names.iter().zip(&plan.fc) {
            stage_states.push(StageState::named(name.clone(), stage.lanes));
        }
        stage_states.push(StageState::named("sink".to_string(), 1));
        let shared =
            Arc::new(PipelineShared { stages: stage_states, poisoned: AtomicBool::new(false) });

        // meshes[s][p][c] feeds stage s's lane c from producer lane p;
        // mesh 0's single producer is the owner. The sink writes the
        // separate result ring.
        let ring = || Arc::new(SpscRing::with_spin(depth, spin));
        let mut meshes: Vec<StageMesh<T>> = Vec::new();
        let mut mesh_capacity = 0usize;
        for (s, &consumers) in lane_counts.iter().enumerate() {
            let producers = if s == 0 { 1 } else { lane_counts[s - 1] };
            mesh_capacity += producers * consumers * depth;
            meshes.push((0..producers).map(|_| (0..consumers).map(|_| ring()).collect()).collect());
        }
        // The result ring can hold everything that can possibly be in
        // flight (every mesh slot plus one job in each lane's hands), so
        // the sink never blocks on an owner that is still submitting.
        let total_lanes: usize = lane_counts.iter().sum();
        let results: Arc<SpscRing<PipeResult<T>>> =
            Arc::new(SpscRing::new(mesh_capacity + total_lanes + 1));

        let submit = FanOut::new(meshes[0][0].clone(), cycle_schedule(0, 1, plan.lookup_lanes));

        let mut pipeline = TypedPipeline {
            submit,
            results: Arc::clone(&results),
            shared: Arc::clone(&shared),
            free: Vec::new(),
            next_seq: 0,
            poison_at: NO_POISON,
            lookups: Vec::with_capacity(plan.lookup_lanes),
            stages: Vec::new(),
        };

        let spawn_failed = |pipeline: &mut Self, name: &str, e: std::io::Error| {
            pipeline.submit.close_all();
            pipeline.join_all();
            MicroRecError::Runtime(format!("failed to spawn pipeline stage {name}: {e}"))
        };

        // The wiring of lane `c` of stage `s`: it consumes its column of
        // mesh s following the producer cycle, and feeds its row of mesh
        // s+1 following the consumer cycle.
        let wire = |s: usize, c: usize| -> LaneWiring<T> {
            let producers = if s == 0 { 1 } else { lane_counts[s - 1] };
            let consumers = lane_counts[s];
            let in_rings: Vec<_> = (0..producers).map(|p| Arc::clone(&meshes[s][p][c])).collect();
            let next_consumers = lane_counts.get(s + 1).copied().unwrap_or(1);
            let out_rings: Vec<_> =
                if s + 1 < meshes.len() { meshes[s + 1][c].clone() } else { Vec::new() };
            LaneWiring {
                in_rings,
                in_schedule: cycle_schedule(c, consumers, producers),
                first_seq: c as u64,
                seq_stride: consumers as u64,
                reorder_capacity: producers * depth,
                out_rings,
                out_schedule: cycle_schedule(c, consumers, next_consumers),
            }
        };

        for (lane, engine) in engines.into_iter().enumerate() {
            let handle =
                std::thread::Builder::new().name(format!("microrec-stage-lookup.{lane}")).spawn({
                    let wiring = wire(0, lane);
                    let shared = Arc::clone(&shared);
                    move || lookup_loop(engine, wiring, &shared)
                });
            match handle {
                Ok(h) => pipeline.lookups.push(h),
                Err(e) => return Err(spawn_failed(&mut pipeline, "lookup", e)),
            }
        }

        for (i, group) in groups.iter().enumerate() {
            let stage_index = i + 1;
            for lane in 0..plan.fc[i].lanes {
                let handle = std::thread::Builder::new()
                    .name(format!("microrec-stage-{}.{lane}", names[i]))
                    .spawn({
                        let group = Arc::clone(group);
                        let wiring = wire(stage_index, lane);
                        let shared = Arc::clone(&shared);
                        move || fc_loop(&group, stage_index, wiring, &shared)
                    });
                match handle {
                    Ok(h) => pipeline.stages.push(h),
                    Err(e) => return Err(spawn_failed(&mut pipeline, &names[i], e)),
                }
            }
        }

        let sink_index = lane_counts.len() - 1;
        let sink_producers = lane_counts[sink_index - 1];
        let handle = std::thread::Builder::new().name("microrec-stage-sink".to_string()).spawn({
            let in_rings: Vec<_> =
                (0..sink_producers).map(|p| Arc::clone(&meshes[sink_index][p][0])).collect();
            let in_schedule = cycle_schedule(0, 1, sink_producers);
            let reorder_capacity = sink_producers * depth;
            let output = Arc::clone(&results);
            let shared = Arc::clone(&shared);
            move || sink_loop(sink_index, in_rings, in_schedule, reorder_capacity, &output, &shared)
        });
        match handle {
            Ok(h) => pipeline.stages.push(h),
            Err(e) => return Err(spawn_failed(&mut pipeline, "sink", e)),
        }

        Ok(pipeline)
    }

    /// Why submissions or results fail once the rings are dead.
    fn dead_error(&self) -> MicroRecError {
        if self.shared.is_poisoned() {
            MicroRecError::Runtime("pipeline stage panicked; executor is dead".into())
        } else {
            MicroRecError::Runtime("pipeline is shut down".into())
        }
    }

    /// A job shell for `query`, recycled from the free list when one is
    /// available (steady state never allocates new shells).
    fn job_for(&mut self, query: &[u64]) -> PipeJob<T> {
        let mut job = self.free.pop().unwrap_or_else(|| PipeJob {
            seq: 0,
            // lint: allow(transitive-hot-path-alloc) fresh shell only while the free list warms up; steady state recycles
            query: Vec::new(),
            // lint: allow(transitive-hot-path-alloc) fresh shell only while the free list warms up; steady state recycles
            data: Vec::new(),
            err: None,
            poison_at: NO_POISON,
        });
        job.seq = self.next_seq;
        self.next_seq += 1;
        job.query.clear();
        job.query.extend_from_slice(query);
        job.data.clear();
        job.err = None;
        job.poison_at = self.poison_at;
        job
    }

    fn recycle(&mut self, mut shell: PipeJob<T>) {
        shell.query.clear();
        shell.data.clear();
        shell.err = None;
        self.free.push(shell);
    }

    /// One query through the whole pipeline (submit, then wait for its
    /// result). Bit-identical to the monolithic path.
    fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        let job = self.job_for(query);
        let want = job.seq;
        if let Err(rejected) = self.submit.push_blocking(job) {
            self.recycle(rejected);
            return Err(self.dead_error());
        }
        while let Some(result) = self.results.pop_blocking() {
            let seq = result.seq;
            let value = result.value;
            self.recycle(result.shell);
            if seq == want {
                return value;
            }
        }
        Err(self.dead_error())
    }

    /// Streams a batch through the pipeline, keeping every lane busy:
    /// submissions interleave with result drains, so up to the pipeline's
    /// whole in-flight capacity of queries overlap. Results come back in
    /// submission order (the fan-in restores it at every join). Matches
    /// [`MicroRec::predict_batch`]: any failed item fails the batch.
    fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        let mut out = Vec::with_capacity(queries.len());
        let mut first_err: Option<MicroRecError> = None;
        let mut submitted = 0usize;
        while out.len() < queries.len() {
            // Fill the submit mesh without blocking. A Full rejection
            // leaves the fan-out cursor in place, so un-claiming the
            // sequence number keeps job seq and dispatch lane in step.
            while submitted < queries.len() {
                let job = self.job_for(&queries[submitted]);
                match self.submit.try_push(job) {
                    Ok(()) => submitted += 1,
                    Err(SpscPushError::Full(job)) => {
                        self.recycle(job);
                        self.next_seq -= 1;
                        break;
                    }
                    Err(SpscPushError::Closed(job)) => {
                        self.recycle(job);
                        return Err(self.dead_error());
                    }
                }
            }
            // Drain one result. Blocking is safe: out.len() < submitted
            // here (a full submit ring implies jobs in flight), so the
            // pipeline always has something to deliver.
            match self.results.pop_blocking() {
                Some(result) => {
                    match result.value {
                        Ok(v) => out.push(v),
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                            out.push(f32::NAN);
                        }
                    }
                    self.recycle(result.shell);
                }
                None => return Err(self.dead_error()),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    fn join_all(&mut self) -> Vec<MicroRec> {
        // lint: allow(transitive-hot-path-alloc) shutdown path: runs once when the executor winds down
        let engines = self.lookups.drain(..).filter_map(|h| h.join().ok()).collect();
        for handle in self.stages.drain(..) {
            let _ = handle.join();
        }
        engines
    }

    /// Closes the submit mesh, drains the stages, joins their threads,
    /// and hands every lane's engine back (lanes whose thread panicked
    /// are missing from the result).
    fn shutdown(&mut self) -> Vec<MicroRec> {
        self.submit.close_all();
        self.join_all()
    }
}

impl<T> Drop for TypedPipeline<T> {
    fn drop(&mut self) {
        self.submit.close_all();
        for handle in self.lookups.drain(..) {
            let _ = handle.join();
        }
        for handle in self.stages.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Precision dispatch: the pipeline is monomorphized per datapath type,
/// chosen once from the engines' precision.
#[derive(Debug)]
enum TypedExecutor {
    F32(TypedPipeline<f32>),
    Q16(TypedPipeline<Q16>),
    Q32(TypedPipeline<Q32>),
}

/// Runs one or more [`MicroRec`] engines as a staged dataflow pipeline:
/// lanes of lookup / fused-FC / sink stages connected by bounded SPSC
/// ring meshes, with per-stage occupancy/stall/backpressure counters.
///
/// Predictions are bit-identical to [`MicroRec::predict`] at every
/// precision, arena format, and lane count; see the module docs for the
/// argument.
///
/// # Examples
///
/// ```
/// use microrec_core::{MicroRec, PipelineConfig, PipelineExecutor};
/// use microrec_embedding::ModelSpec;
///
/// let engine = MicroRec::builder(ModelSpec::dlrm_rmc2(4, 4)).build()?;
/// let mut exec = PipelineExecutor::new(engine, PipelineConfig::default())?;
/// let ctr = exec.predict(&vec![7u64; 16])?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// let stats = exec.stage_stats();
/// assert_eq!(stats.first().map(|s| s.name.as_str()), Some("lookup"));
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
#[derive(Debug)]
pub struct PipelineExecutor {
    inner: TypedExecutor,
    plan: PipelinePlan,
}

impl PipelineExecutor {
    /// Decomposes `engine` into the fixed per-layer topology (one
    /// single-lane stage per FC layer) and starts one thread per stage.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError::Runtime`] if a stage thread cannot be
    /// spawned (already-spawned stages are shut down and joined).
    pub fn new(engine: MicroRec, config: PipelineConfig) -> Result<Self, MicroRecError> {
        let num_layers = engine.model().hidden.len() + 1;
        let plan = PipelinePlan::per_layer(num_layers, config.fifo_depth);
        Self::with_plan(vec![engine], &plan)
    }

    /// Builds the topology `plan` describes. `engines` supplies one
    /// engine per lookup lane; for bit-identical results across lane
    /// counts they must be built from the same builder (same seed and
    /// arena), which makes their gathers interchangeable.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError::Runtime`] when `engines` is empty or
    /// mismatches the plan's lookup lanes, the engines disagree on
    /// precision, the plan fails [`PipelinePlan::validate`], or a stage
    /// thread cannot be spawned.
    pub fn with_plan(engines: Vec<MicroRec>, plan: &PipelinePlan) -> Result<Self, MicroRecError> {
        let Some(first) = engines.first() else {
            return Err(MicroRecError::Runtime("pipeline needs at least one engine".into()));
        };
        let precision = first.precision();
        if engines.iter().any(|e| e.precision() != precision) {
            return Err(MicroRecError::Runtime(
                "all lookup-lane engines must share one precision".into(),
            ));
        }
        let inner = match precision {
            Precision::F32 => TypedExecutor::F32(TypedPipeline::build(engines, plan)?),
            Precision::Fixed16 => TypedExecutor::Q16(TypedPipeline::build(engines, plan)?),
            Precision::Fixed32 => TypedExecutor::Q32(TypedPipeline::build(engines, plan)?),
        };
        Ok(PipelineExecutor { inner, plan: plan.clone() })
    }

    /// The topology this executor runs.
    #[must_use]
    pub fn plan(&self) -> &PipelinePlan {
        &self.plan
    }

    /// Predicts one query's CTR through the staged pipeline.
    ///
    /// # Errors
    ///
    /// Returns the engine's error for a malformed query (the error rode
    /// through the pipeline as a failed job), or
    /// [`MicroRecError::Runtime`] once the executor is dead.
    pub fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.predict(query),
            TypedExecutor::Q16(p) => p.predict(query),
            TypedExecutor::Q32(p) => p.predict(query),
        }
    }

    /// Streams a batch through the pipeline with all lanes overlapping.
    /// Output order matches input order; any failed item fails the batch
    /// (same contract as [`MicroRec::predict_batch`]).
    ///
    /// # Errors
    ///
    /// Returns the first per-item engine error, or
    /// [`MicroRecError::Runtime`] once the executor is dead.
    pub fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.predict_batch(queries),
            TypedExecutor::Q16(p) => p.predict_batch(queries),
            TypedExecutor::Q32(p) => p.predict_batch(queries),
        }
    }

    /// Per-stage counters: lanes, items, stalls, backpressure, occupancy.
    #[must_use]
    pub fn stage_stats(&self) -> Vec<StageSnapshot> {
        self.shared().snapshots()
    }

    /// Number of stages (lookup + FC stages + sink).
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.shared().stages.len()
    }

    /// `false` once any lane thread has panicked.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        !self.shared().is_poisoned()
    }

    /// The counter block, for the serving runtime's snapshot path.
    pub(crate) fn shared(&self) -> &Arc<PipelineShared> {
        match &self.inner {
            TypedExecutor::F32(p) => &p.shared,
            TypedExecutor::Q16(p) => &p.shared,
            TypedExecutor::Q32(p) => &p.shared,
        }
    }

    /// Shuts the pipeline down (close, drain, join) and returns the
    /// first lookup lane's engine — with its accumulated memory/cache
    /// statistics — unless that lane panicked. Replicated lookups should
    /// use [`PipelineExecutor::shutdown_all`] so no lane's counters are
    /// dropped.
    #[must_use]
    pub fn shutdown(self) -> Option<MicroRec> {
        self.shutdown_all().into_iter().next()
    }

    /// Shuts the pipeline down and returns *every* lookup lane's engine,
    /// so per-lane cache and memory counters can be merged exactly once
    /// (lanes whose thread panicked are missing).
    #[must_use]
    pub fn shutdown_all(mut self) -> Vec<MicroRec> {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.shutdown(),
            TypedExecutor::Q16(p) => p.shutdown(),
            TypedExecutor::Q32(p) => p.shutdown(),
        }
    }

    /// Test hook: every job submitted after this call panics the lane of
    /// the given stage that processes it (0 = lookup, 1..=F = fc stages,
    /// F+1 = sink), simulating a lane fault. Not part of the public API.
    #[doc(hidden)]
    pub fn poison_stage(&mut self, index: usize) {
        match &mut self.inner {
            TypedExecutor::F32(p) => p.poison_at = index,
            TypedExecutor::Q16(p) => p.poison_at = index,
            TypedExecutor::Q32(p) => p.poison_at = index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_embedding::ModelSpec;

    fn toy_engine() -> MicroRec {
        MicroRec::builder(ModelSpec::dlrm_rmc2(4, 4)).seed(11).build().unwrap()
    }

    #[test]
    fn executor_matches_monolithic_predict() {
        let mut mono = toy_engine();
        let mut exec = PipelineExecutor::new(toy_engine(), PipelineConfig::default()).unwrap();
        // Stages: lookup + one per hidden layer + the output layer + sink.
        assert_eq!(exec.num_stages(), 3 + mono.model().hidden.len());
        for k in 0..30u64 {
            let q: Vec<u64> = (0..16).map(|j| (k * 7919 + j * 104_729) % 500_000).collect();
            let want = mono.predict(&q).unwrap();
            let got = exec.predict(&q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "query {k}");
        }
        let stats = exec.stage_stats();
        assert_eq!(stats.len(), exec.num_stages());
        assert!(stats.iter().all(|s| s.items == 30), "{stats:?}");
        assert!(stats.iter().all(|s| s.lanes == 1), "{stats:?}");
        assert_eq!(stats[0].name, "lookup");
        assert_eq!(stats.last().unwrap().name, "sink");
    }

    #[test]
    fn replicated_lanes_match_monolithic_predict() {
        let mut mono = toy_engine();
        let plan = PipelinePlan {
            fifo_depth: 2,
            spin_rounds: 8,
            lookup_lanes: 2,
            fc: vec![FcStage { layers: 1, lanes: 3 }, FcStage { layers: 3, lanes: 1 }],
        };
        let mut exec =
            PipelineExecutor::with_plan(vec![toy_engine(), toy_engine()], &plan).unwrap();
        assert_eq!(exec.num_stages(), 4, "lookup + 2 fused fc stages + sink");
        let queries: Vec<Vec<u64>> = (0..40u64)
            .map(|k| (0..16).map(|j| (k * 7919 + j * 104_729) % 500_000).collect())
            .collect();
        let want: Vec<f32> = queries.iter().map(|q| mono.predict(q).unwrap()).collect();
        let got = exec.predict_batch(&queries).unwrap();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "query {i}");
        }
        let stats = exec.stage_stats();
        assert_eq!(stats[0].lanes, 2);
        assert_eq!(stats[1].lanes, 3);
        assert_eq!(stats[1].name, "fc0");
        assert_eq!(stats[2].name, "fc1-3");
        assert_eq!(stats.iter().map(|s| s.items).max(), Some(40));
        let engines = exec.shutdown_all();
        assert_eq!(engines.len(), 2, "every lookup lane's engine comes back");
    }

    #[test]
    fn lookup_lanes_observe_a_published_generation() {
        use crate::epoch::{ArenaGeneration, GenerationCell};
        use microrec_embedding::RowFormat;
        use std::sync::Arc;
        // The gather runs on the lookup stage threads; a generation
        // published mid-serve must be adopted there at the next batch
        // boundary, on every lane, without changing any bits.
        let mut builder =
            MicroRec::builder(ModelSpec::dlrm_rmc2(4, 4)).seed(11).embedding_arena(RowFormat::F32);
        builder.prepare_shared_arena().unwrap();
        let arena = Arc::clone(builder.shared_arena_handle().unwrap());
        let cell = GenerationCell::new(ArenaGeneration::from_arena(Arc::clone(&arena)));
        let builder = builder.epoch_cell(Arc::clone(&cell));
        let plan = PipelinePlan {
            fifo_depth: 2,
            spin_rounds: 8,
            lookup_lanes: 2,
            fc: vec![FcStage { layers: 4, lanes: 1 }],
        };
        let engines = vec![builder.clone().build().unwrap(), builder.clone().build().unwrap()];
        let mut exec = PipelineExecutor::with_plan(engines, &plan).unwrap();
        let queries: Vec<Vec<u64>> = (0..24u64)
            .map(|k| (0..16).map(|j| (k * 7919 + j * 104_729) % 500_000).collect())
            .collect();
        let want = exec.predict_batch(&queries).unwrap();

        let channels: Vec<usize> = (0..arena.num_tables()).map(|i| (i + 1) % 2).collect();
        let rebuilt = arena.rebuild_with_channels(&channels, 1).unwrap();
        cell.publish(ArenaGeneration::from_arena(Arc::new(rebuilt)));

        let got = exec.predict_batch(&queries).unwrap();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "query {i} changed bits across the swap");
        }
        for engine in exec.shutdown_all() {
            assert_eq!(engine.store_generation(), 1, "a lookup lane missed the swap");
        }
    }

    #[test]
    fn malformed_query_fails_item_not_pipeline() {
        let mut exec = PipelineExecutor::new(toy_engine(), PipelineConfig::default()).unwrap();
        assert!(exec.predict(&[0u64; 3]).is_err(), "wrong arity must fail");
        // The pipeline survives and keeps serving.
        assert!(exec.is_healthy());
        let q = vec![5u64; 16];
        assert!(exec.predict(&q).is_ok());
    }

    #[test]
    fn shutdown_returns_engine_with_stats() {
        let mut exec = PipelineExecutor::new(toy_engine(), PipelineConfig::default()).unwrap();
        let q = vec![9u64; 16];
        exec.predict(&q).unwrap();
        let engine = exec.shutdown().expect("engine comes back");
        // 4 tables x 4 rounds of physical reads ran against its memory.
        assert_eq!(engine.memory().stats().total().reads, 16);
    }

    #[test]
    fn fifo_depth_one_still_correct() {
        let mut mono = toy_engine();
        let mut exec =
            PipelineExecutor::new(toy_engine(), PipelineConfig { fifo_depth: 1 }).unwrap();
        let queries: Vec<Vec<u64>> =
            (0..10).map(|k| (0..16).map(|j| (k * 13 + j) as u64 % 1000).collect()).collect();
        let want: Vec<f32> = queries.iter().map(|q| mono.predict(q).unwrap()).collect();
        let got = exec.predict_batch(&queries).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn cycle_schedule_is_a_full_period() {
        assert_eq!(cycle_schedule(0, 1, 3), vec![0, 1, 2]);
        assert_eq!(cycle_schedule(1, 3, 1), vec![0]);
        // 3 producers feeding 2 consumers: consumer 0 cycles producers
        // 0, 2, 1 (seqs 0, 2, 4 mod 3).
        assert_eq!(cycle_schedule(0, 2, 3), vec![0, 2, 1]);
        // 2 producers feeding 4 consumers: producer 0's items (seq 0,
        // 2, ...) land on consumers 0, 2 cyclically.
        assert_eq!(cycle_schedule(0, 2, 4), vec![0, 2]);
    }
}
