//! Embedding table storage.
//!
//! Two backings are provided behind one type:
//!
//! * **Materialized** — a flat `Vec<f32>`, used for real (small) tables and
//!   for physically built Cartesian products in tests.
//! * **Procedural** — contents derived on the fly from a seed with a
//!   [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-style hash. The
//!   15.1 GB production model cannot be held in host memory, and its exact
//!   values never matter to the paper's experiments — only its *shape* does.
//!   Procedural tables are bit-reproducible, so functional identities (e.g.
//!   Cartesian row = concatenation of member rows) remain exactly testable.

use crate::error::EmbeddingError;
use crate::precision::Precision;
use crate::spec::TableSpec;

/// Backing storage of an [`EmbeddingTable`].
#[derive(Debug, Clone, PartialEq)]
enum TableData {
    Materialized(Vec<f32>),
    Procedural { seed: u64 },
}

/// One embedding table: a spec plus its contents.
///
/// # Examples
///
/// ```
/// use microrec_embedding::{EmbeddingTable, TableSpec};
///
/// let spec = TableSpec::new("region", 100, 4);
/// let table = EmbeddingTable::procedural(spec, 42);
/// let mut row = vec![0.0f32; 4];
/// table.read_row(17, &mut row)?;
/// // Contents are deterministic in (seed, row, column):
/// let mut again = vec![0.0f32; 4];
/// table.read_row(17, &mut again)?;
/// assert_eq!(row, again);
/// # Ok::<(), microrec_embedding::EmbeddingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    spec: TableSpec,
    data: TableData,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic element value in `[-1, 1)` for procedural tables.
#[inline]
fn procedural_value(seed: u64, row: u64, col: u32) -> f32 {
    let h = splitmix64(seed ^ row.wrapping_mul(0xA24B_AED4_963E_E407) ^ u64::from(col) << 17);
    // Map the top 24 bits to [-1, 1) with full f32 mantissa coverage.
    let unit = (h >> 40) as f32 / (1u64 << 24) as f32;
    unit * 2.0 - 1.0
}

/// Deterministic synthetic dense features for a query: both engines (CPU
/// reference and MicroRec) derive the same dense vector from the sparse
/// indices, so functional equivalence holds for models with dense inputs.
/// Values lie in `[-1, 1)`.
#[must_use]
pub fn synthetic_dense_features(query: &[u64], dim: u32) -> Vec<f32> {
    let seed = query
        .iter()
        .fold(0xDE5E_F00Du64, |acc, &idx| splitmix64(acc ^ idx.wrapping_mul(0x9E37_79B9)));
    (0..dim).map(|col| procedural_value(seed, 0, col)).collect()
}

impl EmbeddingTable {
    /// Creates a table whose contents are computed on demand from `seed`.
    #[must_use]
    pub fn procedural(spec: TableSpec, seed: u64) -> Self {
        EmbeddingTable { spec, data: TableData::Procedural { seed } }
    }

    /// Creates a table from explicit row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::BufferSizeMismatch`] if `values.len()` is
    /// not `rows * dim`.
    pub fn materialized(spec: TableSpec, values: Vec<f32>) -> Result<Self, EmbeddingError> {
        let expected = (spec.rows * u64::from(spec.dim)) as usize;
        if values.len() != expected {
            return Err(EmbeddingError::BufferSizeMismatch { expected, actual: values.len() });
        }
        Ok(EmbeddingTable { spec, data: TableData::Materialized(values) })
    }

    /// Materializes a procedural table into explicit storage (identical
    /// contents). Useful for tests and for building physical Cartesian
    /// products.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::TooLargeToMaterialize`] if the table
    /// exceeds `limit_bytes`.
    pub fn to_materialized(&self, limit_bytes: u64) -> Result<EmbeddingTable, EmbeddingError> {
        let bytes = self.spec.bytes(Precision::F32);
        if bytes > limit_bytes {
            return Err(EmbeddingError::TooLargeToMaterialize {
                table: self.spec.name.clone(),
                bytes,
                limit: limit_bytes,
            });
        }
        let dim = self.spec.dim as usize;
        let mut values = vec![0.0f32; self.spec.rows as usize * dim];
        for row in 0..self.spec.rows {
            let start = row as usize * dim;
            self.read_row(row, &mut values[start..start + dim])?;
        }
        EmbeddingTable::materialized(self.spec.clone(), values)
    }

    /// This table's specification.
    #[must_use]
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.spec.rows
    }

    /// Vector length.
    #[must_use]
    pub fn dim(&self) -> u32 {
        self.spec.dim
    }

    /// Whether the contents live in host memory.
    #[must_use]
    pub fn is_materialized(&self) -> bool {
        matches!(self.data, TableData::Materialized(_))
    }

    /// One element of the table.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::IndexOutOfRange`] if `row` or `col` is out
    /// of bounds.
    pub fn value(&self, row: u64, col: u32) -> Result<f32, EmbeddingError> {
        if row >= self.spec.rows || col >= self.spec.dim {
            return Err(EmbeddingError::IndexOutOfRange {
                table: self.spec.name.clone(),
                index: row,
                rows: self.spec.rows,
            });
        }
        Ok(match &self.data {
            TableData::Materialized(v) => v[row as usize * self.spec.dim as usize + col as usize],
            TableData::Procedural { seed } => procedural_value(*seed, row, col),
        })
    }

    /// Copies row `row` into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::IndexOutOfRange`] for a bad row and
    /// [`EmbeddingError::BufferSizeMismatch`] if `out.len() != dim`.
    pub fn read_row(&self, row: u64, out: &mut [f32]) -> Result<(), EmbeddingError> {
        if row >= self.spec.rows {
            return Err(EmbeddingError::IndexOutOfRange {
                table: self.spec.name.clone(),
                index: row,
                rows: self.spec.rows,
            });
        }
        let dim = self.spec.dim as usize;
        if out.len() != dim {
            return Err(EmbeddingError::BufferSizeMismatch { expected: dim, actual: out.len() });
        }
        match &self.data {
            TableData::Materialized(v) => {
                let start = row as usize * dim;
                out.copy_from_slice(&v[start..start + dim]);
            }
            TableData::Procedural { seed } => {
                for (col, slot) in out.iter_mut().enumerate() {
                    *slot = procedural_value(*seed, row, col as u32);
                }
            }
        }
        Ok(())
    }

    /// Row `row` as a freshly allocated vector.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::IndexOutOfRange`] for a bad row.
    pub fn row(&self, row: u64) -> Result<Vec<f32>, EmbeddingError> {
        let mut out = vec![0.0f32; self.spec.dim as usize];
        self.read_row(row, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rows: u64, dim: u32) -> TableSpec {
        TableSpec::new("t", rows, dim)
    }

    #[test]
    fn procedural_is_deterministic_and_seed_sensitive() {
        let a = EmbeddingTable::procedural(spec(100, 8), 1);
        let b = EmbeddingTable::procedural(spec(100, 8), 1);
        let c = EmbeddingTable::procedural(spec(100, 8), 2);
        assert_eq!(a.row(42).unwrap(), b.row(42).unwrap());
        assert_ne!(a.row(42).unwrap(), c.row(42).unwrap());
    }

    #[test]
    fn procedural_values_in_unit_range() {
        let t = EmbeddingTable::procedural(spec(1000, 4), 7);
        for row in 0..1000 {
            for v in t.row(row).unwrap() {
                assert!((-1.0..1.0).contains(&v), "value {v} out of [-1,1)");
            }
        }
    }

    #[test]
    fn procedural_values_are_spread_out() {
        // A crude uniformity check: mean near 0, both signs present.
        let t = EmbeddingTable::procedural(spec(2000, 2), 99);
        let mut sum = 0.0f64;
        let mut pos = 0;
        for row in 0..2000 {
            for v in t.row(row).unwrap() {
                sum += f64::from(v);
                if v > 0.0 {
                    pos += 1;
                }
            }
        }
        let mean = sum / 4000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((1600..2400).contains(&pos), "positive count {pos}");
    }

    #[test]
    fn materialized_round_trip() {
        let values: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let t = EmbeddingTable::materialized(spec(3, 4), values).unwrap();
        assert_eq!(t.row(1).unwrap(), vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(t.value(2, 3).unwrap(), 11.0);
        assert!(t.is_materialized());
    }

    #[test]
    fn materialized_rejects_wrong_length() {
        assert!(matches!(
            EmbeddingTable::materialized(spec(3, 4), vec![0.0; 11]),
            Err(EmbeddingError::BufferSizeMismatch { expected: 12, actual: 11 })
        ));
    }

    #[test]
    fn to_materialized_preserves_contents() {
        let p = EmbeddingTable::procedural(spec(50, 6), 5);
        let m = p.to_materialized(u64::MAX).unwrap();
        for row in 0..50 {
            assert_eq!(p.row(row).unwrap(), m.row(row).unwrap());
        }
    }

    #[test]
    fn to_materialized_respects_limit() {
        let p = EmbeddingTable::procedural(spec(1_000_000, 64), 5);
        assert!(matches!(
            p.to_materialized(1024),
            Err(EmbeddingError::TooLargeToMaterialize { .. })
        ));
    }

    #[test]
    fn out_of_range_reads_fail() {
        let t = EmbeddingTable::procedural(spec(10, 4), 0);
        assert!(t.row(10).is_err());
        assert!(t.value(0, 4).is_err());
        assert!(t.value(10, 0).is_err());
        let mut small = [0.0f32; 3];
        assert!(matches!(
            t.read_row(0, &mut small),
            Err(EmbeddingError::BufferSizeMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn giant_procedural_table_needs_no_memory() {
        // The large production model's 26M x 64 table: reading a row must
        // work without materializing 6.7 GB.
        let t = EmbeddingTable::procedural(spec(26_000_000, 64), 123);
        let row = t.row(25_999_999).unwrap();
        assert_eq!(row.len(), 64);
    }
}
