//! # microrec-json
//!
//! A small, dependency-free JSON library standing in for
//! `serde`/`serde_json` (the build environment has no registry access).
//! It provides a [`Json`] value tree, a strict parser, compact and pretty
//! writers, and [`ToJson`]/[`FromJson`] traits with `macro_rules!` helpers
//! ([`impl_json_struct!`], [`impl_json_enum!`]) so workspace types keep
//! serde-derive-compatible wire shapes: structs become objects keyed by
//! field name, unit enums become their variant name as a string.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parsed JSON value.
///
/// Integers keep full 64-bit precision (`UInt`/`Int`) instead of lossy
/// `f64`, which matters for picosecond timestamps and byte capacities.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer literal.
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A number with a fraction or exponent, or out of 64-bit range.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// An error produced while parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }

    /// The standard "missing field" error used by [`impl_json_struct!`].
    #[must_use]
    pub fn missing_field(name: &str) -> Self {
        JsonError(format!("missing field `{name}`"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Serializes without whitespace.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (serde_json pretty style).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest digits that round-trip the value.
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/Infinity literals; serde_json writes null too.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(JsonError::new(format!("unexpected `{}` at byte {}", other as char, self.pos)))
            }
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(JsonError::new("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if integral {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if let Ok(signed) = i64::try_from(v) {
                        return Ok(Json::Int(-signed));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::new(format!("bad number `{text}`")))
    }
}

/// Converts a value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Reconstructs a value from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Decodes the value, failing with a descriptive [`JsonError`].
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

/// Serializes to a compact JSON string (cf. `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Serializes to an indented JSON string (cf. `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parses a value from JSON text (cf. `serde_json::from_str`).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let v = json
                    .as_u64()
                    .ok_or_else(|| JsonError::new(concat!("expected ", stringify!($ty))))?;
                <$ty>::try_from(v)
                    .map_err(|_| JsonError::new(concat!(stringify!($ty), " out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let v = json.as_u64().ok_or_else(|| JsonError::new("expected usize"))?;
        usize::try_from(v).map_err(|_| JsonError::new("usize out of range"))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::UInt(*self as u64)
        } else {
            Json::Int(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_i64().ok_or_else(|| JsonError::new("expected i64"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64().ok_or_else(|| JsonError::new("expected f64"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // f32 -> f64 is exact, so the written digits round-trip.
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64().map(|v| v as f32).ok_or_else(|| JsonError::new("expected f32"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str().map(str::to_string).ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct as an object keyed by
/// field names, matching serde-derive's wire shape. Fields in `required`
/// must be present when decoding; fields in `default` fall back to
/// `Default::default()` when missing (serde's `#[serde(default)]`).
///
/// ```
/// #[derive(Debug, PartialEq, Default)]
/// struct Point { x: u32, y: u32, label: String }
/// microrec_json::impl_json_struct!(Point, required { x, y }, default { label });
///
/// let p: Point = microrec_json::from_str(r#"{"x":1,"y":2}"#).unwrap();
/// assert_eq!(p, Point { x: 1, y: 2, label: String::new() });
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:path, required { $($req:ident),* $(,)? }) => {
        $crate::impl_json_struct!($ty, required { $($req),* }, default {});
    };
    ($ty:path, required { $($req:ident),* $(,)? }, default { $($opt:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let obj: Vec<(String, $crate::Json)> = vec![
                    $((
                        stringify!($req).to_string(),
                        $crate::ToJson::to_json(&self.$req),
                    ),)*
                    $((
                        stringify!($opt).to_string(),
                        $crate::ToJson::to_json(&self.$opt),
                    ),)*
                ];
                $crate::Json::Obj(obj)
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $(let $req = match json.get(stringify!($req)) {
                    Some(v) => $crate::FromJson::from_json(v)?,
                    None => {
                        return Err($crate::JsonError::missing_field(stringify!($req)))
                    }
                };)*
                $(let $opt = match json.get(stringify!($opt)) {
                    Some(v) => $crate::FromJson::from_json(v)?,
                    None => Default::default(),
                };)*
                Ok(Self { $($req,)* $($opt,)* })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a unit enum as its variant name
/// serialized as a string, matching serde-derive's wire shape for
/// field-less enums (e.g. `MemoryKind::Hbm` ⇄ `"Hbm"`).
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:path { $($variant:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $(Self::$variant => $crate::Json::Str(stringify!($variant).to_string()),)*
                }
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match json.as_str() {
                    $(Some(stringify!($variant)) => Ok(Self::$variant),)*
                    Some(other) => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{}`",
                        stringify!($ty),
                        other
                    ))),
                    None => Err($crate::JsonError::new(concat!(
                        "expected string for ",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\\n\\u0041\"").unwrap(), Json::Str("hi\nA".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn full_u64_precision_survives() {
        let big = u64::MAX;
        let text = Json::UInt(big).to_compact();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1_f64, 1.0 / 3.0, 1e-300, 123456.789, -2.5e10] {
            let text = Json::Float(v).to_compact();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v), "{text}");
        }
        for v in [0.1_f32, 1.0 / 3.0, 3.402e38] {
            let decoded: f32 = from_str(&to_string(&v)).unwrap();
            assert_eq!(decoded.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"name":"u280","banks":[{"id":1},{"id":2}],"ok":true,"gap":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_compact(), text);
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"banks\": ["));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t quote\" slash\\ newline\n unicode \u{1F600} control\u{1}";
        let text = Json::Str(original.to_string()).to_compact();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(original.to_string()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("\u{1F600}".to_string()));
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        rows: u64,
        dim: u32,
        name: String,
        tags: Vec<String>,
        extra: Option<u32>,
        weight: f64,
    }

    impl_json_struct!(Demo, required { rows, dim, name, tags, weight }, default { extra });

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Kind {
        Bram,
        Hbm,
        Ddr,
    }

    impl_json_enum!(Kind { Bram, Hbm, Ddr });

    #[test]
    fn struct_macro_round_trips() {
        let demo = Demo {
            rows: 1 << 40,
            dim: 64,
            name: "emb_0".to_string(),
            tags: vec!["a".to_string(), "b".to_string()],
            extra: Some(9),
            weight: 0.125,
        };
        let text = to_string(&demo);
        let back: Demo = from_str(&text).unwrap();
        assert_eq!(back, demo);
    }

    #[test]
    fn default_fields_may_be_missing_but_required_may_not() {
        let legacy = r#"{"rows":5,"dim":2,"name":"t","tags":[],"weight":1.0}"#;
        let demo: Demo = from_str(legacy).unwrap();
        assert_eq!(demo.extra, None);

        let broken = r#"{"rows":5,"dim":2,"name":"t","weight":1.0}"#;
        let err = from_str::<Demo>(broken).unwrap_err();
        assert!(err.to_string().contains("missing field `tags`"), "{err}");
    }

    #[test]
    fn enum_macro_uses_variant_names() {
        assert_eq!(to_string(&Kind::Hbm), "\"Hbm\"");
        assert_eq!(from_str::<Kind>("\"Ddr\"").unwrap(), Kind::Ddr);
        assert!(from_str::<Kind>("\"Sram\"").is_err());
        assert!(from_str::<Kind>("3").is_err());
    }
}
