//! Memory system configurations.
//!
//! A [`MemoryConfig`] lists every bank of a platform together with its
//! capacity and timing. Presets are provided for the two platforms the paper
//! evaluates: the Xilinx Alveo U280 accelerator card and a conventional
//! 8-channel CPU server.

use crate::bank::{Bank, BankId, MemoryKind};
use crate::timing::MemTiming;

/// Specification of one bank within a [`MemoryConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct BankSpec {
    /// The bank's identity.
    pub id: BankId,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Timing parameters.
    pub timing: MemTiming,
}

/// A full memory-system description.
///
/// # Examples
///
/// ```
/// use microrec_memsim::{MemoryConfig, MemoryKind};
///
/// let u280 = MemoryConfig::u280();
/// assert_eq!(u280.banks_of_kind(MemoryKind::Hbm).count(), 32);
/// assert_eq!(u280.banks_of_kind(MemoryKind::Ddr).count(), 2);
/// assert!(u280.dram_channel_count() == 34);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Platform label, e.g. `"Alveo U280"`.
    pub name: String,
    /// Every bank of the platform.
    pub banks: Vec<BankSpec>,
}

/// Bytes in one mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;

impl MemoryConfig {
    /// The Xilinx Alveo U280 used by the paper: 32 HBM2 pseudo-channels of
    /// 256 MB, 2 DDR4 channels of 16 GB, and a slice of on-chip memory
    /// reserved for embedding tables (the rest of BRAM/URAM belongs to the
    /// DNN compute units).
    ///
    /// The on-chip slice is modelled as 16 BRAM banks of 4 KiB (two 18 Kbit
    /// BRAM blocks each). Table 6 of the paper shows BRAM at 78–85 % and
    /// URAM at 66–80 % utilisation, almost all of it consumed by the DNN
    /// compute units and their FIFOs — only a sliver remains for embedding
    /// caching, which is why the paper caches just the 8 (small model) / 16
    /// (large model) tiniest tables on chip (Table 3).
    #[must_use]
    pub fn u280() -> Self {
        let mut banks = Vec::new();
        for i in 0..32u16 {
            banks.push(BankSpec {
                id: BankId::new(MemoryKind::Hbm, i),
                capacity: 256 * MIB,
                timing: MemTiming::hbm2_vitis(),
            });
        }
        for i in 0..2u16 {
            banks.push(BankSpec {
                id: BankId::new(MemoryKind::Ddr, i),
                capacity: 16 * GIB,
                timing: MemTiming::ddr4_vitis(),
            });
        }
        for i in 0..16u16 {
            banks.push(BankSpec {
                id: BankId::new(MemoryKind::Bram, i),
                capacity: 4 * 1024,
                timing: MemTiming::onchip_fpga(),
            });
        }
        MemoryConfig { name: "Alveo U280".to_string(), banks }
    }

    /// The CPU baseline server: 128 GB of DDR4 across 8 channels
    /// (16 vCPU AWS instance, §5.1).
    #[must_use]
    pub fn cpu_server() -> Self {
        let banks = (0..8u16)
            .map(|i| BankSpec {
                id: BankId::new(MemoryKind::Ddr, i),
                capacity: 16 * GIB,
                timing: MemTiming::ddr4_server(),
            })
            .collect();
        MemoryConfig { name: "CPU server (8-ch DDR4)".to_string(), banks }
    }

    /// A generic FPGA without HBM (for the "works on any FPGA" claim of
    /// §3.4.2): `ddr_channels` DDR4 channels of 16 GB plus the same on-chip
    /// slice as [`MemoryConfig::u280`].
    #[must_use]
    pub fn fpga_without_hbm(ddr_channels: u16) -> Self {
        let mut banks: Vec<BankSpec> = (0..ddr_channels)
            .map(|i| BankSpec {
                id: BankId::new(MemoryKind::Ddr, i),
                capacity: 16 * GIB,
                timing: MemTiming::ddr4_vitis(),
            })
            .collect();
        for i in 0..16u16 {
            banks.push(BankSpec {
                id: BankId::new(MemoryKind::Bram, i),
                capacity: 4 * 1024,
                timing: MemTiming::onchip_fpga(),
            });
        }
        MemoryConfig { name: format!("FPGA ({ddr_channels}-ch DDR4, no HBM)"), banks }
    }

    /// Iterates over banks of one technology.
    pub fn banks_of_kind(&self, kind: MemoryKind) -> impl Iterator<Item = &BankSpec> {
        self.banks.iter().filter(move |b| b.id.kind == kind)
    }

    /// Number of off-chip DRAM channels (HBM pseudo-channels + DDR
    /// channels); 34 on the U280.
    #[must_use]
    pub fn dram_channel_count(&self) -> usize {
        self.banks.iter().filter(|b| b.id.kind.is_dram()).count()
    }

    /// Number of on-chip banks reserved for embeddings.
    #[must_use]
    pub fn onchip_bank_count(&self) -> usize {
        self.banks.iter().filter(|b| b.id.kind.is_on_chip()).count()
    }

    /// Total capacity of one technology in bytes.
    #[must_use]
    pub fn capacity_of_kind(&self, kind: MemoryKind) -> u64 {
        self.banks_of_kind(kind).map(|b| b.capacity).sum()
    }

    /// Instantiates the (empty) banks described by this configuration.
    #[must_use]
    pub fn build_banks(&self) -> Vec<Bank> {
        self.banks.iter().map(|s| Bank::new(s.id, s.capacity, s.timing.clone())).collect()
    }

    /// Looks up the spec of one bank.
    #[must_use]
    pub fn bank_spec(&self, id: BankId) -> Option<&BankSpec> {
        self.banks.iter().find(|b| b.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_matches_paper_platform() {
        let c = MemoryConfig::u280();
        assert_eq!(c.banks_of_kind(MemoryKind::Hbm).count(), 32);
        assert_eq!(c.banks_of_kind(MemoryKind::Ddr).count(), 2);
        assert_eq!(c.dram_channel_count(), 34);
        // 8 GB HBM, 32 GB DDR.
        assert_eq!(c.capacity_of_kind(MemoryKind::Hbm), 8 * GIB);
        assert_eq!(c.capacity_of_kind(MemoryKind::Ddr), 32 * GIB);
        assert_eq!(c.onchip_bank_count(), 16);
    }

    #[test]
    fn cpu_server_has_8_channels_128_gb() {
        let c = MemoryConfig::cpu_server();
        assert_eq!(c.dram_channel_count(), 8);
        assert_eq!(c.capacity_of_kind(MemoryKind::Ddr), 128 * GIB);
        assert_eq!(c.onchip_bank_count(), 0);
    }

    #[test]
    fn no_hbm_preset_is_hbm_free() {
        let c = MemoryConfig::fpga_without_hbm(2);
        assert_eq!(c.banks_of_kind(MemoryKind::Hbm).count(), 0);
        assert_eq!(c.dram_channel_count(), 2);
        assert!(c.onchip_bank_count() > 0);
    }

    #[test]
    fn build_banks_are_empty_and_match_specs() {
        let c = MemoryConfig::u280();
        let banks = c.build_banks();
        assert_eq!(banks.len(), c.banks.len());
        for (bank, spec) in banks.iter().zip(&c.banks) {
            assert_eq!(bank.id(), spec.id);
            assert_eq!(bank.capacity(), spec.capacity);
            assert_eq!(bank.used(), 0);
        }
    }

    #[test]
    fn bank_spec_lookup() {
        let c = MemoryConfig::u280();
        assert!(c.bank_spec(BankId::new(MemoryKind::Hbm, 31)).is_some());
        assert!(c.bank_spec(BankId::new(MemoryKind::Hbm, 32)).is_none());
    }
}

microrec_json::impl_json_struct!(BankSpec, required { id, capacity, timing });
microrec_json::impl_json_struct!(MemoryConfig, required { name, banks });
