//! Wall-clock timing justified: used only for logging, never results.

pub fn tick() -> u64 {
    // lint: allow(determinism) timing is logged, never folded into results
    let start = std::time::Instant::now();
    start.elapsed().subsec_nanos() as u64
}
