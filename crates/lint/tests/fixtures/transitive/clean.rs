//! A designated root whose whole call tree neither allocates nor
//! panics: nothing to report.

pub fn serve_batch(queries: &[u64]) -> usize {
    checksum(queries)
}

fn checksum(queries: &[u64]) -> usize {
    queries.iter().map(|q| (q & 0xff) as usize).sum()
}
