//! Local-search refinement of a placement plan.
//!
//! Algorithm 1's allocator is a single greedy pass; this module polishes
//! its output with hill-climbing moves — relocating one table to another
//! bank, or swapping the banks of two tables — accepting only strict
//! improvements of the paper's objective (lookup latency, then storage).
//! Refinement is an *extension* over the paper (its future-work direction
//! of better allocation), evaluated in the ablation bench: on the
//! production models the greedy is already at a fixed point, while
//! adversarially shuffled plans recover their latency.

use microrec_embedding::ModelSpec;
use microrec_memsim::{BankId, MemoryConfig};

use crate::plan::{Plan, PlanCost};

/// Outcome of a refinement run.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// The (possibly improved) plan.
    pub plan: Plan,
    /// Cost before refinement.
    pub before: PlanCost,
    /// Cost after refinement.
    pub after: PlanCost,
    /// Accepted moves.
    pub moves: usize,
}

impl RefineOutcome {
    /// Whether refinement found any improvement.
    #[must_use]
    pub fn improved(&self) -> bool {
        self.after.better_than(&self.before)
    }
}

/// Free bytes per DRAM bank under `plan`.
fn free_bytes(plan: &Plan, config: &MemoryConfig) -> std::collections::BTreeMap<BankId, u64> {
    let mut free: std::collections::BTreeMap<BankId, u64> =
        config.banks.iter().filter(|b| b.id.kind.is_dram()).map(|b| (b.id, b.capacity)).collect();
    for t in &plan.placed {
        for &b in &t.banks {
            if let Some(f) = free.get_mut(&b) {
                *f = f.saturating_sub(t.spec.bytes(plan.precision));
            }
        }
    }
    free
}

/// Hill-climbs `plan` with single-table relocations and pairwise bank
/// swaps until a local optimum or `max_rounds` sweeps.
#[must_use]
pub fn refine_plan(
    plan: &Plan,
    model: &ModelSpec,
    config: &MemoryConfig,
    max_rounds: usize,
) -> RefineOutcome {
    let lookups = model.lookups_per_table;
    let before = plan.cost(config, lookups);
    let mut current = plan.clone();
    let mut current_cost = before;
    let mut moves = 0usize;

    // Only unreplicated DRAM tables move (on-chip placements and replica
    // sets come from dedicated logic).
    let movable: Vec<usize> = (0..current.placed.len())
        .filter(|&i| {
            current.placed[i].banks.len() == 1 && current.placed[i].banks[0].kind.is_dram()
        })
        .collect();
    let dram_banks: Vec<BankId> =
        config.banks.iter().filter(|b| b.id.kind.is_dram()).map(|b| b.id).collect();

    for _ in 0..max_rounds {
        let mut improved_this_round = false;

        // Relocations.
        for &i in &movable {
            let free = free_bytes(&current, config);
            // Tables currently assigned per bank — ties in cost prefer the
            // emptiest target so relocations spread instead of piling onto
            // one alternative channel.
            let mut load: std::collections::BTreeMap<BankId, u32> = Default::default();
            for t in &current.placed {
                for &b in &t.banks {
                    *load.entry(b).or_insert(0) += 1;
                }
            }
            let bytes = current.placed[i].spec.bytes(current.precision);
            let original = current.placed[i].banks[0];
            let mut best: Option<(PlanCost, u32, BankId)> = None;
            for &target in &dram_banks {
                if target == original || free.get(&target).copied().unwrap_or(0) < bytes {
                    continue;
                }
                current.placed[i].banks[0] = target;
                let cost = current.cost(config, lookups);
                let count = load.get(&target).copied().unwrap_or(0);
                let beats_best = match &best {
                    None => true,
                    Some((bc, bn, _)) => {
                        cost.better_than(bc) || (!bc.better_than(&cost) && count < *bn)
                    }
                };
                if cost.better_than(&current_cost) && beats_best {
                    best = Some((cost, count, target));
                }
            }
            current.placed[i].banks[0] = original;
            if let Some((cost, _, target)) = best {
                current.placed[i].banks[0] = target;
                current_cost = cost;
                moves += 1;
                improved_this_round = true;
            }
        }

        // Pairwise swaps (help when both banks are full).
        for ai in 0..movable.len() {
            for bi in ai + 1..movable.len() {
                let (a, b) = (movable[ai], movable[bi]);
                let (bank_a, bank_b) = (current.placed[a].banks[0], current.placed[b].banks[0]);
                if bank_a == bank_b {
                    continue;
                }
                let bytes_a = current.placed[a].spec.bytes(current.precision);
                let bytes_b = current.placed[b].spec.bytes(current.precision);
                let free = free_bytes(&current, config);
                // After removing both, does each fit the other's bank?
                let fits = free.get(&bank_a).copied().unwrap_or(0) + bytes_a >= bytes_b
                    && free.get(&bank_b).copied().unwrap_or(0) + bytes_b >= bytes_a;
                if !fits {
                    continue;
                }
                current.placed[a].banks[0] = bank_b;
                current.placed[b].banks[0] = bank_a;
                let cost = current.cost(config, lookups);
                if cost.better_than(&current_cost) {
                    current_cost = cost;
                    moves += 1;
                    improved_this_round = true;
                } else {
                    current.placed[a].banks[0] = bank_a;
                    current.placed[b].banks[0] = bank_b;
                }
            }
        }

        if !improved_this_round {
            break;
        }
    }

    RefineOutcome { plan: current, before, after: current_cost, moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate;
    use microrec_embedding::{MergePlan, Precision, TableSpec};
    use microrec_memsim::MemoryKind;

    fn model() -> ModelSpec {
        ModelSpec::new(
            "toy",
            (0..6).map(|i| TableSpec::new(format!("t{i}"), 1_000 * (i as u64 + 1), 8)).collect(),
            vec![16],
            1,
        )
    }

    #[test]
    fn greedy_plans_are_near_fixed_points() {
        let m = model();
        let config = MemoryConfig::u280();
        let plan = allocate(&m, &MergePlan::none(), &config, Precision::F32).unwrap();
        let out = refine_plan(&plan, &m, &config, 8);
        assert!(out.after.lookup_latency <= out.before.lookup_latency);
        out.plan.validate(&m, &config).unwrap();
    }

    #[test]
    fn refinement_recovers_adversarial_plans() {
        let m = model();
        let config = MemoryConfig::u280();
        let mut plan = allocate(&m, &MergePlan::none(), &config, Precision::F32).unwrap();
        // Adversarial: pile every table on one channel.
        let victim = BankId::new(MemoryKind::Hbm, 0);
        for t in &mut plan.placed {
            t.banks = vec![victim];
        }
        let bad = plan.cost(&config, 1);
        assert_eq!(bad.dram_rounds, 6);

        let out = refine_plan(&plan, &m, &config, 16);
        assert!(out.improved());
        assert!(out.moves >= 5, "needs several relocations, got {}", out.moves);
        assert_eq!(out.after.dram_rounds, 1, "plenty of channels -> one round");
        out.plan.validate(&m, &config).unwrap();
    }

    #[test]
    fn refinement_respects_capacity() {
        // Two tables, two banks that each fit only one: refinement may swap
        // but never co-locate.
        let m = ModelSpec::new(
            "tight",
            vec![TableSpec::new("a", 4_000_000, 8), TableSpec::new("b", 4_000_000, 8)],
            vec![8],
            1,
        );
        // Each table is 128 MB; an HBM bank (256 MB) holds at most two,
        // so build a config where banks hold exactly one.
        let mut config = MemoryConfig::u280();
        for bank in &mut config.banks {
            if bank.id.kind == MemoryKind::Hbm {
                bank.capacity = 130 * 1024 * 1024;
            }
        }
        let plan = allocate(&m, &MergePlan::none(), &config, Precision::F32).unwrap();
        let out = refine_plan(&plan, &m, &config, 4);
        out.plan.validate(&m, &config).unwrap();
        let banks: Vec<_> = out.plan.placed.iter().map(|t| t.banks[0]).collect();
        assert_ne!(banks[0], banks[1], "capacity forbids co-location");
    }

    #[test]
    fn zero_rounds_is_a_no_op() {
        let m = model();
        let config = MemoryConfig::u280();
        let plan = allocate(&m, &MergePlan::none(), &config, Precision::F32).unwrap();
        let out = refine_plan(&plan, &m, &config, 0);
        assert_eq!(out.plan, plan);
        assert_eq!(out.moves, 0);
    }
}
