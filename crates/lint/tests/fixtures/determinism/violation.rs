//! Seeded violation: hash-order iteration and wall-clock reads.

use std::collections::HashMap;

pub fn count(keys: &[u64]) -> usize {
    let now = std::time::Instant::now();
    let mut seen = HashMap::new();
    for &k in keys {
        seen.insert(k, now.elapsed().as_nanos());
    }
    seen.len()
}
