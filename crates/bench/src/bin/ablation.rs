//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * DRAM allocation strategy (paper's count-balanced round-robin vs
//!   time-balanced LPT);
//! * Cartesian merging on/off per strategy;
//! * heuristic vs brute force on a downscaled instance;
//! * embedding storage precision (32- vs 16-bit rows).

use microrec_bench::print_table;
use microrec_embedding::{ModelSpec, Precision, TableSpec};
use microrec_memsim::MemoryConfig;
use microrec_placement::{
    brute_force_search, heuristic_search, optimality_gap, AllocStrategy, HeuristicOptions,
};

fn main() {
    let config = MemoryConfig::u280();

    // 1. Allocator strategy x merging.
    let mut rows = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for strategy in [AllocStrategy::RoundRobin, AllocStrategy::Lpt] {
            for allow_merge in [false, true] {
                let out = heuristic_search(
                    &model,
                    &config,
                    Precision::F32,
                    &HeuristicOptions { strategy, allow_merge, ..Default::default() },
                )
                .expect("search");
                rows.push(vec![
                    model.name.clone(),
                    format!("{strategy:?}"),
                    if allow_merge { "merge" } else { "no-merge" }.to_string(),
                    format!("{:.0} ns", out.cost.lookup_latency.as_ns()),
                    out.cost.dram_rounds.to_string(),
                    format!(
                        "{:.2}%",
                        (out.cost.storage_bytes as f64 / model.total_bytes(Precision::F32) as f64
                            - 1.0)
                            * 100.0
                    ),
                ]);
            }
        }
    }
    print_table(
        "Ablation A: DRAM allocation strategy x Cartesian merging",
        &["Model", "Strategy", "Merging", "Lookup latency", "Rounds", "Storage overhead"],
        &rows,
    );
    println!("\nReading: under the paper's rounds model (RoundRobin), merging buys");
    println!("~25-40% lookup latency; a time-balancing allocator (LPT) flattens");
    println!("channel times and shrinks the merging win - the benefit of Cartesian");
    println!("products depends on the allocator being round-structured.");

    // 2. Heuristic vs brute force on a downscaled instance.
    let toy = ModelSpec::new(
        "downscaled",
        (0..9).map(|i| TableSpec::new(format!("t{i}"), 120 + 60 * i as u64, 4)).collect(),
        vec![64, 32],
        1,
    );
    let mut cramped = MemoryConfig::fpga_without_hbm(4);
    cramped.banks.retain(|b| b.id.kind.is_dram());
    let brute = brute_force_search(&toy, &cramped, Precision::F32, AllocStrategy::RoundRobin)
        .expect("brute");
    let heur = heuristic_search(&toy, &cramped, Precision::F32, &HeuristicOptions::default())
        .expect("heuristic");
    print_table(
        "Ablation B: heuristic vs brute force (9 tables, 4 DDR channels)",
        &["Search", "Latency (ns)", "Solutions evaluated"],
        &[
            vec![
                "brute force".into(),
                format!("{:.0}", brute.cost.lookup_latency.as_ns()),
                brute.evaluated.to_string(),
            ],
            vec![
                "heuristic".into(),
                format!("{:.0}", heur.cost.lookup_latency.as_ns()),
                heur.evaluated.to_string(),
            ],
        ],
    );
    println!(
        "\nOptimality gap: {:.3}x with {}x fewer solutions evaluated.",
        optimality_gap(&heur.cost, &brute.cost),
        brute.evaluated / heur.evaluated.max(1)
    );

    // 3. Rule 2 ablation: pairs vs triples.
    let mut rows = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for group_size in [2usize, 3] {
            let out = heuristic_search(
                &model,
                &config,
                Precision::F32,
                &HeuristicOptions { group_size, ..Default::default() },
            )
            .expect("search");
            rows.push(vec![
                model.name.clone(),
                format!("{group_size}-way"),
                format!("{:.0} ns", out.cost.lookup_latency.as_ns()),
                out.cost.dram_rounds.to_string(),
                format!(
                    "{:+.2}%",
                    (out.cost.storage_bytes as f64 / model.total_bytes(Precision::F32) as f64
                        - 1.0)
                        * 100.0
                ),
                out.plan.merge.groups.len().to_string(),
            ]);
        }
    }
    print_table(
        "Ablation D: Cartesian group size (the paper's rule 2 fixes pairs)",
        &["Model", "Products", "Lookup latency", "Rounds", "Storage overhead", "Groups"],
        &rows,
    );
    println!("\nReading: 3-way products reach the same round count only by paying");
    println!("multiplicatively more storage (rows multiply across all three members),");
    println!("or fail to reach it at all - the measured justification for rule 2.");

    // 4. Embedding storage precision.
    let mut rows = Vec::new();
    for storage in [Precision::F32, Precision::Fixed16] {
        let out = heuristic_search(
            &ModelSpec::small_production(),
            &config,
            storage,
            &HeuristicOptions::default(),
        )
        .expect("search");
        rows.push(vec![
            storage.to_string(),
            format!("{:.0} ns", out.cost.lookup_latency.as_ns()),
            format!("{:.2} GB", out.cost.storage_bytes as f64 / 1e9),
            out.cost.tables_on_chip.to_string(),
        ]);
    }
    print_table(
        "Ablation C: embedding storage precision (small model)",
        &["Storage", "Lookup latency", "Total storage", "Tables on chip"],
        &rows,
    );
    println!("\nReading: 16-bit rows halve both streaming time and storage, and");
    println!("more tail tables fit the on-chip banks - an extension the paper");
    println!("leaves on the table by keeping 32-bit elements in memory.");
}
