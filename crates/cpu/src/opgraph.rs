//! A TensorFlow-Serving-style operator graph for recommendation inference.
//!
//! §2.3 of the paper observes that the embedding layer alone involves "37
//! types of operators (e.g., slice and concatenation) and these operators
//! are invoked many times during inference" — the framework overhead that
//! dominates small-batch CPU latency. This module makes that concrete: it
//! builds the operator graph a TF-style runtime would execute (per-table
//! index-processing chains, gathers, concat, then MatMul/BiasAdd/activation
//! chains), *functionally executes* it (matching the reference engine
//! bit-for-bit), and counts operator invocations so the timing model's
//! per-invocation constant has a mechanistic interpretation.

use std::fmt;

use microrec_dnn::{gemv, Mlp};
use microrec_embedding::{Catalog, ModelSpec};
use microrec_memsim::SimTime;

use crate::error::CpuError;

/// Operator kinds (a representative subset of the 37 the paper counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Input placeholder holding one table's lookup indices.
    Placeholder,
    /// Deduplicate indices (TF's embedding pipeline does this per table).
    Unique,
    /// Integer cast of indices.
    Cast,
    /// The actual table gather.
    Gather,
    /// Shape bookkeeping after the gather.
    Reshape,
    /// Add a batch dimension.
    ExpandDims,
    /// Strip padding from the gathered slice.
    Slice,
    /// Remove the singleton dimension again.
    Squeeze,
    /// Concatenate all table outputs into the feature vector.
    Concat,
    /// Dense layer matrix multiply.
    MatMul,
    /// Dense layer bias add.
    BiasAdd,
    /// ReLU activation.
    Relu,
    /// Output sigmoid.
    Sigmoid,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One operator instance in the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// What the operator does.
    pub kind: OpKind,
    /// Indices of upstream ops whose outputs feed this one.
    pub inputs: Vec<usize>,
    /// Table index for `Placeholder`/`Gather`, layer index for
    /// `MatMul`/`BiasAdd`; unused otherwise.
    pub arg: usize,
}

/// A dataflow graph of operators in topological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpGraph {
    ops: Vec<Op>,
}

/// Intermediate values during interpretation.
#[derive(Debug, Clone)]
enum Value {
    Indices(Vec<u64>),
    Dense(Vec<f32>),
}

impl OpGraph {
    /// Builds the embedding-layer subgraph for `model`: a 7-op chain per
    /// table (placeholder → unique → cast → gather → reshape → slice →
    /// squeeze) feeding one concat.
    #[must_use]
    pub fn embedding_layer(model: &ModelSpec) -> Self {
        let mut ops = Vec::new();
        let mut squeezed = Vec::new();
        for t in 0..model.num_tables() {
            let ph = ops.len();
            ops.push(Op { kind: OpKind::Placeholder, inputs: vec![], arg: t });
            let uq = ops.len();
            ops.push(Op { kind: OpKind::Unique, inputs: vec![ph], arg: 0 });
            let cast = ops.len();
            ops.push(Op { kind: OpKind::Cast, inputs: vec![uq], arg: 0 });
            let gather = ops.len();
            ops.push(Op { kind: OpKind::Gather, inputs: vec![cast], arg: t });
            let reshape = ops.len();
            ops.push(Op { kind: OpKind::Reshape, inputs: vec![gather], arg: 0 });
            let slice = ops.len();
            ops.push(Op { kind: OpKind::Slice, inputs: vec![reshape], arg: 0 });
            let squeeze = ops.len();
            ops.push(Op { kind: OpKind::Squeeze, inputs: vec![slice], arg: 0 });
            squeezed.push(squeeze);
        }
        ops.push(Op { kind: OpKind::Concat, inputs: squeezed, arg: 0 });
        OpGraph { ops }
    }

    /// Builds the full inference graph: the embedding layer plus
    /// MatMul/BiasAdd/ReLU chains per hidden layer and the sigmoid head.
    #[must_use]
    pub fn full_inference(model: &ModelSpec) -> Self {
        let mut graph = Self::embedding_layer(model);
        let mut prev = graph.ops.len() - 1; // the concat
        let layer_count = model.hidden.len() + 1;
        for layer in 0..layer_count {
            let mm = graph.ops.len();
            graph.ops.push(Op { kind: OpKind::MatMul, inputs: vec![prev], arg: layer });
            let ba = graph.ops.len();
            graph.ops.push(Op { kind: OpKind::BiasAdd, inputs: vec![mm], arg: layer });
            let act = graph.ops.len();
            if layer + 1 == layer_count {
                graph.ops.push(Op { kind: OpKind::Sigmoid, inputs: vec![ba], arg: 0 });
            } else {
                graph.ops.push(Op { kind: OpKind::Relu, inputs: vec![ba], arg: 0 });
            }
            prev = act;
        }
        graph
    }

    /// The operators in topological order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total operator invocations per executed item.
    #[must_use]
    pub fn invocation_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of distinct operator kinds in the graph.
    #[must_use]
    pub fn distinct_kinds(&self) -> usize {
        let mut kinds: Vec<OpKind> = self.ops.iter().map(|o| o.kind).collect();
        kinds.sort_by_key(|k| format!("{k:?}"));
        kinds.dedup();
        kinds.len()
    }

    /// Framework overhead of one graph execution at `per_invocation` cost
    /// per operator dispatch.
    #[must_use]
    pub fn dispatch_overhead(&self, per_invocation: SimTime) -> SimTime {
        per_invocation * self.invocation_count() as u64
    }

    /// Functionally executes the graph for one query (one index per
    /// logical table; single-lookup models).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] for malformed queries or a graph/model
    /// mismatch.
    pub fn execute(
        &self,
        catalog: &Catalog,
        mlp: &Mlp,
        query: &[u64],
    ) -> Result<Vec<f32>, CpuError> {
        let mut values: Vec<Option<Value>> = vec![None; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            let value = match op.kind {
                OpKind::Placeholder => {
                    let idx = *query.get(op.arg).ok_or(CpuError::Embedding(
                        microrec_embedding::EmbeddingError::ArityMismatch {
                            expected: catalog.logical_tables().len(),
                            actual: query.len(),
                        },
                    ))?;
                    Value::Indices(vec![idx])
                }
                OpKind::Unique | OpKind::Cast => match &values[op.inputs[0]] {
                    Some(Value::Indices(v)) => Value::Indices(v.clone()),
                    _ => return Err(graph_error("index op fed a dense tensor")),
                },
                OpKind::Gather => match &values[op.inputs[0]] {
                    Some(Value::Indices(v)) => {
                        let table = &catalog.logical_tables()[op.arg];
                        let mut out = Vec::new();
                        for &idx in v {
                            out.extend(table.row(idx)?);
                        }
                        Value::Dense(out)
                    }
                    _ => return Err(graph_error("gather fed a dense tensor")),
                },
                OpKind::Reshape | OpKind::ExpandDims | OpKind::Slice | OpKind::Squeeze => {
                    match &values[op.inputs[0]] {
                        Some(Value::Dense(v)) => Value::Dense(v.clone()),
                        _ => return Err(graph_error("shape op fed indices")),
                    }
                }
                OpKind::Concat => {
                    let mut out = Vec::new();
                    for &input in &op.inputs {
                        match &values[input] {
                            Some(Value::Dense(v)) => out.extend_from_slice(v),
                            _ => return Err(graph_error("concat fed indices")),
                        }
                    }
                    Value::Dense(out)
                }
                OpKind::MatMul => match &values[op.inputs[0]] {
                    Some(Value::Dense(x)) => {
                        let layer = mlp
                            .layers()
                            .get(op.arg)
                            .ok_or_else(|| graph_error("matmul layer out of range"))?;
                        let mut y = vec![0.0f32; layer.output_dim()];
                        gemv(layer.weights(), x, &mut y)?;
                        Value::Dense(y)
                    }
                    _ => return Err(graph_error("matmul fed indices")),
                },
                OpKind::BiasAdd => match &values[op.inputs[0]] {
                    Some(Value::Dense(x)) => {
                        let layer = mlp
                            .layers()
                            .get(op.arg)
                            .ok_or_else(|| graph_error("biasadd layer out of range"))?;
                        Value::Dense(x.iter().zip(layer.bias()).map(|(v, b)| v + b).collect())
                    }
                    _ => return Err(graph_error("biasadd fed indices")),
                },
                OpKind::Relu => match &values[op.inputs[0]] {
                    Some(Value::Dense(x)) => Value::Dense(x.iter().map(|v| v.max(0.0)).collect()),
                    _ => return Err(graph_error("relu fed indices")),
                },
                OpKind::Sigmoid => match &values[op.inputs[0]] {
                    Some(Value::Dense(x)) => {
                        Value::Dense(x.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect())
                    }
                    _ => return Err(graph_error("sigmoid fed indices")),
                },
            };
            values[i] = Some(value);
        }
        match values.pop().flatten() {
            Some(Value::Dense(v)) => Ok(v),
            _ => Err(graph_error("graph produced no dense output")),
        }
    }
}

fn graph_error(why: &str) -> CpuError {
    CpuError::Dnn(microrec_dnn::DnnError::ShapeMismatch {
        context: "op graph",
        expected: 0,
        actual: why.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CpuReferenceEngine;

    fn model() -> ModelSpec {
        let mut m = ModelSpec::dlrm_rmc2(6, 8);
        m.lookups_per_table = 1; // the op graph models single-lookup chains
        m
    }

    #[test]
    fn embedding_graph_shape() {
        let m = model();
        let g = OpGraph::embedding_layer(&m);
        // 7 ops per table + 1 concat.
        assert_eq!(g.invocation_count(), 7 * 6 + 1);
        assert_eq!(g.ops().last().unwrap().kind, OpKind::Concat);
        assert!(g.distinct_kinds() >= 8);
    }

    #[test]
    fn full_graph_adds_dnn_chains() {
        let m = model();
        let g = OpGraph::full_inference(&m);
        // Embedding + (MatMul, BiasAdd, act) x 4 layers.
        assert_eq!(g.invocation_count(), 7 * 6 + 1 + 3 * 4);
        assert_eq!(g.ops().last().unwrap().kind, OpKind::Sigmoid);
    }

    #[test]
    fn execution_matches_reference_engine() {
        let m = model();
        let engine = CpuReferenceEngine::build(&m, 77).unwrap();
        let g = OpGraph::full_inference(&m);
        for k in 0..10u64 {
            let query: Vec<u64> = (0..6).map(|j| (k * 131 + j * 17) % 500_000).collect();
            let graph_out = g.execute(engine.catalog(), engine.mlp(), &query).unwrap();
            let reference = engine.predict(&query).unwrap();
            assert!(
                (graph_out[0] - reference).abs() < 1e-6,
                "graph {} vs engine {reference}",
                graph_out[0]
            );
        }
    }

    #[test]
    fn embedding_subgraph_matches_gather() {
        let m = model();
        let engine = CpuReferenceEngine::build(&m, 5).unwrap();
        let g = OpGraph::embedding_layer(&m);
        let query: Vec<u64> = (0..6).map(|j| j * 931).collect();
        let graph_features = g.execute(engine.catalog(), engine.mlp(), &query).unwrap();
        let direct = engine.catalog().gather_vec(&query).unwrap();
        assert_eq!(graph_features, direct);
    }

    #[test]
    fn dispatch_overhead_scales_with_tables() {
        let small = OpGraph::embedding_layer(&ModelSpec::small_production());
        let large = OpGraph::embedding_layer(&ModelSpec::large_production());
        let per = SimTime::from_us(1.0);
        assert!(large.dispatch_overhead(per) > small.dispatch_overhead(per));
        assert_eq!(small.dispatch_overhead(per), SimTime::from_us((7 * 47 + 1) as f64));
    }

    #[test]
    fn invocations_dwarf_kind_count() {
        // The paper's point: few op *types*, many invocations.
        let g = OpGraph::embedding_layer(&ModelSpec::small_production());
        assert!(g.invocation_count() > 10 * g.distinct_kinds());
    }

    #[test]
    fn short_query_is_rejected() {
        let m = model();
        let engine = CpuReferenceEngine::build(&m, 5).unwrap();
        let g = OpGraph::full_inference(&m);
        assert!(g.execute(engine.catalog(), engine.mlp(), &[1, 2, 3]).is_err());
    }
}
