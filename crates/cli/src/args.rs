//! Hand-rolled argument parsing (no external CLI dependency).

use std::fmt;

use microrec_core::ExecutionMode;
use microrec_embedding::{ModelSpec, Precision};
use microrec_placement::AllocStrategy;

/// Which model to operate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelArg {
    /// The smaller Alibaba production model.
    Small,
    /// The larger Alibaba production model.
    Large,
    /// A DLRM-RMC2 instance: `dlrm:<tables>x<dim>`.
    Dlrm {
        /// Number of tables.
        tables: usize,
        /// Embedding vector length.
        dim: u32,
    },
}

impl ModelArg {
    /// Parses `small`, `large`, or `dlrm:<tables>x<dim>`.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "small" => Ok(ModelArg::Small),
            "large" => Ok(ModelArg::Large),
            other => {
                let spec = other
                    .strip_prefix("dlrm:")
                    .ok_or_else(|| ArgError(format!("unknown model `{other}`")))?;
                let (t, d) = spec.split_once('x').ok_or_else(|| {
                    ArgError(format!("expected dlrm:<tables>x<dim>, got `{other}`"))
                })?;
                let tables =
                    t.parse::<usize>().map_err(|_| ArgError(format!("bad table count `{t}`")))?;
                let dim = d.parse::<u32>().map_err(|_| ArgError(format!("bad dim `{d}`")))?;
                if tables == 0 || dim == 0 {
                    return Err(ArgError("tables and dim must be positive".into()));
                }
                Ok(ModelArg::Dlrm { tables, dim })
            }
        }
    }

    /// Builds the corresponding spec.
    #[must_use]
    pub fn to_spec(&self) -> ModelSpec {
        match self {
            ModelArg::Small => ModelSpec::small_production(),
            ModelArg::Large => ModelSpec::large_production(),
            ModelArg::Dlrm { tables, dim } => ModelSpec::dlrm_rmc2(*tables, *dim),
        }
    }
}

/// Parses a precision flag value.
pub fn parse_precision(s: &str) -> Result<Precision, ArgError> {
    match s {
        "f32" => Ok(Precision::F32),
        "fixed16" | "fp16" => Ok(Precision::Fixed16),
        "fixed32" | "fp32" => Ok(Precision::Fixed32),
        other => Err(ArgError(format!("unknown precision `{other}` (f32|fixed16|fixed32)"))),
    }
}

/// Parses a strategy flag value.
pub fn parse_strategy(s: &str) -> Result<AllocStrategy, ArgError> {
    match s {
        "roundrobin" | "rr" => Ok(AllocStrategy::RoundRobin),
        "lpt" => Ok(AllocStrategy::Lpt),
        other => Err(ArgError(format!("unknown strategy `{other}` (roundrobin|lpt)"))),
    }
}

/// Parses a byte-count flag value: a plain integer with an optional
/// `k`/`m`/`g` (binary) suffix, case-insensitive.
pub fn parse_bytes(s: &str) -> Result<u64, ArgError> {
    let (digits, shift) = match s.as_bytes().last().map(u8::to_ascii_lowercase) {
        Some(b'k') => (&s[..s.len() - 1], 10),
        Some(b'm') => (&s[..s.len() - 1], 20),
        Some(b'g') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n = digits.parse::<u64>().map_err(|_| ArgError(format!("bad byte count `{s}`")))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| ArgError(format!("byte count `{s}` overflows")))
}

/// A parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// Supported subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run Algorithm 1 and print the placement.
    Plan {
        /// Target model.
        model: ModelArg,
        /// Disable Cartesian merging.
        no_merge: bool,
        /// DRAM allocation strategy.
        strategy: AllocStrategy,
        /// Print the per-bank table map.
        verbose: bool,
        /// Emit the full plan as JSON instead of a summary.
        json: bool,
    },
    /// Run inferences and print CTRs plus engine statistics.
    Predict {
        /// Target model.
        model: ModelArg,
        /// Number of queries.
        queries: usize,
        /// Datapath precision.
        precision: Precision,
        /// Zipf skew of the query stream.
        zipf: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Compare CPU baseline vs MicroRec at one batch size.
    Compare {
        /// Target model.
        model: ModelArg,
        /// CPU batch size.
        batch: u64,
        /// Datapath precision.
        precision: Precision,
    },
    /// Explore the PE design space.
    Explore {
        /// Target model.
        model: ModelArg,
        /// Datapath precision.
        precision: Precision,
        /// How many top designs to print.
        top: usize,
    },
    /// Simulate online serving under a Poisson load, or (with `--live`)
    /// drive the real micro-batching runtime with paced wall-clock
    /// arrivals.
    Serve {
        /// Target model.
        model: ModelArg,
        /// Offered load in queries per second.
        rate: f64,
        /// Queries to simulate.
        queries: usize,
        /// SLA in milliseconds.
        sla_ms: f64,
        /// Also route overflow to the CPU baseline.
        hybrid: bool,
        /// Run the live serving runtime instead of the simulation.
        live: bool,
        /// Worker threads (engine replicas) for the live runtime.
        workers: usize,
        /// Micro-batch size close threshold for the live runtime.
        max_batch: usize,
        /// Micro-batch deadline close threshold in microseconds.
        wait_us: u64,
        /// Admission-queue depth for the live runtime.
        queue_depth: usize,
        /// Reject (drop) requests on a full queue instead of blocking.
        reject: bool,
        /// How each worker executes: monolithic (default), `--pipelined`
        /// staged dataflow, `--replicated` staged dataflow with lookup
        /// lanes, `--auto` startup calibration picking the winner, or
        /// `--routed` per-batch cost-model routing across the full path
        /// matrix.
        execution: ExecutionMode,
        /// End-to-end latency objective per request in microseconds,
        /// consulted by the routed mode's SLO guard (0 disables it).
        slo_us: u64,
        /// Resident embedding budget in bytes for the tiered parameter
        /// store (0 = keep every table resident; `k`/`m`/`g` suffixes
        /// accepted). Tables that do not fit are served from a
        /// file-backed cold tier.
        resident_bytes: u64,
        /// Traffic-adaptive online re-sharding for the live runtime:
        /// observed per-table counters drive epoch-based arena
        /// generations published while serving.
        adaptive: bool,
    },
    /// Print usage.
    Help,
}

/// Parses the full argument vector (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Result<Cli, ArgError> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Cli { command: Command::Help });
    };
    let rest: Vec<&str> = it.collect();
    let flag = |name: &str| -> Option<&str> {
        rest.iter().position(|&a| a == name).and_then(|i| rest.get(i + 1).copied())
    };
    let has = |name: &str| rest.contains(&name);
    let model =
        || -> Result<ModelArg, ArgError> { ModelArg::parse(flag("--model").unwrap_or("small")) };
    let precision = || -> Result<Precision, ArgError> {
        parse_precision(flag("--precision").unwrap_or("fixed16"))
    };

    let command = match cmd {
        "plan" => Command::Plan {
            model: model()?,
            no_merge: has("--no-merge"),
            strategy: parse_strategy(flag("--strategy").unwrap_or("roundrobin"))?,
            verbose: has("--verbose") || has("-v"),
            json: has("--json"),
        },
        "predict" => Command::Predict {
            model: model()?,
            queries: flag("--queries")
                .unwrap_or("10")
                .parse()
                .map_err(|_| ArgError("bad --queries value".into()))?,
            precision: precision()?,
            zipf: flag("--zipf")
                .unwrap_or("1.05")
                .parse()
                .map_err(|_| ArgError("bad --zipf value".into()))?,
            seed: flag("--seed")
                .unwrap_or("42")
                .parse()
                .map_err(|_| ArgError("bad --seed value".into()))?,
        },
        "compare" => Command::Compare {
            model: model()?,
            batch: flag("--batch")
                .unwrap_or("2048")
                .parse()
                .map_err(|_| ArgError("bad --batch value".into()))?,
            precision: precision()?,
        },
        "explore" => Command::Explore {
            model: model()?,
            precision: precision()?,
            top: flag("--top")
                .unwrap_or("5")
                .parse()
                .map_err(|_| ArgError("bad --top value".into()))?,
        },
        "serve" => Command::Serve {
            model: model()?,
            rate: flag("--rate")
                .unwrap_or("50000")
                .parse()
                .map_err(|_| ArgError("bad --rate value".into()))?,
            queries: flag("--queries")
                .unwrap_or("50000")
                .parse()
                .map_err(|_| ArgError("bad --queries value".into()))?,
            sla_ms: flag("--sla-ms")
                .unwrap_or("25")
                .parse()
                .map_err(|_| ArgError("bad --sla-ms value".into()))?,
            hybrid: has("--hybrid"),
            live: has("--live"),
            workers: flag("--workers")
                .unwrap_or("2")
                .parse()
                .map_err(|_| ArgError("bad --workers value".into()))?,
            max_batch: flag("--max-batch")
                .unwrap_or("32")
                .parse()
                .map_err(|_| ArgError("bad --max-batch value".into()))?,
            wait_us: flag("--wait-us")
                .unwrap_or("2000")
                .parse()
                .map_err(|_| ArgError("bad --wait-us value".into()))?,
            queue_depth: flag("--queue-depth")
                .unwrap_or("1024")
                .parse()
                .map_err(|_| ArgError("bad --queue-depth value".into()))?,
            reject: has("--reject"),
            execution: {
                let picked: Vec<(&str, ExecutionMode)> = [
                    ("--pipelined", ExecutionMode::Pipelined),
                    ("--replicated", ExecutionMode::Replicated),
                    ("--auto", ExecutionMode::Auto),
                    ("--routed", ExecutionMode::Routed),
                ]
                .into_iter()
                .filter(|(flag, _)| has(flag))
                .collect();
                match picked.as_slice() {
                    [] => ExecutionMode::Monolithic,
                    [(_, mode)] => *mode,
                    more => {
                        let names: Vec<&str> = more.iter().map(|(f, _)| *f).collect();
                        return Err(ArgError(format!(
                            "pick one execution mode, got {}",
                            names.join(" and ")
                        )));
                    }
                }
            },
            slo_us: flag("--slo-us")
                .unwrap_or("0")
                .parse()
                .map_err(|_| ArgError("bad --slo-us value".into()))?,
            resident_bytes: flag("--resident-bytes").map_or(Ok(0), parse_bytes)?,
            adaptive: has("--adaptive"),
        },
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(ArgError(format!("unknown command `{other}` (try `help`)"))),
    };
    Ok(Cli { command })
}

/// The usage text.
pub const USAGE: &str = "\
microrec — MicroRec (MLSys 2021) reproduction CLI

USAGE:
  microrec plan    [--model small|large|dlrm:<t>x<d>] [--no-merge] [--strategy roundrobin|lpt] [-v] [--json]
  microrec predict [--model ...] [--queries N] [--precision f32|fixed16|fixed32] [--zipf S] [--seed N]
  microrec compare [--model ...] [--batch N] [--precision ...]
  microrec explore [--model ...] [--precision ...] [--top N]
  microrec serve   [--model ...] [--rate QPS] [--queries N] [--sla-ms MS] [--hybrid]
  microrec serve --live [--model ...] [--rate QPS] [--queries N] [--workers N] [--max-batch N] [--wait-us US] [--queue-depth N] [--reject] [--pipelined|--replicated|--auto|--routed] [--slo-us US] [--resident-bytes N[k|m|g]] [--adaptive]
  microrec help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn model_arg_parsing() {
        assert_eq!(ModelArg::parse("small").unwrap(), ModelArg::Small);
        assert_eq!(ModelArg::parse("large").unwrap(), ModelArg::Large);
        assert_eq!(ModelArg::parse("dlrm:8x16").unwrap(), ModelArg::Dlrm { tables: 8, dim: 16 });
        assert!(ModelArg::parse("medium").is_err());
        assert!(ModelArg::parse("dlrm:8").is_err());
        assert!(ModelArg::parse("dlrm:0x4").is_err());
        assert!(ModelArg::parse("dlrm:axb").is_err());
    }

    #[test]
    fn model_arg_builds_specs() {
        assert_eq!(ModelArg::Small.to_spec().num_tables(), 47);
        assert_eq!(ModelArg::Dlrm { tables: 9, dim: 8 }.to_spec().num_tables(), 9);
    }

    #[test]
    fn precision_and_strategy_parsing() {
        assert_eq!(parse_precision("fp16").unwrap(), Precision::Fixed16);
        assert_eq!(parse_precision("fixed32").unwrap(), Precision::Fixed32);
        assert_eq!(parse_precision("f32").unwrap(), Precision::F32);
        assert!(parse_precision("f64").is_err());
        assert_eq!(parse_strategy("lpt").unwrap(), AllocStrategy::Lpt);
        assert_eq!(parse_strategy("rr").unwrap(), AllocStrategy::RoundRobin);
        assert!(parse_strategy("greedy").is_err());
    }

    #[test]
    fn full_command_lines() {
        let cli = parse(&argv("plan --model large --no-merge -v --json")).unwrap();
        assert_eq!(
            cli.command,
            Command::Plan {
                model: ModelArg::Large,
                no_merge: true,
                strategy: AllocStrategy::RoundRobin,
                verbose: true,
                json: true
            }
        );
        let cli = parse(&argv("predict --queries 5 --zipf 0.9 --seed 7")).unwrap();
        match cli.command {
            Command::Predict { queries, zipf, seed, .. } => {
                assert_eq!(queries, 5);
                assert_eq!(zipf, 0.9);
                assert_eq!(seed, 7);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse(&argv("compare --model dlrm:12x64 --batch 256")).unwrap();
        match cli.command {
            Command::Compare { batch, model, .. } => {
                assert_eq!(batch, 256);
                assert_eq!(model, ModelArg::Dlrm { tables: 12, dim: 64 });
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn defaults_and_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("help")).unwrap().command, Command::Help);
        let cli = parse(&argv("explore")).unwrap();
        match cli.command {
            Command::Explore { top, model, precision } => {
                assert_eq!(top, 5);
                assert_eq!(model, ModelArg::Small);
                assert_eq!(precision, Precision::Fixed16);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn serve_command_parses() {
        let cli = parse(&argv("serve --rate 80000 --sla-ms 10 --hybrid")).unwrap();
        match cli.command {
            Command::Serve { rate, sla_ms, hybrid, queries, live, workers, .. } => {
                assert_eq!(rate, 80_000.0);
                assert_eq!(sla_ms, 10.0);
                assert!(hybrid);
                assert_eq!(queries, 50_000);
                assert!(!live);
                assert_eq!(workers, 2);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn serve_live_command_parses() {
        let cli = parse(&argv(
            "serve --live --rate 500 --queries 200 --workers 3 --max-batch 16 \
             --wait-us 1500 --queue-depth 64 --reject --pipelined",
        ))
        .unwrap();
        match cli.command {
            Command::Serve {
                live,
                rate,
                queries,
                workers,
                max_batch,
                wait_us,
                queue_depth,
                reject,
                execution,
                ..
            } => {
                assert!(live);
                assert_eq!(rate, 500.0);
                assert_eq!(queries, 200);
                assert_eq!(workers, 3);
                assert_eq!(max_batch, 16);
                assert_eq!(wait_us, 1_500);
                assert_eq!(queue_depth, 64);
                assert!(reject);
                assert_eq!(execution, ExecutionMode::Pipelined);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Not passing the flag leaves the monolithic default, no SLO, the
        // all-resident (untiered) store, and static placement.
        match parse(&argv("serve --live")).unwrap().command {
            Command::Serve { execution, slo_us, resident_bytes, adaptive, .. } => {
                assert_eq!(execution, ExecutionMode::Monolithic);
                assert_eq!(slo_us, 0);
                assert_eq!(resident_bytes, 0);
                assert!(!adaptive);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("serve --live --adaptive")).unwrap().command {
            Command::Serve { adaptive, .. } => assert!(adaptive),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("serve --live --routed --slo-us 2500")).unwrap().command {
            Command::Serve { execution, slo_us, .. } => {
                assert_eq!(execution, ExecutionMode::Routed);
                assert_eq!(slo_us, 2_500);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("serve --live --slo-us soon")).is_err());
        assert!(parse(&argv("serve --live --workers many")).is_err());
        assert!(parse(&argv("serve --live --wait-us -1")).is_err());
    }

    #[test]
    fn execution_mode_flags_parse_and_conflict() {
        for (flags, want) in [
            ("--replicated", ExecutionMode::Replicated),
            ("--auto", ExecutionMode::Auto),
            ("--routed", ExecutionMode::Routed),
        ] {
            match parse(&argv(&format!("serve --live {flags}"))).unwrap().command {
                Command::Serve { execution, .. } => assert_eq!(execution, want),
                other => panic!("wrong command {other:?}"),
            }
        }
        let err = parse(&argv("serve --live --pipelined --auto")).unwrap_err();
        assert!(err.0.contains("one execution mode"), "{err}");
        assert!(parse(&argv("serve --live --replicated --pipelined --auto")).is_err());
        assert!(parse(&argv("serve --live --routed --auto")).is_err());
    }

    #[test]
    fn resident_bytes_flag_parses_with_suffixes() {
        for (arg, want) in
            [("131072", 131_072u64), ("512k", 512 << 10), ("64m", 64 << 20), ("2G", 2 << 30)]
        {
            match parse(&argv(&format!("serve --live --resident-bytes {arg}"))).unwrap().command {
                Command::Serve { resident_bytes, .. } => assert_eq!(resident_bytes, want, "{arg}"),
                other => panic!("wrong command {other:?}"),
            }
        }
        assert_eq!(parse_bytes("0").unwrap(), 0);
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("12q").is_err());
        assert!(parse_bytes("99999999999999999999g").is_err());
        assert!(parse(&argv("serve --live --resident-bytes big")).is_err());
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("predict --queries lots")).is_err());
        assert!(parse(&argv("compare --batch -3")).is_err());
        assert!(parse(&argv("plan --strategy quantum")).is_err());
    }
}
