//! Regenerates Table 4: embedding-layer latency, CPU baseline vs FPGA
//! (HBM only, and HBM + Cartesian).

use microrec_bench::{fmt_speedup, print_table};
use microrec_core::{EmbeddingReport, MicroRec};
use microrec_cpu::CpuTimingModel;
use microrec_embedding::ModelSpec;
use microrec_placement::HeuristicOptions;

const BATCHES: [u64; 6] = [1, 64, 256, 512, 1024, 2048];

fn main() {
    let cpu = CpuTimingModel::aws_16vcpu();
    // Paper: (model) -> (hbm-only us, hbm+cartesian us, speedups at B=2048)
    let paper =
        [("alibaba-small", 0.774, 0.458, 8.17, 13.82), ("alibaba-large", 2.26, 1.63, 11.07, 14.70)];
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        let merged = MicroRec::builder(model.clone()).build().expect("merged engine");
        let unmerged = MicroRec::builder(model.clone())
            .search_options(HeuristicOptions { allow_merge: false, ..Default::default() })
            .build()
            .expect("unmerged engine");
        let report = EmbeddingReport::build(&merged, &unmerged, &cpu, &BATCHES);

        let mut rows = Vec::new();
        rows.push(
            std::iter::once("CPU latency (ms)".to_string())
                .chain(report.cpu.iter().map(|(_, t)| format!("{:.2}", t.as_ms())))
                .collect::<Vec<_>>(),
        );
        let speedups = report.speedups();
        rows.push(
            std::iter::once("Speedup: HBM".to_string())
                .chain(speedups.iter().map(|(_, h, _)| fmt_speedup(*h)))
                .collect(),
        );
        rows.push(
            std::iter::once("Speedup: HBM+Cartesian".to_string())
                .chain(speedups.iter().map(|(_, _, c)| fmt_speedup(*c)))
                .collect(),
        );
        let mut headers: Vec<String> = vec!["".into()];
        headers.extend(BATCHES.iter().map(|b| format!("B={b}")));
        print_table(&format!("Table 4: Embedding layer, {}", report.model), &headers, &rows);

        let p = paper.iter().find(|r| r.0 == report.model).expect("paper row");
        println!(
            "FPGA lookup latency: HBM only {:.3} us (paper {:.3}), HBM+Cartesian {:.3} us (paper {:.3})",
            report.fpga_hbm.as_us(),
            p.1,
            report.fpga_hbm_cartesian.as_us(),
            p.2,
        );
        let last = speedups.last().expect("rows");
        println!(
            "B=2048 speedup: HBM {} (paper {}x), HBM+Cartesian {} (paper {}x)",
            fmt_speedup(last.1),
            p.3,
            fmt_speedup(last.2),
            p.4,
        );
    }
}
