//! Runs every paper table/figure binary in sequence — the single command
//! behind EXPERIMENTS.md.
//!
//! `cargo run -p microrec-bench --bin all_experiments`

use std::process::Command;

const BINS: &[&str] = &[
    "table1",
    "fig3",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig7",
    "cost",
    "ablation",
    "rowbuffer",
    "hotcache",
    "controller",
    "design_space",
    "scaleout",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in BINS {
        let rule = "=".repeat(70);
        println!("\n{rule}\n=== {bin}\n{rule}");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}");
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiment binaries completed", BINS.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
