//! Seeded violations of the escape-hatch grammar itself: every broken
//! `lint: allow` form must surface as a `malformed-allow` diagnostic,
//! so a typo can never silently disable enforcement.

pub fn f() -> usize {
    // lint: allow(hot-path-alloc)
    let a = 1;
    // lint: allow(no-such-lint) reason text
    let b = 2;
    // lint: allow hot-path-alloc no parentheses
    let c = 3;
    a + b + c
}
