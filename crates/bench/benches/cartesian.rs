//! Cartesian product construction and index arithmetic.

use std::time::Duration;

use microrec_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use microrec_embedding::cartesian::{materialize_product, merged_row_index, unmerged_row_indices};
use microrec_embedding::{EmbeddingTable, TableSpec};

fn bench_index_math(c: &mut Criterion) {
    let sizes = [380u64, 660];
    let mut group = c.benchmark_group("cartesian_index");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));
    group.bench_function("merged_row_index_pair", |b| {
        b.iter(|| merged_row_index(black_box(&sizes), black_box(&[123, 456])).unwrap())
    });
    group.bench_function("unmerged_row_indices_pair", |b| {
        b.iter(|| unmerged_row_indices(black_box(&sizes), black_box(123_456)).unwrap())
    });
    group.finish();
}

fn bench_materialize(c: &mut Criterion) {
    let a = EmbeddingTable::procedural(TableSpec::new("a", 380, 4), 1);
    let b = EmbeddingTable::procedural(TableSpec::new("b", 660, 4), 2);
    let mut group = c.benchmark_group("cartesian_materialize");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(380 * 660 * 8 * 4));
    group.bench_function("product_380x660_dim8", |bench| {
        bench.iter(|| materialize_product(black_box(&[&a, &b]), u64::MAX).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_index_math, bench_materialize);
criterion_main!(benches);
