//! Observed-traffic profiles for re-scoring placement plans.
//!
//! The static search (Algorithm 1) weighs every logical table equally:
//! each inference issues `lookups_per_table` reads per table, so under a
//! uniform workload all tables load their banks identically. Live serving
//! breaks that symmetry — the hot-row cache absorbs accesses to skewed
//! tables while cold tables hit the backing store on every read. A
//! [`TrafficProfile`] captures that asymmetry as per-logical-table access
//! counts distilled from the runtime's lookup counters, and
//! [`Plan::cost_with_traffic`](crate::Plan::cost_with_traffic) re-scores a
//! plan under those weights.
//!
//! Everything here is integer arithmetic over explicit snapshots: two
//! processes distilling the same counter values produce byte-identical
//! profiles and identical re-scored plans.

/// Per-logical-table access weights distilled from observed counters.
///
/// An empty profile (from [`TrafficProfile::uniform`]) means "no
/// information": every consumer must treat it exactly as the uniform
/// workload the static search assumes, so the uniform profile is the
/// bit-identical default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficProfile {
    counts: Vec<u64>,
}

impl TrafficProfile {
    /// The uniform (no-information) profile.
    #[must_use]
    pub fn uniform() -> Self {
        TrafficProfile { counts: Vec::new() }
    }

    /// Builds a profile from raw per-logical-table access counts.
    #[must_use]
    pub fn from_counts(counts: Vec<u64>) -> Self {
        TrafficProfile { counts }
    }

    /// Distills a profile from per-table hot-row cache counters.
    ///
    /// Cache hits never reach the backing banks, so the load a table puts
    /// on memory is its *miss* count. When no misses were recorded at all
    /// (e.g. the cache is disabled and every access is counted as a hit,
    /// or traffic has not started) the total access count `hits + misses`
    /// is used instead so the profile still reflects relative demand.
    ///
    /// # Panics
    ///
    /// Panics if `hits` and `misses` have different lengths.
    #[must_use]
    pub fn from_lookup_counts(hits: &[u64], misses: &[u64]) -> Self {
        assert_eq!(hits.len(), misses.len(), "per-table counter slices must align");
        if misses.iter().any(|&m| m > 0) {
            TrafficProfile { counts: misses.to_vec() }
        } else {
            TrafficProfile {
                counts: hits.iter().zip(misses).map(|(&h, &m)| h.saturating_add(m)).collect(),
            }
        }
    }

    /// `true` when the profile carries no skew: empty, or every table has
    /// the same count. Consumers must fall back to the exact uniform cost
    /// path in this case so default behaviour stays bit-identical.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        match self.counts.first() {
            None => true,
            Some(&first) => self.counts.iter().all(|&c| c == first),
        }
    }

    /// The raw per-logical-table counts (empty for the uniform profile).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count for logical table `idx` (`0` when out of range).
    #[must_use]
    pub fn count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Sum of all counts.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Number of tables the profile covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if the profile is empty (uniform sentinel).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_is_uniform() {
        assert!(TrafficProfile::uniform().is_uniform());
        assert!(TrafficProfile::from_counts(vec![7, 7, 7]).is_uniform());
        assert!(TrafficProfile::from_counts(vec![0, 0]).is_uniform());
        assert!(!TrafficProfile::from_counts(vec![1, 2]).is_uniform());
    }

    #[test]
    fn distill_prefers_misses() {
        let p = TrafficProfile::from_lookup_counts(&[100, 100], &[5, 50]);
        assert_eq!(p.counts(), &[5, 50]);
    }

    #[test]
    fn distill_falls_back_to_totals_without_misses() {
        let p = TrafficProfile::from_lookup_counts(&[100, 300], &[0, 0]);
        assert_eq!(p.counts(), &[100, 300]);
        assert_eq!(p.total(), 400);
    }

    #[test]
    fn count_out_of_range_is_zero() {
        let p = TrafficProfile::from_counts(vec![3]);
        assert_eq!(p.count(0), 3);
        assert_eq!(p.count(9), 0);
    }
}
