//! Seeded violation: allocation inside a designated hot function.

pub fn hot_fn(n: usize) -> Vec<u32> {
    let mut out = Vec::new();
    out.extend((0..n as u32).map(|i| i * 2));
    out
}

pub fn cold_setup() -> Vec<u32> {
    // Not in the manifest's `functions` list: allocation here is fine.
    vec![1, 2, 3]
}
