//! Ranking-quality metrics.
//!
//! CTR models exist to *rank* candidates (§2.1: "product candidates with
//! the highest CTRs are recommended"). Absolute CTR error from
//! quantization is therefore the wrong lens; what matters is whether the
//! fixed-point engine ranks candidates like the `f32` reference. This
//! module provides rank correlation (Kendall's τ) and top-k agreement so
//! the precision ablation can be judged on recommendation quality.

/// Indices of `scores` sorted by descending score (ties broken by index,
/// so rankings are deterministic).
#[must_use]
pub fn rank_descending(scores: &[f32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
}

/// Kendall's τ-a between two score vectors over the same candidates
/// (1 = identical order, −1 = reversed, 0 = unrelated).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn kendall_tau(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let prod = f64::from(da) * f64::from(db);
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Fraction of the reference's top-`k` candidates that also appear in the
/// test ranking's top-`k`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn top_k_overlap(reference: &[f32], test: &[f32], k: usize) -> f64 {
    assert_eq!(reference.len(), test.len(), "score vectors must align");
    let k = k.min(reference.len());
    if k == 0 {
        return 1.0;
    }
    let top_ref: Vec<usize> = rank_descending(reference).into_iter().take(k).collect();
    let top_test: Vec<usize> = rank_descending(test).into_iter().take(k).collect();
    let shared = top_ref.iter().filter(|i| top_test.contains(i)).count();
    shared as f64 / k as f64
}

/// Summary of a ranking-fidelity comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingFidelity {
    /// Kendall's τ between reference and test scores.
    pub kendall_tau: f64,
    /// Top-1 agreement (did the same candidate win?).
    pub top1_match: bool,
    /// Overlap of the top-10 sets.
    pub top10_overlap: f64,
}

/// Compares a test engine's scores to the reference's.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn ranking_fidelity(reference: &[f32], test: &[f32]) -> RankingFidelity {
    RankingFidelity {
        kendall_tau: kendall_tau(reference, test),
        top1_match: rank_descending(reference).first() == rank_descending(test).first(),
        top10_overlap: top_k_overlap(reference, test, 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MicroRec;
    use microrec_cpu::CpuReferenceEngine;
    use microrec_embedding::{ModelSpec, Precision};
    use microrec_workload::{QueryGenConfig, QueryGenerator};

    #[test]
    fn rank_descending_is_stable() {
        let scores = [0.1f32, 0.9, 0.5, 0.9];
        assert_eq!(rank_descending(&scores), vec![1, 3, 2, 0]);
        assert!(rank_descending(&[]).is_empty());
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let rev = [4.0f32, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        assert_eq!(kendall_tau(&a[..1], &rev[..1]), 1.0);
        // One swapped adjacent pair: tau = (5 - 1) / 6.
        let swapped = [1.0f32, 3.0, 2.0, 4.0];
        assert!((kendall_tau(&a, &swapped) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_overlap_counts_sets() {
        let a = [0.9f32, 0.8, 0.7, 0.1];
        let b = [0.9f32, 0.1, 0.8, 0.7];
        assert_eq!(top_k_overlap(&a, &b, 1), 1.0);
        assert!((top_k_overlap(&a, &b, 2) - 0.5).abs() < 1e-12);
        assert_eq!(top_k_overlap(&a, &b, 0), 1.0);
        assert_eq!(top_k_overlap(&a, &b, 99), 1.0, "k clamps to n");
    }

    #[test]
    fn quantized_engines_preserve_ranking() {
        let model = ModelSpec::dlrm_rmc2(8, 16);
        let cpu = CpuReferenceEngine::build(&model, 21).unwrap();
        let mut q16 = MicroRec::builder(model.clone())
            .precision(Precision::Fixed16)
            .seed(21)
            .build()
            .unwrap();
        let mut q32 = MicroRec::builder(model.clone())
            .precision(Precision::Fixed32)
            .seed(21)
            .build()
            .unwrap();
        let mut gen = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
        let candidates = gen.next_batch(24);
        let reference: Vec<f32> = candidates.iter().map(|q| cpu.predict(q).unwrap()).collect();
        let s16: Vec<f32> = candidates.iter().map(|q| q16.predict(q).unwrap()).collect();
        let s32: Vec<f32> = candidates.iter().map(|q| q32.predict(q).unwrap()).collect();

        let f16 = ranking_fidelity(&reference, &s16);
        let f32fid = ranking_fidelity(&reference, &s32);
        assert!(f32fid.kendall_tau > 0.95, "fixed32 tau {}", f32fid.kendall_tau);
        assert!(f16.kendall_tau > 0.6, "fixed16 tau {}", f16.kendall_tau);
        assert!(f32fid.kendall_tau >= f16.kendall_tau - 1e-9);
        assert!(f32fid.top10_overlap >= 0.9);
    }
}
