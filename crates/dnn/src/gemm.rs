//! GEMM / GEMV kernels.
//!
//! The accelerator's compute stages and the CPU baseline both reduce to
//! dense matrix–vector and matrix–matrix products. A cache-blocked `f32`
//! GEMM is provided for the measured (host) path, plus a generic kernel
//! over [`FixedNum`] so the same code runs the accelerator's Q-format
//! datapaths.

use crate::error::DnnError;
use crate::fixed::FixedNum;
use crate::tensor::Matrix;

/// Block edge for the cache-blocked GEMM.
const BLOCK: usize = 64;

/// `y = W · x` for a row-major `W` (`out × in`), generic over precision.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `x` or `y` disagree with `W`'s
/// shape.
pub fn gemv<T: FixedNum>(
    weights: &Matrix,
    x: &[T],
    y: &mut [T],
) -> Result<(), DnnError> {
    if x.len() != weights.cols() {
        return Err(DnnError::ShapeMismatch {
            context: "gemv input",
            expected: weights.cols(),
            actual: x.len(),
        });
    }
    if y.len() != weights.rows() {
        return Err(DnnError::ShapeMismatch {
            context: "gemv output",
            expected: weights.rows(),
            actual: y.len(),
        });
    }
    for (r, slot) in y.iter_mut().enumerate() {
        let row = weights.row(r);
        let mut acc = T::ZERO;
        for (w, &xi) in row.iter().zip(x) {
            acc = acc + T::from_f32(*w) * xi;
        }
        *slot = acc;
    }
    Ok(())
}

/// `C = A · B` with a naive triple loop (reference kernel).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if inner dimensions disagree.
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Result<Matrix, DnnError> {
    if a.cols() != b.rows() {
        return Err(DnnError::ShapeMismatch {
            context: "gemm inner dimension",
            expected: a.cols(),
            actual: b.rows(),
        });
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a.get(i, k);
            for j in 0..b.cols() {
                let v = c.get(i, j) + aik * b.get(k, j);
                c.set(i, j, v);
            }
        }
    }
    Ok(c)
}

/// `C = A · B` with cache blocking — the kernel used by the measured CPU
/// path and the Criterion GEMM benches.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if inner dimensions disagree.
pub fn gemm_blocked(a: &Matrix, b: &Matrix) -> Result<Matrix, DnnError> {
    if a.cols() != b.rows() {
        return Err(DnnError::ShapeMismatch {
            context: "gemm inner dimension",
            expected: a.cols(),
            actual: b.rows(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = vec![0.0f32; m * n];
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    for i0 in (0..m).step_by(BLOCK) {
        for k0 in (0..k).step_by(BLOCK) {
            for j0 in (0..n).step_by(BLOCK) {
                let i_end = (i0 + BLOCK).min(m);
                let k_end = (k0 + BLOCK).min(k);
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    for kk in k0..k_end {
                        let aik = a_s[i * k + kk];
                        let brow = &b_s[kk * n + j0..kk * n + j_end];
                        let crow = &mut c[i * n + j0..i * n + j_end];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
    Matrix::from_vec(m, n, c)
}

/// Multiply–accumulate operation count of a GEMM (2·m·k·n, the convention
/// behind the paper's GOP/s numbers).
#[must_use]
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{Q16, Q32};

    fn det_matrix(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            // Small deterministic values in [-0.5, 0.5).
            let v = ((r * 31 + c * 17) as f32 * seed).sin();
            v * 0.5
        })
    }

    #[test]
    fn gemv_matches_manual_dot() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = [1.0f32, 0.5, -1.0];
        let mut y = [0.0f32; 2];
        gemv(&w, &x, &mut y).unwrap();
        assert_eq!(y, [1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn gemv_shape_errors() {
        let w = Matrix::zeros(2, 3);
        let mut y = [0.0f32; 2];
        assert!(gemv(&w, &[0.0; 4], &mut y).is_err());
        let mut y3 = [0.0f32; 3];
        assert!(gemv(&w, &[0.0; 3], &mut y3).is_err());
    }

    #[test]
    fn blocked_matches_naive() {
        let a = det_matrix(70, 65, 0.37);
        let b = det_matrix(65, 130, 0.73);
        let c1 = gemm_naive(&a, &b).unwrap();
        let c2 = gemm_blocked(&a, &b).unwrap();
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm_naive(&a, &b).is_err());
        assert!(gemm_blocked(&a, &b).is_err());
    }

    #[test]
    fn fixed_point_gemv_tracks_f32() {
        let w = det_matrix(16, 32, 0.11);
        let x_f: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.3).cos() * 0.5).collect();

        let mut y_f = vec![0.0f32; 16];
        gemv(&w, &x_f, &mut y_f).unwrap();

        let x_q: Vec<Q32> = x_f.iter().map(|&v| Q32::from_f32(v)).collect();
        let mut y_q = vec![Q32::ZERO; 16];
        gemv(&w, &x_q, &mut y_q).unwrap();
        for (f, q) in y_f.iter().zip(&y_q) {
            assert!((f - q.to_f32()).abs() < 1e-2, "Q32 {f} vs {}", q.to_f32());
        }

        let x_q: Vec<Q16> = x_f.iter().map(|&v| Q16::from_f32(v)).collect();
        let mut y_q = vec![Q16::ZERO; 16];
        gemv(&w, &x_q, &mut y_q).unwrap();
        for (f, q) in y_f.iter().zip(&y_q) {
            assert!((f - q.to_f32()).abs() < 0.3, "Q16 {f} vs {}", q.to_f32());
        }
    }

    #[test]
    fn flops_convention() {
        // The small production model's first layer: 352 x 1024.
        assert_eq!(gemm_flops(1, 352, 1024), 720_896);
    }
}
