//! Measures host-side serving throughput of the batched fast path on
//! DLRM-RMC2: `predict_batch(64)` against 64 sequential `predict` calls,
//! verifying bit-identical outputs, and prints a single-line JSON record
//! (committed as `BENCH_throughput.json`).
//!
//! Run with `cargo run --release --bin throughput`.

use std::time::Instant;

use microrec_core::MicroRec;
use microrec_embedding::ModelSpec;

const BATCH: usize = 64;
const ITERS: usize = 100;
const WARMUP: usize = 10;

fn build(model: &ModelSpec) -> MicroRec {
    MicroRec::builder(model.clone()).seed(42).build().expect("engine")
}

fn make_queries(model: &ModelSpec) -> Vec<Vec<u64>> {
    let lookups = model.lookups_per_table as u64;
    (0..BATCH)
        .map(|q| {
            model
                .tables
                .iter()
                .enumerate()
                .flat_map(|(t, spec)| {
                    (0..lookups).map(move |l| {
                        ((q as u64 * 131 + t as u64 * 31 + l * 17 + 7) * 2_654_435_761) % spec.rows
                    })
                })
                .collect()
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let model = ModelSpec::dlrm_rmc2(8, 16);
    let queries = make_queries(&model);

    // Bit-identity: batched outputs equal sequential outputs exactly.
    let mut seq_engine = build(&model);
    let mut batch_engine = build(&model);
    let expected: Vec<f32> =
        queries.iter().map(|q| seq_engine.predict(q).expect("predict")).collect();
    let got = batch_engine.predict_batch(&queries).expect("predict_batch");
    let bit_identical = expected.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "batched outputs diverged from sequential");

    // Sequential baseline: 64 predict() calls per round.
    let mut engine = build(&model);
    for _ in 0..WARMUP {
        for q in &queries {
            engine.predict(q).expect("predict");
        }
    }
    let mut seq_times = Vec::with_capacity(ITERS);
    let seq_start = Instant::now();
    for _ in 0..ITERS {
        let t = Instant::now();
        for q in &queries {
            engine.predict(q).expect("predict");
        }
        seq_times.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let seq_qps = (BATCH * ITERS) as f64 / seq_start.elapsed().as_secs_f64();

    // Batched fast path: one predict_batch(64) per round.
    let mut engine = build(&model);
    for _ in 0..WARMUP {
        engine.predict_batch(&queries).expect("predict_batch");
    }
    let mut batch_times = Vec::with_capacity(ITERS);
    let batch_start = Instant::now();
    for _ in 0..ITERS {
        let t = Instant::now();
        engine.predict_batch(&queries).expect("predict_batch");
        batch_times.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let qps = (BATCH * ITERS) as f64 / batch_start.elapsed().as_secs_f64();

    batch_times.sort_by(f64::total_cmp);
    seq_times.sort_by(f64::total_cmp);
    let p50 = percentile(&batch_times, 0.50);
    let p99 = percentile(&batch_times, 0.99);
    let speedup = qps / seq_qps;

    println!(
        "{{\"qps\": {qps:.1}, \"p50_us\": {p50:.2}, \"p99_us\": {p99:.2}, \"batch\": {BATCH}, \
         \"seq_qps\": {seq_qps:.1}, \"seq_p50_us\": {:.2}, \"speedup\": {speedup:.2}, \
         \"bit_identical\": {bit_identical}}}",
        percentile(&seq_times, 0.50),
    );
}
