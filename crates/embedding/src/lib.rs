//! # microrec-embedding
//!
//! The embedding substrate of the MicroRec reproduction (Jiang et al.,
//! MLSys 2021): embedding tables, model specifications matching the paper's
//! evaluated models, Cartesian-product table merging (§3.3), and the
//! logical→physical catalog that makes merging transparent to the model.
//!
//! ## Example
//!
//! ```
//! use microrec_embedding::{Catalog, MergePlan, ModelSpec, Precision};
//!
//! // The smaller Alibaba production model: 47 tables, 352-dim features.
//! let model = ModelSpec::small_production();
//! assert_eq!(model.num_tables(), 47);
//!
//! // Merge the two smallest tables; one memory read now serves both.
//! let plan = MergePlan::pairs(&[(45, 46)]);
//! let catalog = Catalog::build(&model, &plan, 42)?;
//! assert_eq!(catalog.physical_tables().len(), 46);
//!
//! // The feature vector is identical to the unmerged model's.
//! let indices: Vec<u64> = model.tables.iter().map(|t| t.rows / 2).collect();
//! let features = catalog.gather_vec(&indices)?;
//! assert_eq!(features.len(), 352);
//! # Ok::<(), microrec_embedding::EmbeddingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod cache;
pub mod cartesian;
mod catalog;
mod error;
mod gen;
mod precision;
mod spec;
mod table;
mod tiered;

pub use arena::{EmbeddingArena, RowFormat};
pub use cache::HotRowCache;
pub use catalog::{Catalog, MergePlan, PhysicalLookup, PhysicalTable};
pub use error::EmbeddingError;
pub use gen::{synthetic_model, SyntheticModelConfig};
pub use precision::Precision;
pub use spec::{ModelSpec, TableSpec};
pub use table::{synthetic_dense_features, EmbeddingTable};
pub use tiered::{ColdStore, ResidencyPlan, Tier, TierCounters, TieredBacking, TieredStore};
