//! Serving-frontier benchmark: drives the live micro-batching runtime
//! ([`ServingRuntime`]) with paced Poisson arrivals and sweeps offered
//! load × batch window × worker count, emitting one JSON record per point
//! (committed as `BENCH_serving.json`).
//!
//! Each point replays a seeded trace in real time, so offered load is a
//! wall-clock fact, not a simulation input. Before the sweep the bin
//! measures the sequential single-`predict` capacity of one engine
//! (matching `BENCH_throughput.json`'s `seq_qps`) and checks that a
//! runtime-served batch is bit-identical to sequential prediction.
//!
//! Run with `cargo run --release -p microrec-bench --bin serving`
//! (`-- --smoke` for the time-bounded CI variant).

use std::time::Instant;

use microrec_core::{
    AdmissionPolicy, MicroRec, MicroRecBuilder, ReplayOutcome, RuntimeConfig, RuntimeLookupStats,
    ServingFrontierRecord, ServingRuntime,
};
use microrec_embedding::{ModelSpec, RowFormat};
use microrec_json::ToJson;
use microrec_workload::{QueryGenConfig, RequestTrace};

/// Full-sweep requests per load point.
const FULL_POINT_REQUESTS: usize = 2_000;
/// Smoke-mode requests per load point (a few thousand total).
const SMOKE_POINT_REQUESTS: usize = 800;
/// Queries for the bit-identity check.
const IDENTITY_QUERIES: usize = 96;
/// Hot-row cache capacity in rows, shared config across every engine in
/// this bin. At dim 16 this is a 4 MiB hot tier over the model's 4 M rows;
/// Zipf(1.05) traffic concentrates most lookups on it.
const CACHE_ROWS: usize = 65_536;

/// The one engine configuration every path in this bin uses — sequential
/// baseline and runtime workers alike run f16 arena rows behind the
/// hot-row cache, so the bit-identity check compares like with like.
fn builder(model: &ModelSpec) -> MicroRecBuilder {
    MicroRec::builder(model.clone())
        .seed(42)
        .embedding_arena(RowFormat::F16)
        .hot_row_cache(CACHE_ROWS)
}

fn build(model: &ModelSpec) -> MicroRec {
    builder(model).build().expect("engine")
}

/// Sequential single-predict capacity, measured fresh on this machine so
/// the offered-load multipliers track the hardware the sweep runs on.
fn measure_seq_qps(model: &ModelSpec) -> f64 {
    let mut engine = build(model);
    let trace = RequestTrace::generate(model, 1_000.0, 256, QueryGenConfig::default())
        .expect("seq-capacity trace");
    for q in trace.queries().iter().take(32) {
        engine.predict(q).expect("warmup predict");
    }
    let start = Instant::now();
    for q in trace.queries() {
        engine.predict(q).expect("predict");
    }
    trace.queries().len() as f64 / start.elapsed().as_secs_f64()
}

/// Runtime-served results must be bit-identical to sequential `predict`.
fn check_bit_identity(model: &ModelSpec, config: RuntimeConfig) -> bool {
    let trace =
        RequestTrace::generate(model, 50_000.0, IDENTITY_QUERIES, QueryGenConfig::default())
            .expect("identity trace");
    let mut sequential = build(model);
    let expected: Vec<f32> =
        trace.queries().iter().map(|q| sequential.predict(q).expect("predict")).collect();
    let runtime = ServingRuntime::start(builder(model), config).expect("runtime");
    let pending: Vec<_> =
        trace.queries().iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    pending
        .into_iter()
        .zip(&expected)
        .all(|(p, e)| p.wait().map(|got| got.to_bits() == e.to_bits()).unwrap_or(false))
}

/// One sweep point: fresh runtime, fresh paced replay. Also returns the
/// embedding-lookup counters the workers accumulated over the point.
fn run_point(
    model: &ModelSpec,
    rate: f64,
    n: usize,
    config: RuntimeConfig,
) -> (ReplayOutcome, Option<RuntimeLookupStats>) {
    let trace =
        RequestTrace::generate(model, rate, n, QueryGenConfig::default()).expect("point trace");
    let mut runtime = ServingRuntime::start(builder(model), config).expect("runtime");
    let mut outcome = replay(&runtime, &trace);
    outcome.snapshot = runtime.shutdown();
    let lookup = runtime.lookup_stats();
    (outcome, lookup)
}

fn replay(runtime: &ServingRuntime, trace: &RequestTrace) -> ReplayOutcome {
    microrec_core::replay_trace(runtime, trace)
}

fn config(workers: usize, max_batch: usize, max_wait_us: u64) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        max_batch,
        max_wait_us,
        queue_depth: 512,
        admission: AdmissionPolicy::Reject,
        ..RuntimeConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let model = ModelSpec::dlrm_rmc2(8, 16);

    let seq_qps = measure_seq_qps(&model);
    eprintln!("sequential capacity: {seq_qps:.1} qps");

    let identity_ok = check_bit_identity(&model, config(2, 32, 2_000));
    assert!(identity_ok, "runtime-served results diverged from sequential predict");
    eprintln!("bit-identity vs sequential predict: ok ({IDENTITY_QUERIES} queries)");

    // (offered multiplier over seq capacity, batch window us, workers)
    let points: Vec<(f64, u64, usize)> = if smoke {
        vec![(2.0, 2_000, 1), (4.0, 2_000, 2)]
    } else {
        let mut p = Vec::new();
        for &mult in &[2.0, 4.0, 6.0] {
            for &wait_us in &[2_000u64, 10_000] {
                for &workers in &[1usize, 2] {
                    p.push((mult, wait_us, workers));
                }
            }
        }
        p
    };
    let n = if smoke { SMOKE_POINT_REQUESTS } else { FULL_POINT_REQUESTS };

    let mut records = Vec::with_capacity(points.len());
    for &(mult, wait_us, workers) in &points {
        let rate = seq_qps * mult;
        let cfg = config(workers, 64, wait_us);
        let (outcome, lookup) = run_point(&model, rate, n, cfg);
        let mut record = ServingFrontierRecord::from_run(&cfg, &outcome);
        if let Some(stats) = &lookup {
            record = record.with_lookup(stats);
        }
        let hit_rate = lookup.as_ref().map_or(0.0, |s| s.hit_rate());
        eprintln!(
            "offered {:>7.0} qps ({mult:.0}x seq, wait {wait_us:>5} us, {workers} worker): \
             sustained {:>7.0} qps, mean batch {:>5.2}, p99 {:>8.0} us, drops {:.2}%, \
             cache hit {:>5.1}%",
            rate,
            record.qps,
            record.mean_batch_size,
            record.p99_us,
            record.drop_rate * 100.0,
            hit_rate * 100.0,
        );
        if smoke {
            // CI gate: at ≥2x sequential offered load the runtime must
            // beat sequential capacity with real batching and finite tail.
            assert!(record.qps > seq_qps, "runtime slower than sequential at {mult}x load");
            assert!(record.mean_batch_size > 1.0, "no batching happened at {mult}x load");
            assert!(record.p99_us.is_finite() && record.p99_us > 0.0, "bad p99");
            let stats = record.lookup.as_ref().expect("cache-enabled runtime lost its counters");
            assert!(stats.hits + stats.misses > 0, "no lookups were counted");
        }
        records.push(record);
    }

    let obj = vec![
        ("seq_qps".to_string(), seq_qps.to_json()),
        ("bit_identical".to_string(), identity_ok.to_json()),
        ("requests_per_point".to_string(), n.to_json()),
        ("points".to_string(), records.to_json()),
    ];
    println!("{}", microrec_json::to_string_pretty(&microrec_json::Json::Obj(obj)));
}
