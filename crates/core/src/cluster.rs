//! Multi-FPGA sharding for models beyond one card's memory.
//!
//! The U280 holds 40 GB of DRAM; §2.2 notes industrial models can reach
//! "hundreds of gigabytes". The natural scale-out — which the paper leaves
//! as future work — shards the *tables* across several cards: each card
//! runs the lookup stage for its shard, partial feature vectors meet at an
//! aggregator card that runs the top MLP, and the extra hop costs one
//! inter-device transfer. Placement inside each shard still runs
//! Algorithm 1, so Cartesian merging and round balancing work per card.

use microrec_accel::{AccelConfig, Pipeline};
use microrec_dnn::{Mlp, Q16, Q32};
use microrec_embedding::{synthetic_dense_features, ModelSpec, Precision};
use microrec_memsim::SimTime;

use crate::engine::{MicroRec, MicroRecBuilder};
use crate::error::MicroRecError;

/// Configuration of the inter-device hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectConfig {
    /// Sustained link bandwidth in bytes per second (e.g. 100 GbE ≈ 12e9).
    pub bandwidth: f64,
    /// Fixed per-message latency.
    pub latency: SimTime,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        // 100 GbE-class card-to-card link.
        InterconnectConfig { bandwidth: 12.0e9, latency: SimTime::from_us(2.0) }
    }
}

/// A table-sharded multi-device MicroRec deployment.
///
/// # Examples
///
/// ```
/// use microrec_core::MicroRecCluster;
/// use microrec_embedding::{ModelSpec, Precision};
///
/// // The 15 GB production model across 9 GB devices.
/// let mut cluster = MicroRecCluster::build(
///     &ModelSpec::large_production(),
///     9_000_000_000,
///     Precision::Fixed16,
///     7,
/// )?;
/// assert!(cluster.devices() >= 2);
/// let query: Vec<u64> =
///     cluster.shards().iter().flat_map(|s| s.model().tables.iter()).map(|t| t.rows / 2).collect();
/// let ctr = cluster.predict(&query)?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
#[derive(Debug)]
pub struct MicroRecCluster {
    model: ModelSpec,
    shards: Vec<MicroRec>,
    /// Logical-table span `[start, end)` of each shard.
    spans: Vec<(usize, usize)>,
    mlp: Mlp,
    precision: Precision,
    accel: AccelConfig,
    interconnect: InterconnectConfig,
}

impl MicroRecCluster {
    /// Builds a cluster for `model`, packing contiguous table runs of at
    /// most `bytes_per_device` (storage precision f32) per card.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if any single table exceeds
    /// `bytes_per_device` or a shard cannot be placed.
    pub fn build(
        model: &ModelSpec,
        bytes_per_device: u64,
        precision: Precision,
        seed: u64,
    ) -> Result<Self, MicroRecError> {
        model.validate()?;
        // Greedy contiguous partition.
        let mut spans = Vec::new();
        let mut start = 0usize;
        let mut used = 0u64;
        for (i, table) in model.tables.iter().enumerate() {
            let bytes = table.bytes(Precision::F32);
            if bytes > bytes_per_device {
                return Err(MicroRecError::Placement(
                    microrec_placement::PlacementError::Infeasible(format!(
                        "table `{}` ({} bytes) exceeds a whole device",
                        table.name, bytes
                    )),
                ));
            }
            if used + bytes > bytes_per_device && i > start {
                spans.push((start, i));
                start = i;
                used = 0;
            }
            used += bytes;
        }
        spans.push((start, model.num_tables()));

        let mut shards = Vec::with_capacity(spans.len());
        for &(s, e) in &spans {
            let mut sub = model.clone();
            sub.name = format!("{}-shard{}", model.name, shards.len());
            sub.tables = model.tables[s..e].to_vec();
            // Shards carry no dense branch; the aggregator owns it.
            sub.dense_dim = 0;
            sub.bottom_hidden = Vec::new();
            // Matching per-table seeds: the full model seeds table i with
            // seed + i, so a shard starting at s uses seed + s.
            let engine = MicroRecBuilder::new(sub)
                .precision(precision)
                .seed(seed.wrapping_add(s as u64))
                .build()?;
            shards.push(engine);
        }
        let mlp = Mlp::top_mlp(model.feature_len(), &model.hidden, seed ^ 0x5EED)?;
        let accel = if model.hidden.len() == 3 {
            AccelConfig::for_model(model, precision)
        } else {
            AccelConfig::generic(model, precision)
        };
        Ok(MicroRecCluster {
            model: model.clone(),
            shards,
            spans,
            mlp,
            precision,
            accel,
            interconnect: InterconnectConfig::default(),
        })
    }

    /// Number of devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines.
    #[must_use]
    pub fn shards(&self) -> &[MicroRec] {
        &self.shards
    }

    /// Sets the inter-device link model.
    pub fn set_interconnect(&mut self, interconnect: InterconnectConfig) {
        self.interconnect = interconnect;
    }

    /// Lookup-stage latency of the cluster: the slowest shard plus the
    /// feature transfer of every non-aggregator shard (they ship partial
    /// feature vectors to shard 0 concurrently; the link serializes).
    #[must_use]
    pub fn lookup_latency(&self) -> SimTime {
        let slowest = self
            .shards
            .iter()
            .map(|s| s.placement_cost().lookup_latency)
            .max()
            .unwrap_or(SimTime::ZERO);
        let remote_bytes: u64 = self.spans[1..]
            .iter()
            .map(|&(s, e)| {
                self.model.tables[s..e]
                    .iter()
                    .map(|t| u64::from(t.dim) * u64::from(self.precision.bytes()))
                    .sum::<u64>()
                    * u64::from(self.model.lookups_per_table)
            })
            .sum();
        let wire = SimTime::from_ns(remote_bytes as f64 / self.interconnect.bandwidth * 1e9);
        if self.shards.len() > 1 {
            slowest + self.interconnect.latency + wire
        } else {
            slowest
        }
    }

    /// End-to-end single-item latency: the aggregator runs the *full*
    /// model's compute pipeline, fed by the cluster-wide lookup stage.
    #[must_use]
    pub fn latency(&self) -> SimTime {
        Pipeline::build(&self.model, &self.accel, self.lookup_latency())
            .map(|p| p.latency())
            .unwrap_or(SimTime::ZERO)
    }

    /// Functionally predicts a CTR across the shards.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        if query.len() != tables * rounds {
            return Err(MicroRecError::Embedding(
                microrec_embedding::EmbeddingError::ArityMismatch {
                    expected: tables * rounds,
                    actual: query.len(),
                },
            ));
        }
        let mut features = Vec::with_capacity(self.model.feature_len() as usize);
        if self.model.dense_dim > 0 {
            features.extend(synthetic_dense_features(query, self.model.dense_dim));
        }
        // Shards hold contiguous table runs; rebuild each shard's query in
        // its local round-major layout, then splice features per round.
        let mut per_round_parts: Vec<Vec<Vec<f32>>> = Vec::with_capacity(self.shards.len());
        let spans = self.spans.clone();
        for (shard, &(s, e)) in self.shards.iter_mut().zip(&spans) {
            let width = e - s;
            let mut sub_query = Vec::with_capacity(width * rounds);
            for round in 0..rounds {
                sub_query.extend_from_slice(&query[round * tables + s..round * tables + e]);
            }
            let flat = shard.gather_features(&sub_query)?;
            let per_round: Vec<Vec<f32>> =
                flat.chunks(flat.len() / rounds).map(<[f32]>::to_vec).collect();
            per_round_parts.push(per_round);
        }
        for round in 0..rounds {
            for part in &per_round_parts {
                features.extend_from_slice(&part[round]);
            }
        }
        let ctr = match self.precision {
            Precision::Fixed16 => self.mlp.predict_ctr_quantized::<Q16>(&features)?,
            Precision::Fixed32 => self.mlp.predict_ctr_quantized::<Q32>(&features)?,
            Precision::F32 => self.mlp.predict_ctr(&features)?,
        };
        Ok(ctr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_cpu::CpuReferenceEngine;
    use microrec_embedding::TableSpec;

    #[test]
    fn sharding_splits_by_capacity() {
        // The large model (14.9 GB) across 8 GB devices -> >= 2 shards.
        let model = ModelSpec::large_production();
        let cluster =
            MicroRecCluster::build(&model, 8 * 1_000_000_000, Precision::Fixed16, 3).unwrap();
        assert!(cluster.devices() >= 2, "devices {}", cluster.devices());
        let total: usize = cluster.shards().iter().map(|s| s.model().num_tables()).sum();
        assert_eq!(total, 98);
    }

    #[test]
    fn oversized_table_is_rejected() {
        let model = ModelSpec::large_production();
        assert!(MicroRecCluster::build(&model, 1_000_000_000, Precision::Fixed16, 3).is_err());
    }

    #[test]
    fn cluster_matches_single_engine_predictions() {
        // A model that fits one device, sharded anyway: predictions must
        // match the monolithic reference exactly (same seeds, same MLP).
        let model = ModelSpec::new(
            "shardable",
            (0..12).map(|i| TableSpec::new(format!("t{i}"), 1000 + 100 * i as u64, 8)).collect(),
            vec![64, 32],
            1,
        );
        let seed = 17;
        let reference = CpuReferenceEngine::build(&model, seed).unwrap();
        // ~150 kB per device forces several shards (tables are 32-67 kB).
        let mut cluster = MicroRecCluster::build(&model, 150_000, Precision::F32, seed).unwrap();
        assert!(cluster.devices() >= 3);
        for k in 0..10u64 {
            let q: Vec<u64> = (0..12).map(|j| (k * 101 + j * 13) % 1000).collect();
            let a = cluster.predict(&q).unwrap();
            let b = reference.predict(&q).unwrap();
            assert!((a - b).abs() < 1e-6, "cluster {a} vs reference {b}");
        }
    }

    #[test]
    fn multi_lookup_models_shard_correctly() {
        let model = ModelSpec::dlrm_rmc2(8, 8);
        let seed = 4;
        let reference = CpuReferenceEngine::build(&model, seed).unwrap();
        let mut cluster = MicroRecCluster::build(&model, 70_000_000, Precision::F32, seed).unwrap();
        assert!(cluster.devices() >= 2);
        let q: Vec<u64> = (0..32).map(|j| j * 7777).collect();
        assert!((cluster.predict(&q).unwrap() - reference.predict(&q).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn interconnect_costs_show_up_in_latency() {
        let model = ModelSpec::large_production();
        let cluster =
            MicroRecCluster::build(&model, 8 * 1_000_000_000, Precision::Fixed16, 3).unwrap();
        let single = MicroRec::builder(model).precision(Precision::Fixed16).build().unwrap();
        assert!(cluster.lookup_latency() > single.placement_cost().lookup_latency);
        // But the hop is microseconds: still far under the SLA.
        assert!(cluster.latency().as_us() < 60.0);
        assert!(cluster.latency() > single.latency());
    }

    #[test]
    fn single_shard_cluster_adds_no_hop() {
        let model = ModelSpec::dlrm_rmc2(4, 4);
        let cluster = MicroRecCluster::build(&model, u64::MAX, Precision::Fixed16, 1).unwrap();
        assert_eq!(cluster.devices(), 1);
        assert_eq!(cluster.lookup_latency(), cluster.shards()[0].placement_cost().lookup_latency);
    }
}
