//! An unsafe site suppressed through the escape hatch instead of a
//! `// SAFETY:` comment — discouraged, but the hatch must work for
//! every lint id.

pub fn first(values: &[u32]) -> u32 {
    // lint: allow(unsafe-audit) argument documented in the module docs
    unsafe { *values.as_ptr() }
}
