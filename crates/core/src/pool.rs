//! A thread-safe engine pool for concurrent query serving.
//!
//! The functional [`MicroRec`] engine is stateful (memory statistics,
//! row-buffer state), so it takes `&mut self` per prediction. A serving
//! host wants many request threads; [`EnginePool`] holds N engine replicas
//! behind `parking_lot` mutexes and hands each caller an uncontended one —
//! the standard replica-pool pattern, with round-robin dispatch and
//! aggregate statistics.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use microrec_embedding::{ModelSpec, Precision};

use crate::engine::{MicroRec, MicroRecBuilder};
use crate::error::MicroRecError;

/// A pool of identical engines for multi-threaded prediction.
///
/// # Examples
///
/// ```
/// use microrec_core::EnginePool;
/// use microrec_embedding::{ModelSpec, Precision};
///
/// let pool = EnginePool::build(ModelSpec::dlrm_rmc2(4, 4), Precision::Fixed32, 2, 7)?;
/// let ctr = pool.predict(&vec![3u64; 16])?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
#[derive(Debug)]
pub struct EnginePool {
    engines: Vec<Mutex<MicroRec>>,
    next: AtomicUsize,
}

impl EnginePool {
    /// Builds `replicas` identical engines (same seed: identical tables and
    /// weights, so every replica answers every query identically).
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the engine cannot be built.
    pub fn build(
        model: ModelSpec,
        precision: Precision,
        replicas: usize,
        seed: u64,
    ) -> Result<Self, MicroRecError> {
        let replicas = replicas.max(1);
        let mut engines = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let engine = MicroRecBuilder::new(model.clone())
                .precision(precision)
                .seed(seed)
                .build()?;
            engines.push(Mutex::new(engine));
        }
        Ok(EnginePool { engines, next: AtomicUsize::new(0) })
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    /// Predicts a CTR on the least-recently-dispatched replica.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict(&self, query: &[u64]) -> Result<f32, MicroRecError> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.engines.len();
        self.engines[idx].lock().predict(query)
    }

    /// Predicts a batch, spreading items over all replicas from the
    /// calling thread's context (callers on different threads proceed
    /// concurrently).
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] for malformed queries.
    pub fn predict_batch(&self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        queries.iter().map(|q| self.predict(q)).collect()
    }

    /// Total simulated memory reads across all replicas.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.engines.iter().map(|e| e.lock().memory().stats().total().reads).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pool() -> Arc<EnginePool> {
        Arc::new(
            EnginePool::build(ModelSpec::dlrm_rmc2(4, 8), Precision::Fixed32, 3, 5).unwrap(),
        )
    }

    #[test]
    fn replicas_answer_identically() {
        let p = pool();
        let q = vec![123u64; 16];
        // Dispatch rotates through all replicas; answers must agree.
        let first = p.predict(&q).unwrap();
        for _ in 0..5 {
            assert_eq!(p.predict(&q).unwrap(), first);
        }
    }

    #[test]
    fn concurrent_prediction_from_many_threads() {
        let p = pool();
        let queries_per_thread = 50;
        let threads = 8;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let p = Arc::clone(&p);
                handles.push(scope.spawn(move |_| {
                    for k in 0..queries_per_thread {
                        let q: Vec<u64> =
                            (0..16).map(|j| ((t * 97 + k * 13 + j) % 500_000) as u64).collect();
                        let ctr = p.predict(&q).unwrap();
                        assert!(ctr > 0.0 && ctr < 1.0);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        // Every query drove 4 physical reads x 4 rounds.
        assert_eq!(p.total_reads(), (threads * queries_per_thread * 16) as u64);
    }

    #[test]
    fn pool_of_one_still_works() {
        let p = EnginePool::build(ModelSpec::dlrm_rmc2(4, 4), Precision::Fixed16, 0, 1).unwrap();
        assert_eq!(p.replicas(), 1, "replicas clamp to >= 1");
        let out = p.predict_batch(&vec![vec![0u64; 16]; 4]).unwrap();
        assert_eq!(out.len(), 4);
    }
}
