//! Seeded violation: an escape hatch that suppresses nothing — the
//! determinism lint is not scoped to this directory, so the exemption
//! is stale.

pub fn tidy() -> u32 {
    // lint: allow(determinism) left behind after a refactor
    7
}
