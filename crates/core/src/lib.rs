//! # microrec-core
//!
//! The MicroRec recommendation inference engine (Jiang et al., MLSys
//! 2021), assembled from its substrates: Cartesian-merged embedding tables
//! ([`microrec_embedding`]) placed across a hybrid HBM/DDR/on-chip memory
//! ([`microrec_memsim`]) by the Algorithm-1 search
//! ([`microrec_placement`]), feeding a deeply pipelined fixed-point
//! accelerator ([`microrec_accel`], [`microrec_dnn`]), and compared against
//! the calibrated TensorFlow-Serving CPU baseline ([`microrec_cpu`]).
//!
//! ## Example
//!
//! ```
//! use microrec_core::MicroRec;
//! use microrec_embedding::{ModelSpec, Precision};
//!
//! // Build the engine for the small Alibaba production model.
//! let mut engine = MicroRec::builder(ModelSpec::small_production())
//!     .precision(Precision::Fixed16)
//!     .build()?;
//!
//! // Placement reproduces Table 3: one DRAM round after merging.
//! assert_eq!(engine.placement_cost().dram_rounds, 1);
//!
//! // Functional inference at micro-second scale latency.
//! let query: Vec<u64> = engine.model().tables.iter().map(|t| t.rows / 3).collect();
//! let ctr = engine.predict(&query)?;
//! assert!(ctr > 0.0 && ctr < 1.0);
//! assert!(engine.latency().as_us() < 30.0);
//! # Ok::<(), microrec_core::MicroRecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod engine;
mod epoch;
mod error;
mod explore;
mod hybrid_serving;
mod pipeline;
mod pool;
mod ranking;
mod report;
mod router;
mod runtime;
mod serve;
mod sync;

pub use cluster::{InterconnectConfig, MicroRecCluster};
pub use engine::{MicroRec, MicroRecBuilder};
pub use epoch::{build_generation_shielded, ArenaGeneration, GenerationCell};
pub use error::MicroRecError;
pub use explore::{best_fitting, derated_clock, explore_design_space, DesignPoint};
pub use hybrid_serving::{
    simulate_hybrid_serving, surviving_dram_fraction, HybridConfig, HybridReport,
};
pub use pipeline::{
    Calibration, ExecutionMode, FcStage, PipelineConfig, PipelineExecutor, PipelinePlan,
    StageSnapshot,
};
pub use pool::EnginePool;
pub use ranking::{kendall_tau, rank_descending, ranking_fidelity, top_k_overlap, RankingFidelity};
pub use report::{
    end_to_end_report, AwsPrices, CalibrationRecord, CostReport, CpuPoint, EmbeddingReport,
    EndToEndReport, FpgaPoint, LookupCountersRecord, MigrationRecord, PipelineStageRecord,
    RouterPathRecord, RouterRecord, ServingFrontierRecord,
};
pub use router::{
    ExecutionPath, PathCost, PathCostModel, PathDescriptor, PathKind, PathSet, RouteDecision,
    RouterPathStats, RouterSnapshot, SHAPE_DEFAULT_HOP_US,
};
pub use runtime::{
    plan_batches, replay_trace, AdmissionPolicy, BatchClose, BatchFormerConfig, LatencyHistogram,
    LatencyPercentiles, PendingPrediction, PlannedBatch, ReplayOutcome, Resharder,
    ReshardingPolicy, RuntimeConfig, RuntimeError, RuntimeLookupStats, RuntimeSnapshot,
    ServingRuntime,
};
pub use serve::{simulate_cpu_serving, simulate_microrec_serving, ServingReport};
