//! The hybrid memory system: HBM + DDR + on-chip banks behaving as one
//! device with many independent channels.
//!
//! This is the substrate MicroRec's embedding-lookup unit runs on. The key
//! operation is [`HybridMemory::parallel_read`]: given one read per logical
//! table, all banks work concurrently and reads targeting the same bank
//! serialize, so the batch finishes after
//! `max over banks (sum of that bank's access times)` — precisely the
//! "DRAM access rounds" behaviour of §3.3.

use std::collections::BTreeMap;

use crate::bank::{Bank, BankId};
use crate::config::MemoryConfig;
use crate::error::MemsimError;
use crate::rowstate::{AddressedRead, RowPolicy, RowState};
use crate::stats::AccessStats;
use crate::time::SimTime;

/// One read request against the hybrid memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadRequest {
    /// Target bank.
    pub bank: BankId,
    /// Payload size in bytes (one embedding vector, possibly a Cartesian
    /// product row).
    pub bytes: u32,
}

impl ReadRequest {
    /// Creates a read request.
    #[must_use]
    pub const fn new(bank: BankId, bytes: u32) -> Self {
        ReadRequest { bank, bytes }
    }
}

/// Outcome of a parallel read batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTiming {
    /// Wall-clock time for the whole batch (bottleneck bank).
    pub elapsed: SimTime,
    /// Sum of busy time across banks (for utilisation analysis).
    pub total_busy: SimTime,
    /// Largest number of reads any single bank had to serialize — the number
    /// of "access rounds" in the paper's terminology.
    pub max_reads_per_bank: usize,
}

/// The hybrid memory device.
///
/// # Examples
///
/// ```
/// use microrec_memsim::{BankId, HybridMemory, MemoryConfig, MemoryKind, ReadRequest};
///
/// let mut mem = HybridMemory::new(MemoryConfig::u280());
/// let b0 = BankId::new(MemoryKind::Hbm, 0);
/// let b1 = BankId::new(MemoryKind::Hbm, 1);
/// mem.alloc(b0, "table-a", 1024)?;
/// mem.alloc(b1, "table-b", 1024)?;
/// // Two reads on different channels overlap perfectly:
/// let t = mem.parallel_read(&[ReadRequest::new(b0, 64), ReadRequest::new(b1, 64)])?;
/// assert_eq!(t.max_reads_per_bank, 1);
/// # Ok::<(), microrec_memsim::MemsimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridMemory {
    config: MemoryConfig,
    banks: BTreeMap<BankId, Bank>,
    stats: AccessStats,
    row_states: BTreeMap<BankId, RowState>,
    policy: RowPolicy,
}

impl HybridMemory {
    /// Instantiates the memory described by `config` with all banks empty
    /// and the closed-page row policy.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        let banks: BTreeMap<BankId, Bank> =
            config.build_banks().into_iter().map(|b| (b.id(), b)).collect();
        let row_states = banks.keys().map(|&id| (id, RowState::new())).collect();
        HybridMemory {
            config,
            banks,
            stats: AccessStats::new(),
            row_states,
            policy: RowPolicy::ClosedPage,
        }
    }

    /// Sets the DRAM page policy used by addressed reads.
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        self.policy = policy;
        for state in self.row_states.values_mut() {
            *state = RowState::new();
        }
    }

    /// The active DRAM page policy.
    #[must_use]
    pub fn row_policy(&self) -> RowPolicy {
        self.policy
    }

    /// The configuration this memory was built from.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Accesses one bank.
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownBank`] if `id` is not part of the
    /// configuration.
    pub fn bank(&self, id: BankId) -> Result<&Bank, MemsimError> {
        self.banks.get(&id).ok_or(MemsimError::UnknownBank(id))
    }

    /// Iterates over all banks in id order.
    pub fn banks(&self) -> impl Iterator<Item = &Bank> {
        self.banks.values()
    }

    /// Allocates `bytes` in bank `id` under `label`.
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownBank`] for an unknown bank and
    /// [`MemsimError::CapacityExceeded`] if the bank is too full.
    pub fn alloc(
        &mut self,
        id: BankId,
        label: impl Into<String>,
        bytes: u64,
    ) -> Result<(), MemsimError> {
        self.banks.get_mut(&id).ok_or(MemsimError::UnknownBank(id))?.alloc(label, bytes)
    }

    /// Releases the region `label` from bank `id`.
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownBank`] or [`MemsimError::UnknownRegion`].
    pub fn release(&mut self, id: BankId, label: &str) -> Result<(), MemsimError> {
        self.banks.get_mut(&id).ok_or(MemsimError::UnknownBank(id))?.release(label)?;
        Ok(())
    }

    /// Clears every allocation (keeps statistics).
    pub fn clear_allocations(&mut self) {
        for bank in self.banks.values_mut() {
            bank.clear();
        }
    }

    /// Services a batch of reads with full inter-bank parallelism and
    /// per-bank serialization, recording statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownBank`] if any request targets a bank
    /// outside the configuration; no statistics are recorded in that case.
    pub fn parallel_read(&mut self, requests: &[ReadRequest]) -> Result<BatchTiming, MemsimError> {
        let timing = self.estimate_parallel_read(requests)?;
        for req in requests {
            let t = self.banks[&req.bank].read_time(req.bytes);
            self.stats.record(req.bank, req.bytes, t);
        }
        Ok(timing)
    }

    /// Computes the timing of a batch without recording statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownBank`] if any request targets a bank
    /// outside the configuration.
    pub fn estimate_parallel_read(
        &self,
        requests: &[ReadRequest],
    ) -> Result<BatchTiming, MemsimError> {
        let mut per_bank: BTreeMap<BankId, (SimTime, usize)> = BTreeMap::new();
        for req in requests {
            let bank = self.banks.get(&req.bank).ok_or(MemsimError::UnknownBank(req.bank))?;
            let t = bank.read_time(req.bytes);
            let entry = per_bank.entry(req.bank).or_insert((SimTime::ZERO, 0));
            entry.0 += t;
            entry.1 += 1;
        }
        let elapsed = per_bank.values().map(|(t, _)| *t).max().unwrap_or(SimTime::ZERO);
        let total_busy = per_bank.values().map(|(t, _)| *t).sum();
        let max_reads_per_bank = per_bank.values().map(|(_, n)| *n).max().unwrap_or(0);
        Ok(BatchTiming { elapsed, total_busy, max_reads_per_bank })
    }

    /// Services a batch of *addressed* reads, modelling the DRAM row
    /// buffers under the active [`RowPolicy`]: reads to the same bank
    /// serialize in the given order, and consecutive same-row reads hit the
    /// open row under [`RowPolicy::OpenPage`].
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownBank`] if any read targets a bank
    /// outside the configuration; no state is changed in that case.
    pub fn parallel_read_addressed(
        &mut self,
        reads: &[AddressedRead],
    ) -> Result<BatchTiming, MemsimError> {
        for read in reads {
            if !self.banks.contains_key(&read.bank) || !self.row_states.contains_key(&read.bank) {
                return Err(MemsimError::UnknownBank(read.bank));
            }
        }
        let mut per_bank: BTreeMap<BankId, (SimTime, usize)> = BTreeMap::new();
        for read in reads {
            let timing = self.banks[&read.bank].timing();
            let Some(state) = self.row_states.get_mut(&read.bank) else {
                // Unreachable: both maps were validated before any mutation.
                return Err(MemsimError::UnknownBank(read.bank));
            };
            let (t, hit) = state.service(read, timing, self.policy);
            self.stats.record_with_hit(read.bank, read.bytes, t, hit);
            let entry = per_bank.entry(read.bank).or_insert((SimTime::ZERO, 0));
            entry.0 += t;
            entry.1 += 1;
        }
        let elapsed = per_bank.values().map(|(t, _)| *t).max().unwrap_or(SimTime::ZERO);
        let total_busy = per_bank.values().map(|(t, _)| *t).sum();
        let max_reads_per_bank = per_bank.values().map(|(_, n)| *n).max().unwrap_or(0);
        Ok(BatchTiming { elapsed, total_busy, max_reads_per_bank })
    }

    /// Byte offset of region `label` in bank `id` (for building addressed
    /// reads against planned allocations).
    ///
    /// # Errors
    ///
    /// Returns [`MemsimError::UnknownBank`] or [`MemsimError::UnknownRegion`].
    pub fn region_offset(&self, id: BankId, label: &str) -> Result<u64, MemsimError> {
        let bank = self.bank(id)?;
        bank.region(label)
            .map(|r| r.offset)
            .ok_or_else(|| MemsimError::UnknownRegion { bank: id, label: label.to_string() })
    }

    /// Accumulated access statistics.
    #[must_use]
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::MemoryKind;

    fn hbm(i: u16) -> BankId {
        BankId::new(MemoryKind::Hbm, i)
    }

    fn mem() -> HybridMemory {
        HybridMemory::new(MemoryConfig::u280())
    }

    #[test]
    fn reads_on_distinct_banks_overlap() {
        let mut m = mem();
        let reqs: Vec<_> = (0..32).map(|i| ReadRequest::new(hbm(i), 64)).collect();
        let batch = m.parallel_read(&reqs).unwrap();
        let single = m.bank(hbm(0)).unwrap().read_time(64);
        assert_eq!(batch.elapsed, single, "32 parallel reads cost one access");
        assert_eq!(batch.max_reads_per_bank, 1);
        assert_eq!(batch.total_busy, single * 32);
    }

    #[test]
    fn co_located_reads_serialize_into_rounds() {
        let mut m = mem();
        // 2 reads on bank 0, 1 read on bank 1 -> two rounds.
        let reqs = [
            ReadRequest::new(hbm(0), 64),
            ReadRequest::new(hbm(0), 64),
            ReadRequest::new(hbm(1), 64),
        ];
        let batch = m.parallel_read(&reqs).unwrap();
        let single = m.bank(hbm(0)).unwrap().read_time(64);
        assert_eq!(batch.elapsed, single * 2);
        assert_eq!(batch.max_reads_per_bank, 2);
    }

    #[test]
    fn bottleneck_is_slowest_bank_not_sum() {
        let mut m = mem();
        let big = ReadRequest::new(hbm(0), 512);
        let small = ReadRequest::new(hbm(1), 16);
        let batch = m.parallel_read(&[big, small]).unwrap();
        assert_eq!(batch.elapsed, m.bank(hbm(0)).unwrap().read_time(512));
    }

    #[test]
    fn unknown_bank_is_rejected_without_recording() {
        let mut m = mem();
        let bogus = ReadRequest::new(BankId::new(MemoryKind::Hbm, 99), 64);
        let ok = ReadRequest::new(hbm(0), 64);
        assert!(matches!(m.parallel_read(&[ok, bogus]), Err(MemsimError::UnknownBank(_))));
        assert_eq!(m.stats().total().reads, 0, "failed batch must not record stats");
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let mut m = mem();
        let reqs = [ReadRequest::new(hbm(0), 64)];
        m.parallel_read(&reqs).unwrap();
        m.parallel_read(&reqs).unwrap();
        assert_eq!(m.stats().total().reads, 2);
        assert_eq!(m.stats().total().bytes, 128);
        m.reset_stats();
        assert_eq!(m.stats().total().reads, 0);
    }

    #[test]
    fn alloc_release_through_device() {
        let mut m = mem();
        m.alloc(hbm(3), "t", 1000).unwrap();
        assert_eq!(m.bank(hbm(3)).unwrap().used(), 1000);
        m.release(hbm(3), "t").unwrap();
        assert_eq!(m.bank(hbm(3)).unwrap().used(), 0);
        assert!(m.release(hbm(3), "t").is_err());
    }

    #[test]
    fn empty_batch_is_free() {
        let m = mem();
        let t = m.estimate_parallel_read(&[]).unwrap();
        assert_eq!(t.elapsed, SimTime::ZERO);
        assert_eq!(t.max_reads_per_bank, 0);
    }

    #[test]
    fn addressed_reads_hit_open_rows_only_under_open_page() {
        use crate::rowstate::{AddressedRead, RowPolicy};
        let mut m = mem();
        let reads = [AddressedRead::new(hbm(0), 128, 64), AddressedRead::new(hbm(0), 160, 64)];
        // Closed page: both pay full activations.
        let t_closed = m.parallel_read_addressed(&reads).unwrap();
        m.set_row_policy(RowPolicy::OpenPage);
        let t_open = m.parallel_read_addressed(&reads).unwrap();
        assert!(t_open.elapsed < t_closed.elapsed);
        let stats = m.stats().bank(hbm(0)).unwrap();
        assert_eq!(stats.row_hits, 1, "second same-row read hits");
        assert_eq!(stats.reads, 4);
    }

    #[test]
    fn row_state_resets_on_policy_change() {
        use crate::rowstate::{AddressedRead, RowPolicy};
        let mut m = mem();
        m.set_row_policy(RowPolicy::OpenPage);
        m.parallel_read_addressed(&[AddressedRead::new(hbm(0), 0, 64)]).unwrap();
        m.set_row_policy(RowPolicy::OpenPage); // re-setting clears state
        m.parallel_read_addressed(&[AddressedRead::new(hbm(0), 0, 64)]).unwrap();
        assert_eq!(m.stats().bank(hbm(0)).unwrap().row_hits, 0);
    }

    #[test]
    fn region_offset_lookup() {
        let mut m = mem();
        m.alloc(hbm(2), "a", 100).unwrap();
        m.alloc(hbm(2), "b", 100).unwrap();
        assert_eq!(m.region_offset(hbm(2), "a").unwrap(), 0);
        assert_eq!(m.region_offset(hbm(2), "b").unwrap(), 100);
        assert!(m.region_offset(hbm(2), "zzz").is_err());
        assert!(m.region_offset(BankId::new(MemoryKind::Hbm, 99), "a").is_err());
    }

    #[test]
    fn addressed_read_rejects_unknown_bank_atomically() {
        use crate::rowstate::AddressedRead;
        let mut m = mem();
        let reads = [
            AddressedRead::new(hbm(0), 0, 64),
            AddressedRead::new(BankId::new(MemoryKind::Hbm, 99), 0, 64),
        ];
        assert!(m.parallel_read_addressed(&reads).is_err());
        assert_eq!(m.stats().total().reads, 0);
    }

    #[test]
    fn onchip_reads_are_faster_than_dram() {
        let m = mem();
        let ocm = m.bank(BankId::new(MemoryKind::Bram, 0)).unwrap().read_time(32);
        let dram = m.bank(hbm(0)).unwrap().read_time(32);
        assert!(ocm.as_ns() * 2.0 < dram.as_ns());
    }
}
