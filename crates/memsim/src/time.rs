//! Simulated time.
//!
//! All timing in the simulator is expressed as an integer number of
//! picoseconds wrapped in [`SimTime`]. Integer picoseconds keep the model
//! fully deterministic (no floating-point accumulation error) while still
//! resolving sub-nanosecond quantities such as a single clock cycle at
//! 450 MHz (≈ 2222 ps).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time, stored as integer picoseconds.
///
/// `SimTime` is used both for instants (time since simulation start) and for
/// durations; the simulator never needs a distinct instant type.
///
/// # Examples
///
/// ```
/// use microrec_memsim::SimTime;
///
/// let activate = SimTime::from_ns(45.0);
/// let burst = SimTime::from_ns(13.3);
/// let total = activate + burst;
/// assert!((total.as_ns() - 58.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a `SimTime` from raw picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a `SimTime` from nanoseconds.
    ///
    /// Fractional nanoseconds are preserved down to picosecond resolution.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[must_use]
    pub fn from_ns(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "SimTime requires finite ns >= 0, got {ns}");
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// Creates a `SimTime` from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1_000.0)
    }

    /// Creates a `SimTime` from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    #[must_use]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1_000_000.0)
    }

    /// Creates a `SimTime` covering `cycles` periods of a clock running at
    /// `hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[must_use]
    pub fn from_cycles(cycles: u64, hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be positive");
        // ps = cycles * 1e12 / hz, computed in u128 to avoid overflow.
        let ps = (u128::from(cycles) * 1_000_000_000_000u128) / u128::from(hz);
        SimTime(ps as u64)
    }

    /// Raw picoseconds.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in (fractional) nanoseconds.
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span in (fractional) microseconds.
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This span in (fractional) milliseconds.
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// This span in (fractional) seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Returns `true` if this span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[must_use]
    pub const fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Events per second if one event takes `self`.
    ///
    /// Returns `f64::INFINITY` for a zero span.
    #[must_use]
    pub fn throughput_per_sec(self) -> f64 {
        if self.is_zero() {
            f64::INFINITY
        } else {
            1e12 / self.0 as f64
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow in add"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on underflow; use [`SimTime::saturating_sub`] when the operands
    /// may be unordered.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow in sub"))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow in mul"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if ns < 1_000.0 {
            write!(f, "{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            write!(f, "{:.3} us", self.as_us())
        } else {
            write!(f, "{:.3} ms", self.as_ms())
        }
    }
}

impl microrec_json::ToJson for SimTime {
    fn to_json(&self) -> microrec_json::Json {
        // Serialized as the bare picosecond count, matching the integer
        // newtype wire format the repo's JSON fixtures use.
        microrec_json::Json::UInt(self.0)
    }
}

impl microrec_json::FromJson for SimTime {
    fn from_json(json: &microrec_json::Json) -> Result<Self, microrec_json::JsonError> {
        json.as_u64()
            .map(SimTime)
            .ok_or_else(|| microrec_json::JsonError::new("expected picosecond integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ns(123.456);
        assert_eq!(t.as_ps(), 123_456);
        assert!((t.as_ns() - 123.456).abs() < 1e-9);
        assert!((t.as_us() - 0.123456).abs() < 1e-12);
    }

    #[test]
    fn from_cycles_matches_period() {
        // 100 cycles at 250 MHz = 400 ns.
        let t = SimTime::from_cycles(100, 250_000_000);
        assert_eq!(t.as_ps(), 400_000);
    }

    #[test]
    fn from_cycles_sub_ns_resolution() {
        // One cycle at 450 MHz is 2222 ps; integer division truncates.
        let t = SimTime::from_cycles(1, 450_000_000);
        assert_eq!(t.as_ps(), 2_222);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_ns(10.0);
        let b = SimTime::from_ns(4.0);
        assert_eq!((a + b).as_ps(), 14_000);
        assert_eq!((a - b).as_ps(), 6_000);
        assert_eq!((a * 3).as_ps(), 30_000);
        assert_eq!((a / 2).as_ps(), 5_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn sum_and_ordering() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_ns(f64::from(i))).sum();
        assert_eq!(total, SimTime::from_ns(10.0));
        assert!(SimTime::from_ns(1.0) < SimTime::from_ns(2.0));
        assert_eq!(SimTime::from_ns(1.0).max(SimTime::from_ns(2.0)), SimTime::from_ns(2.0));
        assert_eq!(SimTime::from_ns(1.0).min(SimTime::from_ns(2.0)), SimTime::from_ns(1.0));
    }

    #[test]
    fn throughput_of_one_microsecond_event() {
        let t = SimTime::from_us(1.0);
        assert!((t.throughput_per_sec() - 1e6).abs() < 1e-3);
        assert_eq!(SimTime::ZERO.throughput_per_sec(), f64::INFINITY);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(500.0)), "500.0 ns");
        assert_eq!(format!("{}", SimTime::from_us(2.5)), "2.500 us");
        assert_eq!(format!("{}", SimTime::from_ms(1.5)), "1.500 ms");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ns(1.0) - SimTime::from_ns(2.0);
    }

    #[test]
    #[should_panic(expected = "finite ns")]
    fn negative_ns_panics() {
        let _ = SimTime::from_ns(-1.0);
    }
}
