//! Regenerates Table 2: end-to-end recommendation inference, CPU baseline
//! (batch 1..2048) vs MicroRec (fp16/fp32).

use microrec_bench::{fmt_speedup, print_table};
use microrec_core::{end_to_end_report, EndToEndReport};
use microrec_embedding::{ModelSpec, Precision};

const BATCHES: [u64; 6] = [1, 64, 256, 512, 1024, 2048];

/// Paper values: (model, precision) -> (fpga latency ms, items/s, speedups at BATCHES).
struct PaperRow {
    latency_ms: f64,
    items_per_sec: f64,
    speedups: [f64; 6],
}

fn paper_row(model: &str, precision: Precision) -> PaperRow {
    match (model, precision) {
        ("alibaba-small", Precision::Fixed16) => PaperRow {
            latency_ms: 1.63e-2,
            items_per_sec: 3.05e5,
            speedups: [204.72, 24.27, 9.56, 6.59, 5.09, 4.19],
        },
        ("alibaba-small", _) => PaperRow {
            latency_ms: 2.26e-2,
            items_per_sec: 1.81e5,
            speedups: [147.54, 14.58, 5.69, 3.91, 3.02, 2.48],
        },
        ("alibaba-large", Precision::Fixed16) => PaperRow {
            latency_ms: 2.26e-2,
            items_per_sec: 1.95e5,
            speedups: [331.51, 29.56, 11.73, 7.96, 6.02, 5.41],
        },
        _ => PaperRow {
            latency_ms: 3.10e-2,
            items_per_sec: 1.22e5,
            speedups: [241.54, 18.67, 7.36, 4.99, 3.77, 3.39],
        },
    }
}

fn print_model(report: &EndToEndReport, precision: Precision) {
    let paper = paper_row(&report.model, precision);
    let mut rows = Vec::new();
    rows.push(
        std::iter::once("Latency (ms)".to_string())
            .chain(report.cpu.iter().map(|c| format!("{:.2}", c.latency.as_ms())))
            .chain([format!("{:.2e}", report.fpga.latency.as_ms())])
            .collect(),
    );
    rows.push(
        std::iter::once("Throughput (GOP/s)".to_string())
            .chain(report.cpu.iter().map(|c| format!("{:.2}", c.ops_per_sec / 1e9)))
            .chain([format!("{:.2}", report.fpga.ops_per_sec / 1e9)])
            .collect(),
    );
    rows.push(
        std::iter::once("Throughput (items/s)".to_string())
            .chain(report.cpu.iter().map(|c| format!("{:.2e}", c.items_per_sec)))
            .chain([format!("{:.2e}", report.fpga.items_per_sec)])
            .collect(),
    );
    rows.push(
        std::iter::once("Speedup (model)".to_string())
            .chain(report.speedups().iter().map(|s| fmt_speedup(*s)))
            .chain(["-".to_string()])
            .collect(),
    );
    rows.push(
        std::iter::once("Speedup (paper)".to_string())
            .chain(paper.speedups.iter().map(|s| fmt_speedup(*s)))
            .chain(["-".to_string()])
            .collect(),
    );
    let mut headers: Vec<String> = vec!["".into()];
    headers.extend(BATCHES.iter().map(|b| format!("CPU B={b}")));
    headers.push(format!("FPGA {precision}"));
    print_table(&format!("Table 2: {} ({precision})", report.model), &headers, &rows);
    println!(
        "FPGA single-item latency: model {:.1} us vs paper {:.1} us; throughput model {:.2e} vs paper {:.2e} items/s",
        report.fpga.latency.as_us(),
        paper.latency_ms * 1000.0,
        report.fpga.items_per_sec,
        paper.items_per_sec,
    );
}

fn main() {
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for precision in [Precision::Fixed16, Precision::Fixed32] {
            let report = end_to_end_report(&model, precision, &BATCHES).expect("report builds");
            print_model(&report, precision);
        }
    }
}
