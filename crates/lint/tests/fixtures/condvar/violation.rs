//! Seeded violation: a condvar wait without a predicate re-check loop.

use std::sync::{Condvar, Mutex};

pub fn wait_once(lock: &Mutex<bool>, ready: &Condvar) {
    let guard = lock.lock().unwrap();
    if !*guard {
        let _guard = ready.wait(guard).unwrap();
    }
}
