//! Embedding lookups: catalog resolution, functional gathers, and the
//! memory simulator's batch servicing.

use std::time::Duration;

use microrec_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use microrec_embedding::{Catalog, MergePlan, ModelSpec};
use microrec_memsim::{BankId, HybridMemory, MemoryConfig, MemoryKind, ReadRequest};

fn bench_catalog(c: &mut Criterion) {
    let model = ModelSpec::small_production();
    let catalog = Catalog::build(&model, &MergePlan::none(), 1).unwrap();
    let merged_plan = MergePlan::pairs(&[(37, 46), (38, 45), (39, 44), (40, 43), (41, 42)]);
    let merged = Catalog::build(&model, &merged_plan, 1).unwrap();
    let indices: Vec<u64> = model.tables.iter().map(|t| t.rows / 2).collect();

    let mut group = c.benchmark_group("catalog");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(model.num_tables() as u64));
    group.bench_function("resolve_47_tables", |b| {
        b.iter(|| catalog.resolve(black_box(&indices)).unwrap())
    });
    group.bench_function("resolve_merged_42", |b| {
        b.iter(|| merged.resolve(black_box(&indices)).unwrap())
    });
    let mut out = vec![0.0f32; catalog.feature_len() as usize];
    group.bench_function("gather_352_features", |b| {
        b.iter(|| catalog.gather(black_box(&indices), &mut out).unwrap())
    });
    group.finish();
}

fn bench_memsim(c: &mut Criterion) {
    let mut mem = HybridMemory::new(MemoryConfig::u280());
    let requests: Vec<ReadRequest> =
        (0..32).map(|i| ReadRequest::new(BankId::new(MemoryKind::Hbm, i), 64)).collect();
    let mut group = c.benchmark_group("memsim");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(32));
    group.bench_function("parallel_read_32ch", |b| {
        b.iter(|| mem.parallel_read(black_box(&requests)).unwrap())
    });
    group.bench_function("estimate_32ch", |b| {
        b.iter(|| mem.estimate_parallel_read(black_box(&requests)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_catalog, bench_memsim);
criterion_main!(benches);
