//! Online serving scenario: a Poisson query stream served by (a) the CPU
//! baseline with batching and (b) MicroRec's item-by-item pipeline —
//! the latency argument of §4.1 made concrete with SLA percentiles.
//!
//! Run with: `cargo run --example online_serving`

use microrec_core::MicroRec;
use microrec_cpu::CpuTimingModel;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::SimTime;
use microrec_workload::{
    simulate_batched_serving, simulate_pipelined_serving, LatencyStats, PoissonArrivals,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelSpec::small_production();
    let sla = SimTime::from_ms(30.0);
    let rate = 50_000.0; // queries per second

    let mut arrivals = PoissonArrivals::new(rate, 7)?;
    let stream = arrivals.take(50_000);
    println!("offered load: {rate:.0} QPS, SLA {sla}, {} queries\n", stream.len());

    // CPU baseline: best-throughput batching (B=2048, bounded wait).
    let cpu = CpuTimingModel::aws_16vcpu();
    for batch in [256usize, 2048] {
        let service = cpu.total_time(&model, batch as u64);
        let latencies = simulate_batched_serving(&stream, batch, SimTime::from_ms(10.0), service);
        let stats = LatencyStats::from_samples(&latencies)?;
        println!(
            "CPU batch={batch:4}: p50 {:>10} p99 {:>10} SLA hit {:.1}% (service {:.1} ms/batch)",
            stats.p50,
            stats.p99,
            LatencyStats::sla_hit_rate(&latencies, sla) * 100.0,
            service.as_ms()
        );
    }

    // MicroRec: no batching; queries enter the pipeline as they arrive.
    let engine = MicroRec::builder(model).precision(Precision::Fixed16).build()?;
    let latencies = simulate_pipelined_serving(
        &stream,
        engine.pipeline().initiation_interval(),
        engine.latency(),
    );
    let stats = LatencyStats::from_samples(&latencies)?;
    println!(
        "MicroRec      : p50 {:>10} p99 {:>10} SLA hit {:.1}% (II {}, fill {})",
        stats.p50,
        stats.p99,
        LatencyStats::sla_hit_rate(&latencies, sla) * 100.0,
        engine.pipeline().initiation_interval(),
        engine.latency()
    );
    println!("\nReading: batching pays for throughput with milliseconds of");
    println!("aggregation wait; the deep pipeline removes the wait entirely");
    println!("(§4.1: 'latency concerns are eliminated by this highly pipelined design').");
    Ok(())
}
