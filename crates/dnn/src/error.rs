//! Error types for the DNN substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by DNN operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnnError {
    /// A buffer or matrix had the wrong number of elements.
    ShapeMismatch {
        /// Which operation detected the mismatch.
        context: &'static str,
        /// Elements expected.
        expected: usize,
        /// Elements supplied.
        actual: usize,
    },
    /// A model was built with no layers.
    EmptyNetwork,
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::ShapeMismatch { context, expected, actual } => {
                write!(f, "{context}: expected {expected} elements, got {actual}")
            }
            DnnError::EmptyNetwork => write!(f, "network has no layers"),
        }
    }
}

impl Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DnnError::ShapeMismatch { context: "gemv", expected: 4, actual: 3 };
        assert!(e.to_string().contains("gemv"));
        assert!(DnnError::EmptyNetwork.to_string().contains("no layers"));
    }
}
