//! The same sleep-under-guard, justified through the escape hatch.

impl Pacer {
    pub fn drain_one(&self) -> Option<u32> {
        let mut g = lock_or_recover(&self.queue);
        // lint: allow(blocking-under-lock) deliberate backoff; the lock is private to this test pacer
        std::thread::sleep(self.backoff);
        g.pop()
    }
}
