//! # microrec-repro
//!
//! Umbrella crate of the MicroRec reproduction (Jiang et al., *MicroRec:
//! Efficient Recommendation Inference by Hardware and Data Structure
//! Solutions*, MLSys 2021). Re-exports every sub-crate under one roof so
//! the examples and integration tests read naturally; library users can
//! equally depend on the individual `microrec-*` crates.

#![forbid(unsafe_code)]

pub use microrec_accel as accel;
pub use microrec_core as core_engine;
pub use microrec_cpu as cpu;
pub use microrec_dnn as dnn;
pub use microrec_embedding as embedding;
pub use microrec_memsim as memsim;
pub use microrec_placement as placement;
pub use microrec_workload as workload;
