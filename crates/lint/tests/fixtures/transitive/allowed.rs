//! The same reachability, justified at the root's call sites through
//! the escape hatch: one allow per transitive lint id.

pub fn serve_batch(queries: &[u64]) -> usize {
    // lint: allow(transitive-hot-path-alloc) report buffer is handed straight to the caller
    let n = summarize(queries);
    // lint: allow(transitive-panic) admission guarantees a non-empty batch
    n + tail(queries)
}

fn summarize(queries: &[u64]) -> usize {
    let copied: Vec<u64> = queries.to_vec();
    copied.len()
}

fn tail(queries: &[u64]) -> usize {
    *queries.last().unwrap() as usize
}
