//! # microrec-rng
//!
//! Deterministic pseudo-random number generation for the MicroRec
//! reproduction. The build environment has no access to crates.io, so this
//! crate replaces `rand`/`rand_distr` with a self-contained xoshiro256++
//! generator plus the handful of distributions the workspace needs:
//! uniform ranges, Bernoulli, exponential inter-arrival gaps, and the
//! Zipfian sparse-feature sampler (rejection-inversion, the same algorithm
//! `rand_distr::Zipf` uses).
//!
//! Everything is seeded explicitly — equal seeds give identical streams on
//! every platform, which the repo's determinism tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic xoshiro256++ generator seeded via SplitMix64.
///
/// # Examples
///
/// ```
/// use microrec_rng::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// The next 64 uniformly random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `u64` in `[lo, hi)` via Lemire's unbiased multiply-shift
    /// rejection.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire 2019: multiply-and-reject keeps the draw exactly uniform.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(span);
            let low = m as u64;
            if low >= span.wrapping_neg() % span {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.gen_f32()
    }

    /// A Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// An exponential distribution with rate `lambda` (mean `1/lambda`),
/// sampled by inversion. Models Poisson inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution.
    ///
    /// Returns `None` for a non-positive or non-finite rate.
    #[must_use]
    pub fn new(lambda: f64) -> Option<Self> {
        if lambda > 0.0 && lambda.is_finite() {
            Some(Exp { lambda })
        } else {
            None
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // Inversion: -ln(1 - U) / lambda; 1 - U in (0, 1] avoids ln(0).
        -(1.0 - rng.gen_f64()).ln() / self.lambda
    }
}

/// A Zipfian distribution over ranks `1..=n` with exponent `s > 0`:
/// `P(k) ∝ k^-s`. Sampled with rejection inversion (Hörmann & Derflinger),
/// the algorithm behind `rand_distr::Zipf` — O(1) per draw with no
/// precomputed table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    t: f64,
    q: f64,
}

impl Zipf {
    /// Creates the distribution over `1..=n`.
    ///
    /// Returns `None` if `n == 0`, or `s` is non-positive or non-finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Option<Self> {
        if n == 0 || !(s.is_finite() && s > 0.0) {
            return None;
        }
        let nf = n as f64;
        let q = s;
        // t = (n^(1-q) - q) / (1 - q), continued to q = 1 as 1 + ln(n).
        let t =
            if (q - 1.0).abs() < 1e-9 { 1.0 + nf.ln() } else { (nf.powf(1.0 - q) - q) / (1.0 - q) };
        Some(Zipf { n: nf, s, t, q })
    }

    /// Inverse of the dominating distribution's CDF.
    fn inv_cdf(&self, p: f64) -> f64 {
        let pt = p * self.t;
        if pt <= 1.0 {
            pt
        } else if (self.q - 1.0).abs() < 1e-9 {
            (pt - 1.0).exp()
        } else {
            (pt * (1.0 - self.q) + self.q).powf(1.0 / (1.0 - self.q))
        }
    }

    /// Draws one rank in `1..=n` (rank 1 is the hottest).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            // OpenClosed01: p in (0, 1] so inv_cdf never sees exactly 0.
            let p = 1.0 - rng.gen_f64();
            let inv_b = self.inv_cdf(p);
            let x = (inv_b + 1.0).floor().min(self.n);
            let mut ratio = x.powf(-self.s);
            if x > 1.0 {
                ratio *= inv_b.powf(self.s);
            }
            let y = 1.0 - rng.gen_f64();
            if y < ratio {
                return x as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range_u64(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
        for _ in 0..1000 {
            let f = rng.gen_range_f32(-0.25, 0.25);
            assert!((-0.25..0.25).contains(&f));
            let d = rng.gen_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range_u64(3, 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let exp = Exp::new(1000.0).unwrap();
        let mut rng = Rng::seed_from_u64(3);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 1e-3).abs() / 1e-3 < 0.05, "mean {mean}");
        assert!(Exp::new(0.0).is_none());
        assert!(Exp::new(f64::NAN).is_none());
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(500_000, 1.1).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        let n = 5_000;
        let mut top10 = 0usize;
        for _ in 0..n {
            let k = zipf.sample(&mut rng);
            assert!((1..=500_000).contains(&k));
            if k <= 10 {
                top10 += 1;
            }
        }
        // Under uniform sampling the top-10 mass would be ~1e-4.
        assert!(top10 > n / 10, "only {top10}/{n} draws in the top 10");
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, 0.0).is_none());
    }

    #[test]
    fn zipf_rank_one_dominates_rank_two() {
        let zipf = Zipf::new(1000, 1.0).unwrap();
        let mut rng = Rng::seed_from_u64(11);
        let (mut r1, mut r2) = (0usize, 0usize);
        for _ in 0..20_000 {
            match zipf.sample(&mut rng) {
                1 => r1 += 1,
                2 => r2 += 1,
                _ => {}
            }
        }
        assert!(r1 > r2, "rank 1 ({r1}) must beat rank 2 ({r2})");
        // P(1)/P(2) = 2 for s = 1; allow generous sampling noise.
        let ratio = r1 as f64 / r2.max(1) as f64;
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }
}
