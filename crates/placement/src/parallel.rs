//! Parallel placement search.
//!
//! Algorithm 1's outer loop — one candidate count `n` per iteration — is
//! embarrassingly parallel: each iteration allocates an independent plan.
//! This module fans the iterations out over worker threads with
//! `microrec_par`, which matters when the search is embedded in a
//! larger sweep (design-space exploration evaluates hundreds of placements)
//! or run on big synthetic model families.

use microrec_embedding::{MergePlan, ModelSpec, Precision};
use microrec_memsim::MemoryConfig;

use crate::alloc::allocate_with;
use crate::error::PlacementError;
use crate::heuristic::{HeuristicOptions, SearchOutcome};

/// Parallel variant of [`heuristic_search`](crate::heuristic_search):
/// identical results (the argmin over iterations is order-independent,
/// with the same latency-then-storage-then-smallest-`n` tie-break),
/// computed across `threads` workers.
///
/// # Examples
///
/// ```
/// use microrec_embedding::{ModelSpec, Precision};
/// use microrec_memsim::MemoryConfig;
/// use microrec_placement::{heuristic_search_parallel, HeuristicOptions};
///
/// let outcome = heuristic_search_parallel(
///     &ModelSpec::small_production(),
///     &MemoryConfig::u280(),
///     Precision::F32,
///     &HeuristicOptions::default(),
///     4,
/// )?;
/// assert_eq!(outcome.plan.num_tables(), 42);
/// # Ok::<(), microrec_placement::PlacementError>(())
/// ```
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] if not even the unmerged model
/// can be placed.
pub fn heuristic_search_parallel(
    model: &ModelSpec,
    config: &MemoryConfig,
    precision: Precision,
    options: &HeuristicOptions,
    threads: usize,
) -> Result<SearchOutcome, PlacementError> {
    let base_plan = allocate_with(model, &MergePlan::none(), config, precision, options.strategy)?;
    let base_cost = base_plan.cost(config, model.lookups_per_table);
    if !options.allow_merge {
        return Ok(SearchOutcome { plan: base_plan, cost: base_cost, evaluated: 1 });
    }

    // Merge-eligible tables, exactly as the sequential search computes them.
    let onchip: Vec<usize> = base_plan
        .placed
        .iter()
        .filter(|t| t.banks[0].kind.is_on_chip())
        .flat_map(|t| t.members.iter().copied())
        .collect();
    let mut eligible: Vec<usize> =
        (0..model.num_tables()).filter(|i| !onchip.contains(i)).collect();
    eligible.sort_by_key(|&i| (model.tables[i].bytes(precision), i));

    let g = options.group_size.max(2);
    let cap = options.max_candidates.unwrap_or(eligible.len()).min(eligible.len());
    let ns: Vec<usize> = (1..).map(|k| k * g).take_while(|&n| n <= cap).collect();
    let threads = threads.max(1).min(ns.len().max(1));

    // Each worker evaluates a strided subset of candidate counts and
    // returns its local best as (latency, storage, n, plan, evaluated).
    type WorkerBest = (Option<(SearchOutcome, usize)>, usize);
    let chunks: Vec<Vec<usize>> =
        (0..threads).map(|w| ns.iter().copied().skip(w).step_by(threads).collect()).collect();

    let worker = |my_ns: &[usize]| -> Result<WorkerBest, PlacementError> {
        let mut best: Option<(SearchOutcome, usize)> = None;
        let mut evaluated = 0usize;
        for &n in my_ns {
            let candidates = &eligible[..n];
            let groups: Vec<Vec<usize>> = if g == 2 {
                (0..n / 2).map(|k| vec![candidates[k], candidates[n - 1 - k]]).collect()
            } else {
                let k = n / g;
                (0..k).map(|j| (0..g).map(|m| candidates[j + m * k]).collect()).collect()
            };
            let merge = MergePlan { groups };
            match allocate_with(model, &merge, config, precision, options.strategy) {
                Ok(plan) => {
                    evaluated += 1;
                    let cost = plan.cost(config, model.lookups_per_table);
                    let better = match &best {
                        None => true,
                        Some((b, bn)) => {
                            cost.better_than(&b.cost) || (!b.cost.better_than(&cost) && n < *bn)
                        }
                    };
                    if better {
                        best = Some((SearchOutcome { plan, cost, evaluated: 0 }, n));
                    }
                }
                Err(PlacementError::Infeasible(_)) | Err(PlacementError::Embedding(_)) => {
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok((best, evaluated))
    };

    let results: Vec<Result<WorkerBest, PlacementError>> =
        microrec_par::par_map(&chunks, threads, |_, chunk| worker(chunk));

    let mut best = SearchOutcome { plan: base_plan, cost: base_cost, evaluated: 1 };
    let mut best_n = usize::MAX;
    for result in results {
        let (local, evaluated) = result?;
        best.evaluated += evaluated;
        if let Some((outcome, n)) = local {
            if outcome.cost.better_than(&best.cost)
                || (!best.cost.better_than(&outcome.cost) && n < best_n)
            {
                best_n = n;
                best = SearchOutcome {
                    plan: outcome.plan,
                    cost: outcome.cost,
                    evaluated: best.evaluated,
                };
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::heuristic_search;

    #[test]
    fn parallel_matches_sequential_on_production_models() {
        let config = MemoryConfig::u280();
        for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
            let seq =
                heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default())
                    .unwrap();
            for threads in [1usize, 2, 4, 7] {
                let par = heuristic_search_parallel(
                    &model,
                    &config,
                    Precision::F32,
                    &HeuristicOptions::default(),
                    threads,
                )
                .unwrap();
                assert_eq!(par.plan, seq.plan, "{} threads={threads}", model.name);
                assert_eq!(par.cost, seq.cost);
            }
        }
    }

    #[test]
    fn parallel_respects_no_merge() {
        let model = ModelSpec::small_production();
        let out = heuristic_search_parallel(
            &model,
            &MemoryConfig::u280(),
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
            4,
        )
        .unwrap();
        assert_eq!(out.plan.num_tables(), 47);
        assert_eq!(out.evaluated, 1);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let model = ModelSpec::dlrm_rmc2(4, 8);
        let out = heuristic_search_parallel(
            &model,
            &MemoryConfig::u280(),
            Precision::F32,
            &HeuristicOptions::default(),
            64,
        )
        .unwrap();
        out.plan.validate(&model, &MemoryConfig::u280()).unwrap();
    }
}
