//! Regenerates Table 3: benefit and overhead of Cartesian products.

use microrec_bench::print_table;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::MemoryConfig;
use microrec_placement::{heuristic_search, HeuristicOptions};

fn main() {
    let config = MemoryConfig::u280();
    // Paper rows: (model, with_cartesian) ->
    //   (tables, in-DRAM, rounds, storage %, latency %)
    let paper = [
        ("alibaba-small", false, 47, 39, 2, 100.0, 100.0),
        ("alibaba-small", true, 42, 34, 1, 103.2, 59.2),
        ("alibaba-large", false, 98, 82, 3, 100.0, 100.0),
        ("alibaba-large", true, 84, 68, 2, 101.9, 72.1),
    ];

    let mut rows = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        let base = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )
        .expect("baseline placement");
        let merged =
            heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default())
                .expect("merged placement");
        let logical_bytes = model.total_bytes(Precision::F32) as f64;
        for (label, with_cartesian, out) in
            [("Without Cartesian", false, &base), ("With Cartesian", true, &merged)]
        {
            let storage_pct = out.cost.storage_bytes as f64 / logical_bytes * 100.0;
            let latency_pct =
                out.cost.lookup_latency.as_ns() / base.cost.lookup_latency.as_ns() * 100.0;
            let key = (model.name.as_str(), with_cartesian);
            let p = paper.iter().find(|r| (r.0, r.1) == key).expect("paper row");
            rows.push(vec![
                format!("{} / {label}", model.name),
                format!("{} (paper {})", out.plan.num_tables(), p.2),
                format!("{} (paper {})", out.cost.tables_in_dram, p.3),
                format!("{} (paper {})", out.cost.dram_rounds, p.4),
                format!("{storage_pct:.1}% (paper {:.1}%)", p.5),
                format!("{latency_pct:.1}% (paper {:.1}%)", p.6),
            ]);
        }
    }
    print_table(
        "Table 3: Benefit and overhead of Cartesian products",
        &[
            "Configuration",
            "Table Num",
            "Tables in DRAM",
            "DRAM Rounds",
            "Storage",
            "Lookup Latency",
        ],
        &rows,
    );
}
