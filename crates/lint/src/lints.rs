//! The lint passes.
//!
//! Two layers run over the workspace:
//!
//! 1. **Local lints** — the per-file structural checks (allocation,
//!    panic, unsafe-audit, determinism, condvar-loop), scoped by the
//!    manifest exactly as before.
//! 2. **Flow lints** — interprocedural checks over the
//!    [`crate::index::WorkspaceIndex`] / [`crate::callgraph::CallGraph`]
//!    / [`crate::summaries::Summaries`] triple: transitive
//!    allocation/panic reachability with witness chains, lock-order
//!    cycle detection, blocking-under-lock, and the ring shutdown
//!    protocol. A final pass flags `lint: allow` comments that
//!    suppressed nothing.
//!
//! Both layers share one [`AllowSet`] so the escape hatch works (and is
//! usage-counted) uniformly.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::config::{glob_match, Config, LintScope, Severity, LINT_IDS, MALFORMED_ALLOW};
use crate::index::{FileModel, FnId, WorkspaceIndex};
use crate::source::{Finding, FindingKind, Stripped};
use crate::summaries::{RingOpKind, Summaries};
use crate::Report;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Lint id (one of [`LINT_IDS`] or `malformed-allow`).
    pub lint: String,
    pub severity: Severity,
    pub message: String,
    /// Call chain for interprocedural findings (`file:line \`fn\``
    /// entries from the anchoring function to the offending site);
    /// empty for local lints.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Result of linting one file (the single-file entry point's view).
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a well-formed `lint: allow` comment.
    pub suppressed: usize,
}

/// A parsed, well-formed `lint: allow(<id>) <reason>` comment, with a
/// use counter so stale ones can be flagged by `unused-allow`.
#[derive(Debug)]
struct AllowEntry {
    file: String,
    line: usize,
    id: String,
    /// Standalone comment (no code on its line): also covers the line
    /// directly below.
    covers_next: bool,
    used: usize,
}

/// Every allow comment in the workspace, usage-counted.
#[derive(Debug, Default)]
struct AllowSet {
    entries: Vec<AllowEntry>,
}

impl AllowSet {
    /// True when an allow for `id` anchors `line` of `file`; counts the
    /// use.
    fn suppresses(&mut self, file: &str, id: &str, line: usize) -> bool {
        for e in &mut self.entries {
            if e.file == file
                && e.id == id
                && (e.line == line || (e.covers_next && e.line + 1 == line))
            {
                e.used += 1;
                return true;
            }
        }
        false
    }

    fn total_used(&self) -> usize {
        self.entries.iter().map(|e| e.used).sum()
    }
}

/// Lints one file's source text against the manifest (the flow lints run
/// over the single-file "workspace", so intra-file chains still work).
#[must_use]
pub fn lint_source(rel_path: &str, text: &str, config: &Config) -> FileReport {
    let report = lint_workspace(vec![FileModel::build(rel_path, text)], config);
    FileReport { diagnostics: report.diagnostics, suppressed: report.suppressed }
}

/// Lints a whole workspace of pre-built file models.
#[must_use]
pub(crate) fn lint_workspace(files: Vec<FileModel>, config: &Config) -> Report {
    let index = WorkspaceIndex::build(files);
    let graph = CallGraph::build(&index);
    let sums = Summaries::build(&index, &graph);

    let mut allows = AllowSet::default();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &index.files {
        collect_allows(&file.rel_path, &file.stripped, &mut allows, &mut diags);
    }

    for file in &index.files {
        local_lints(file, config, &mut allows, &mut diags);
    }

    transitive_lints(&index, &graph, &sums, config, &mut allows, &mut diags);
    lock_order(&index, &graph, &sums, config, &mut allows, &mut diags);
    blocking_under_lock(&index, &graph, &sums, config, &mut allows, &mut diags);
    ring_protocol(&index, &sums, config, &mut allows, &mut diags);
    unused_allows(config, &mut allows, &mut diags);

    diags.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
    });
    Report { diagnostics: diags, files_scanned: index.files.len(), suppressed: allows.total_used() }
}

// ---------------------------------------------------------------------------
// Local (single-file) lints
// ---------------------------------------------------------------------------

fn local_lints(
    file: &FileModel,
    config: &Config,
    allows: &mut AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    for finding in &file.scan.findings {
        let Some((lint, scope)) = scope_for(finding, config, &file.rel_path) else {
            continue;
        };
        if !scope_accepts(scope, finding) {
            continue;
        }
        if let FindingKind::UnsafeSite { .. } = finding.kind {
            if has_safety_comment(&file.stripped, finding.line) {
                continue;
            }
        }
        if allows.suppresses(&file.rel_path, lint, finding.line) {
            continue;
        }
        out.push(Diagnostic {
            file: file.rel_path.clone(),
            line: finding.line,
            lint: lint.to_string(),
            severity: scope.severity,
            message: message_for(finding),
            chain: Vec::new(),
        });
    }
}

/// Which lint (if any) a finding kind belongs to, when the file is in
/// that lint's configured paths.
fn scope_for<'c>(
    finding: &Finding,
    config: &'c Config,
    rel_path: &str,
) -> Option<(&'static str, &'c LintScope)> {
    let lint = match finding.kind {
        FindingKind::Alloc { .. } => "hot-path-alloc",
        FindingKind::PanicCall { .. } => "no-panic-serving",
        FindingKind::UnsafeSite { .. } => "unsafe-audit",
        FindingKind::Nondet { .. } => "determinism",
        FindingKind::BareWait { .. } => "condvar-loop",
    };
    debug_assert!(LINT_IDS.contains(&lint));
    let scope = config.lints.get(lint)?;
    scope.paths.iter().any(|p| glob_match(p, rel_path)).then_some((lint, scope))
}

/// True when a `functions = [...]` entry designates this function: a
/// bare entry matches by name, a `Type::method` entry only matches that
/// impl's method.
fn fn_entry_matches(entries: &[String], name: Option<&str>, qual: Option<&str>) -> bool {
    entries.iter().any(|e| Some(e.as_str()) == name || Some(e.as_str()) == qual)
}

/// Per-finding scope rules beyond path matching.
fn scope_accepts(scope: &LintScope, finding: &Finding) -> bool {
    match finding.kind {
        // Unsafe code needs a SAFETY argument even in tests; a bare wait
        // is a deadlock seed wherever it appears.
        FindingKind::UnsafeSite { .. } | FindingKind::BareWait { .. } => true,
        // Hot-path, panic, and determinism rules guard production code
        // only — tests may allocate, unwrap, and time freely.
        _ if finding.in_test => false,
        FindingKind::Alloc { .. } if !scope.functions.is_empty() => {
            fn_entry_matches(&scope.functions, finding.func.as_deref(), finding.qual.as_deref())
        }
        _ => true,
    }
}

fn message_for(finding: &Finding) -> String {
    match &finding.kind {
        FindingKind::Alloc { what } => {
            let func = finding.func.as_deref().unwrap_or("?");
            format!("`{what}` allocates inside designated hot path (fn `{func}`)")
        }
        FindingKind::PanicCall { what } => {
            format!("`{what}` can panic inside the serving runtime; return an error instead")
        }
        FindingKind::UnsafeSite { kind } => {
            format!("{kind} without an adjacent `// SAFETY:` comment")
        }
        FindingKind::Nondet { what } => {
            format!("`{what}` is nondeterministic in a bit-identity crate")
        }
        FindingKind::BareWait { what } => {
            format!("`Condvar::{what}` outside a `while`/`loop` predicate re-check")
        }
    }
}

/// Whole files that are test/bench/demo context by location.
pub(crate) fn is_test_file(rel_path: &str) -> bool {
    rel_path.split('/').any(|segment| matches!(segment, "tests" | "benches" | "examples"))
}

/// Finds every `lint: allow` comment; malformed ones become diagnostics
/// immediately (they must never silently fail to suppress).
fn collect_allows(
    rel_path: &str,
    stripped: &Stripped,
    allows: &mut AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    for comment in &stripped.comments {
        // A directive must *start* the comment (`// lint: allow(...)`),
        // so prose that merely mentions the grammar never matches. Doc
        // comments arrive as `/ lint: ...` (one slash is part of the
        // comment text) and are tolerated.
        let text = comment.text.trim_start().trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let Some(rest) = rest.trim_start().strip_prefix("allow") else {
            continue;
        };
        let mut bad = |why: &str| {
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: comment.line,
                lint: MALFORMED_ALLOW.to_string(),
                severity: Severity::Deny,
                message: format!("malformed `lint: allow` comment: {why}"),
                chain: Vec::new(),
            });
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            bad("expected `(<lint-id>)` after `allow`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unterminated `(<lint-id>)`");
            continue;
        };
        let id = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        if !LINT_IDS.contains(&id.as_str()) {
            bad(&format!("unknown lint id `{id}`"));
            continue;
        }
        if reason.is_empty() {
            bad("a justification is required after the `(<lint-id>)`");
            continue;
        }
        let covers_next =
            stripped.code_lines.get(comment.line - 1).is_none_or(|code| code.trim().is_empty());
        allows.entries.push(AllowEntry {
            file: rel_path.to_string(),
            line: comment.line,
            id,
            covers_next,
            used: 0,
        });
    }
}

/// True when an unsafe site at `line` carries a SAFETY justification: a
/// `// SAFETY:` (or `/// # Safety` doc section) comment on the same line
/// or in the contiguous comment/attribute block directly above.
fn has_safety_comment(stripped: &Stripped, line: usize) -> bool {
    let mentions_safety = |l: usize| {
        stripped
            .comments
            .iter()
            .filter(|c| c.line == l)
            .any(|c| c.text.contains("SAFETY:") || c.text.contains("# Safety"))
    };
    if mentions_safety(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let code = stripped.code_lines.get(l - 1).map_or("", |s| s.as_str()).trim();
        let has_comment = stripped.comments.iter().any(|c| c.line == l);
        let is_attr = code.starts_with('#') || code.ends_with(']');
        if mentions_safety(l) {
            return true;
        }
        if (code.is_empty() && has_comment) || is_attr {
            l -= 1;
            continue;
        }
        break;
    }
    false
}

// ---------------------------------------------------------------------------
// Flow lints
// ---------------------------------------------------------------------------

/// A function the given flow-lint scope applies to: non-test, in the
/// scope's paths, and (when a `functions` list exists) designated by it.
fn designated(index: &WorkspaceIndex, id: FnId, scope: &LintScope) -> bool {
    let (file, def) = index.lookup(id);
    if def.in_test || file.is_test_file {
        return false;
    }
    if !scope.paths.iter().any(|p| glob_match(p, &file.rel_path)) {
        return false;
    }
    scope.functions.is_empty()
        || fn_entry_matches(&scope.functions, Some(&def.name), Some(def.display_name()))
}

/// `transitive-hot-path-alloc` and `transitive-panic`: BFS from every
/// designated root's call sites to functions *outside* the scope whose
/// bodies allocate/panic, reporting the full witness chain. Traversal
/// prunes at designated functions (their own bodies are the direct
/// lint's job, and their calls are covered when they root their own
/// search), so every violation is reported exactly once, at the nearest
/// designated caller.
fn transitive_lints(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    sums: &Summaries,
    config: &Config,
    allows: &mut AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    let variants: [(&str, &str, bool); 2] = [
        ("transitive-hot-path-alloc", "hot-path-alloc", true),
        ("transitive-panic", "no-panic-serving", false),
    ];
    for (lint_id, direct_id, is_alloc) in variants {
        let Some(scope) = config.lints.get(lint_id) else {
            continue;
        };
        let mut seen: BTreeSet<(String, usize, String, usize)> = BTreeSet::new();
        for root in index.ids() {
            if !designated(index, root, scope) {
                continue;
            }
            let (root_file, root_def) = index.lookup(root);
            for call in graph.of(root) {
                // BFS with parent pointers for chain reconstruction.
                let mut parents: BTreeMap<FnId, FnId> = BTreeMap::new();
                let mut queue: VecDeque<FnId> = VecDeque::new();
                parents.insert(call.callee, root);
                queue.push_back(call.callee);
                while let Some(g) = queue.pop_front() {
                    let (g_file, g_def) = index.lookup(g);
                    if g_def.in_test || g_file.is_test_file || designated(index, g, scope) {
                        continue;
                    }
                    let sites =
                        if is_alloc { &sums.facts[g].allocs } else { &sums.facts[g].panics };
                    for site in sites {
                        let key = (
                            root_file.rel_path.clone(),
                            call.line,
                            g_file.rel_path.clone(),
                            site.line,
                        );
                        if !seen.insert(key) {
                            continue;
                        }
                        // The site is justified by an allow at the site
                        // itself (direct or transitive id) or at the
                        // root's call line.
                        if allows.suppresses(&g_file.rel_path, direct_id, site.line)
                            || allows.suppresses(&g_file.rel_path, lint_id, site.line)
                            || allows.suppresses(&root_file.rel_path, lint_id, call.line)
                        {
                            continue;
                        }
                        let mut chain_ids = vec![g];
                        let mut cur = g;
                        while let Some(&p) = parents.get(&cur) {
                            chain_ids.push(p);
                            if p == root {
                                break;
                            }
                            cur = p;
                        }
                        chain_ids.reverse();
                        let chain_names: Vec<&str> =
                            chain_ids.iter().map(|&id| index.lookup(id).1.display_name()).collect();
                        let verb = if is_alloc { "allocates" } else { "can panic" };
                        let role = if is_alloc { "hot" } else { "serving" };
                        out.push(Diagnostic {
                            file: root_file.rel_path.clone(),
                            line: call.line,
                            lint: lint_id.to_string(),
                            severity: scope.severity,
                            message: format!(
                                "`{}` {verb} at {}:{}, reached from {role} fn `{}` (chain: {})",
                                site.what,
                                g_file.rel_path,
                                site.line,
                                root_def.display_name(),
                                chain_names.join(" -> "),
                            ),
                            chain: chain_ids.iter().map(|&id| index.describe(id)).collect(),
                        });
                    }
                    for next in graph.of(g) {
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            parents.entry(next.callee)
                        {
                            e.insert(g);
                            queue.push_back(next.callee);
                        }
                    }
                }
            }
        }
    }
}

/// One `held -> acquired` edge of the lock-acquisition graph.
#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: usize,
    what: String,
}

/// `lock-order`: collect every ordered pair of lock labels — a direct
/// acquisition while another guard is held, or a call made under a
/// guard to a function that (transitively) acquires — and flag cycles.
fn lock_order(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    sums: &Summaries,
    config: &Config,
    allows: &mut AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    let Some(scope) = config.lints.get("lock-order") else {
        return;
    };
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut edge_seen: BTreeSet<(String, String)> = BTreeSet::new();
    for f in index.ids() {
        if !designated(index, f, scope) {
            continue;
        }
        let (file, _) = index.lookup(f);
        for acq in &sums.facts[f].acquires {
            for held in &acq.held {
                if edge_seen.insert((held.clone(), acq.label.clone())) {
                    edges.push(LockEdge {
                        from: held.clone(),
                        to: acq.label.clone(),
                        file: file.rel_path.clone(),
                        line: acq.line,
                        what: format!("acquires `{}`", acq.label),
                    });
                }
            }
        }
        for call in graph.of(f) {
            let Some(held) = sums.facts[f].held_at_call.get(&call.tok) else {
                continue;
            };
            for to in &sums.acquires_all[call.callee] {
                for from in held {
                    if from == to {
                        // The direct re-entrant case is covered above;
                        // a call-edge self-loop is almost always the
                        // label of a *different* instance's lock.
                        continue;
                    }
                    if edge_seen.insert((from.clone(), to.clone())) {
                        edges.push(LockEdge {
                            from: from.clone(),
                            to: to.clone(),
                            file: file.rel_path.clone(),
                            line: call.line,
                            what: format!("call to `{}` acquires `{to}`", call.display),
                        });
                    }
                }
            }
        }
    }

    // Two-phase: detect cycles, drop edges whose witness line carries an
    // allow, re-detect. (Allows on acyclic edges stay unused so
    // `unused-allow` can flag them.)
    for _ in 0..2 {
        let cyclic = cyclic_edges(&edges);
        if cyclic.is_empty() {
            return;
        }
        let before = edges.len();
        edges.retain(|e| {
            let on_cycle = cyclic.iter().any(|c| c.from == e.from && c.to == e.to);
            !(on_cycle && allows.suppresses(&e.file, "lock-order", e.line))
        });
        if edges.len() == before {
            // Nothing suppressed: report each cycle component once.
            report_cycles(&cyclic, scope, out);
            return;
        }
    }
    let cyclic = cyclic_edges(&edges);
    if !cyclic.is_empty() {
        report_cycles(&cyclic, scope, out);
    }
}

/// Edges that participate in a cycle (their target reaches their source).
fn cyclic_edges(edges: &[LockEdge]) -> Vec<LockEdge> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if visited.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    edges.iter().filter(|e| reaches(&e.to, &e.from)).cloned().collect()
}

/// Groups cyclic edges into connected components and reports one
/// diagnostic per component, anchored at its first witness.
fn report_cycles(cyclic: &[LockEdge], scope: &LintScope, out: &mut Vec<Diagnostic>) {
    let mut remaining: Vec<&LockEdge> = cyclic.iter().collect();
    while let Some(seed) = remaining.first().copied() {
        let mut labels: BTreeSet<String> = BTreeSet::new();
        labels.insert(seed.from.clone());
        labels.insert(seed.to.clone());
        // Expand the component to fixpoint.
        loop {
            let before = labels.len();
            for e in &remaining {
                if labels.contains(&e.from) || labels.contains(&e.to) {
                    labels.insert(e.from.clone());
                    labels.insert(e.to.clone());
                }
            }
            if labels.len() == before {
                break;
            }
        }
        let (component, rest): (Vec<&LockEdge>, Vec<&LockEdge>) =
            remaining.into_iter().partition(|e| labels.contains(&e.from));
        remaining = rest;
        let mut component = component;
        component.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let anchor = component[0];
        let detail: Vec<String> = component
            .iter()
            .map(|e| format!("`{}` -> `{}` ({}:{}, {})", e.from, e.to, e.file, e.line, e.what))
            .collect();
        let label_list: Vec<String> = labels.iter().map(|l| format!("`{l}`")).collect();
        out.push(Diagnostic {
            file: anchor.file.clone(),
            line: anchor.line,
            lint: "lock-order".to_string(),
            severity: scope.severity,
            message: format!(
                "lock-order cycle between {}: {}",
                label_list.join(", "),
                detail.join("; "),
            ),
            chain: component
                .iter()
                .map(|e| format!("{}:{} `{}` -> `{}`", e.file, e.line, e.from, e.to))
                .collect(),
        });
    }
}

/// `blocking-under-lock`: a blocking operation — directly in the body,
/// or anywhere under a call made while a guard is held — stalls every
/// thread contending for that lock.
fn blocking_under_lock(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    sums: &Summaries,
    config: &Config,
    allows: &mut AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    let Some(scope) = config.lints.get("blocking-under-lock") else {
        return;
    };
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for f in index.ids() {
        if !designated(index, f, scope) {
            continue;
        }
        let (file, _) = index.lookup(f);
        for b in &sums.facts[f].blocking {
            if b.held.is_empty() || !seen.insert((file.rel_path.clone(), b.line)) {
                continue;
            }
            if allows.suppresses(&file.rel_path, "blocking-under-lock", b.line) {
                continue;
            }
            out.push(Diagnostic {
                file: file.rel_path.clone(),
                line: b.line,
                lint: "blocking-under-lock".to_string(),
                severity: scope.severity,
                message: format!("`{}` while holding lock `{}`", b.what, b.held.join("`, `")),
                chain: Vec::new(),
            });
        }
        for call in graph.of(f) {
            let Some(held) = sums.facts[f].held_at_call.get(&call.tok) else {
                continue;
            };
            let Some(witness) = &sums.may_block[call.callee] else {
                continue;
            };
            if !seen.insert((file.rel_path.clone(), call.line)) {
                continue;
            }
            if allows.suppresses(&file.rel_path, "blocking-under-lock", call.line) {
                continue;
            }
            out.push(Diagnostic {
                file: file.rel_path.clone(),
                line: call.line,
                lint: "blocking-under-lock".to_string(),
                severity: scope.severity,
                message: format!(
                    "call to `{}` may block ({witness}) while holding lock `{}`",
                    call.display,
                    held.join("`, `")
                ),
                chain: vec![index.describe(call.callee)],
            });
        }
    }
}

/// `ring-protocol`: per-function state checks over the recorded ring
/// operations — push after close, bare `try_pop` polling loops without a
/// close check or exit, and reorder-buffer inserts without an occupancy
/// check.
fn ring_protocol(
    index: &WorkspaceIndex,
    sums: &Summaries,
    config: &Config,
    allows: &mut AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    let Some(scope) = config.lints.get("ring-protocol") else {
        return;
    };
    for f in index.ids() {
        if !designated(index, f, scope) {
            continue;
        }
        let (file, def) = index.lookup(f);
        let facts = &sums.facts[f];
        let ops = &facts.ring_ops;
        let mut emit = |line: usize, message: String, allows: &mut AllowSet| {
            if allows.suppresses(&file.rel_path, "ring-protocol", line) {
                return;
            }
            out.push(Diagnostic {
                file: file.rel_path.clone(),
                line,
                lint: "ring-protocol".to_string(),
                severity: scope.severity,
                message,
                chain: Vec::new(),
            });
        };
        for close in ops.iter().filter(|o| o.kind == RingOpKind::Close) {
            for push in ops.iter().filter(|o| {
                o.kind == RingOpKind::Push && o.label == close.label && o.seq > close.seq
            }) {
                emit(
                    push.line,
                    format!(
                        "push on `{}` after `close` (line {}) in `{}`: closed rings reject items",
                        push.label,
                        close.line,
                        def.display_name(),
                    ),
                    allows,
                );
            }
        }
        for pop in ops.iter().filter(|o| o.kind == RingOpKind::TryPop) {
            let Some(li) = pop.loop_idx else {
                continue;
            };
            let info = &facts.loops[li];
            let has_close_check =
                ops.iter().any(|o| o.kind == RingOpKind::ClosedCheck && o.loop_idx == Some(li));
            if info.bare && !info.has_exit && !has_close_check {
                emit(
                    pop.line,
                    format!(
                        "bare `loop` polls `try_pop` on `{}` without an `is_closed` check, `break`, or `return`: spins forever after shutdown",
                        pop.label,
                    ),
                    allows,
                );
            }
        }
        // Reorder-buffer rule: only meaningful where the fn actually
        // moves ring items (avoids flagging ordinary map inserts).
        let touches_ring = ops.iter().any(|o| {
            matches!(o.kind, RingOpKind::Push | RingOpKind::TryPop | RingOpKind::BlockingPop)
        });
        if touches_ring {
            for ins in ops.iter().filter(|o| o.kind == RingOpKind::Insert) {
                let checked = ops
                    .iter()
                    .any(|o| o.kind == RingOpKind::OccupancyCheck && o.label == ins.label);
                if !checked {
                    emit(
                        ins.line,
                        format!(
                            "`insert` on `{}` without an `is_full`/drain check: slot reuse before drain loses items",
                            ins.label,
                        ),
                        allows,
                    );
                }
            }
        }
    }
}

/// `unused-allow`: an allow that suppressed nothing is a stale exemption.
fn unused_allows(config: &Config, allows: &mut AllowSet, out: &mut Vec<Diagnostic>) {
    let Some(scope) = config.lints.get("unused-allow") else {
        return;
    };
    let scope = scope.clone();
    // First pass: stale allows of other ids (suppressible by an
    // adjacent allow(unused-allow)); second pass: stale
    // allow(unused-allow) comments themselves (not further suppressible).
    let mut stale: Vec<(String, usize, String)> = Vec::new();
    for e in &allows.entries {
        if e.used == 0
            && e.id != "unused-allow"
            && scope.paths.iter().any(|p| glob_match(p, &e.file))
        {
            stale.push((e.file.clone(), e.line, e.id.clone()));
        }
    }
    for (file, line, id) in stale {
        if allows.suppresses(&file, "unused-allow", line) {
            continue;
        }
        out.push(Diagnostic {
            file,
            line,
            lint: "unused-allow".to_string(),
            severity: scope.severity,
            message: format!("`lint: allow({id})` suppresses nothing; remove the stale exemption"),
            chain: Vec::new(),
        });
    }
    let stale_unused: Vec<(String, usize)> = allows
        .entries
        .iter()
        .filter(|e| {
            e.used == 0
                && e.id == "unused-allow"
                && scope.paths.iter().any(|p| glob_match(p, &e.file))
        })
        .map(|e| (e.file.clone(), e.line))
        .collect();
    for (file, line) in stale_unused {
        out.push(Diagnostic {
            file,
            line,
            lint: "unused-allow".to_string(),
            severity: scope.severity,
            message: "`lint: allow(unused-allow)` suppresses nothing; remove the stale exemption"
                .to_string(),
            chain: Vec::new(),
        });
    }
}

/// Groups diagnostics per lint id (for summaries).
#[must_use]
pub fn count_by_lint(diagnostics: &[Diagnostic]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for d in diagnostics {
        *counts.entry(d.lint.clone()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(toml: &str) -> Config {
        Config::parse(toml).unwrap()
    }

    #[test]
    fn hot_path_scopes_to_listed_functions() {
        let cfg = config("[lints.hot-path-alloc]\npaths = [\"src/a.rs\"]\nfunctions = [\"hot\"]\n");
        let src = "fn hot() { let v = Vec::new(); }\nfn cold() { let v = Vec::new(); }\n";
        let report = lint_source("src/a.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 1);
    }

    #[test]
    fn qualified_function_entry_designates_only_that_impl() {
        let cfg = config(
            "[lints.hot-path-alloc]\npaths = [\"src/a.rs\"]\nfunctions = [\"Cache::insert\"]\n",
        );
        let src = "impl Cache {\n    fn insert(&self) { let v = Vec::new(); }\n}\nimpl Buffer {\n    fn insert(&self) { let v = Vec::new(); }\n}\nfn insert() { let v = Vec::new(); }\n";
        let report = lint_source("src/a.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 2);
        assert!(report.diagnostics[0].message.contains("fn `insert`"));
    }

    #[test]
    fn allow_with_reason_suppresses_and_without_reason_reports() {
        let cfg = config("[lints.hot-path-alloc]\npaths = [\"**\"]\n");
        let ok = "fn f() {\n    // lint: allow(hot-path-alloc) result vec is handed to caller\n    let v = Vec::new();\n}\n";
        let report = lint_source("src/a.rs", ok, &cfg);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 1);

        let bad = "fn f() {\n    let v = Vec::new(); // lint: allow(hot-path-alloc)\n}\n";
        let report = lint_source("src/a.rs", bad, &cfg);
        let lints: Vec<&str> = report.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        assert_eq!(lints, vec!["hot-path-alloc", "malformed-allow"]);
    }

    #[test]
    fn allow_of_wrong_id_does_not_suppress() {
        let cfg = config("[lints.hot-path-alloc]\npaths = [\"**\"]\n");
        let src =
            "fn f() {\n    // lint: allow(determinism) wrong id\n    let v = Vec::new();\n}\n";
        let report = lint_source("src/a.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].lint, "hot-path-alloc");
    }

    #[test]
    fn safety_comment_satisfies_unsafe_audit() {
        let cfg = config("[lints.unsafe-audit]\npaths = [\"**\"]\n");
        let good = "// SAFETY: bounds checked above.\nlet x = unsafe { *p };\n";
        assert!(lint_source("src/a.rs", good, &cfg).diagnostics.is_empty());
        let doc = "/// Reads a byte.\n///\n/// # Safety\n///\n/// `p` must be valid.\n#[inline]\npub unsafe fn read(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = lint_source("src/a.rs", doc, &cfg);
        // The decl is documented; the inner block on the same line sees
        // the same doc block.
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let bad = "let x = unsafe { *p };\n";
        assert_eq!(lint_source("src/a.rs", bad, &cfg).diagnostics.len(), 1);
    }

    #[test]
    fn unsafe_audit_applies_even_in_test_files() {
        let cfg = config("[lints.unsafe-audit]\npaths = [\"**\"]\n");
        let src = "unsafe impl Send for X {}\n";
        assert_eq!(lint_source("crates/x/tests/t.rs", src, &cfg).diagnostics.len(), 1);
    }

    #[test]
    fn determinism_skips_test_modules() {
        let cfg = config("[lints.determinism]\npaths = [\"**\"]\n");
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
        let report = lint_source("crates/memsim/src/lib.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 1);
    }

    #[test]
    fn transitive_alloc_reports_the_call_chain() {
        let cfg = config(
            "[lints.hot-path-alloc]\npaths = [\"src/hot.rs\"]\nfunctions = [\"dot\"]\n\n[lints.transitive-hot-path-alloc]\ninherit = \"hot-path-alloc\"\n",
        );
        let files = vec![
            FileModel::build("src/hot.rs", "fn dot() {\n    helper();\n}\n"),
            FileModel::build(
                "src/helper.rs",
                "pub fn helper() { deeper(); }\nfn deeper() { let v = Vec::new(); }\n",
            ),
        ];
        let report = lint_workspace(files, &cfg);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        let d = &report.diagnostics[0];
        assert_eq!(
            (d.file.as_str(), d.line, d.lint.as_str()),
            ("src/hot.rs", 2, "transitive-hot-path-alloc")
        );
        assert!(d.message.contains("dot -> helper -> deeper"), "{}", d.message);
        assert_eq!(d.chain.len(), 3);
    }

    #[test]
    fn transitive_panic_prunes_at_in_scope_callees() {
        let cfg = config(
            "[lints.no-panic-serving]\npaths = [\"src/serve/**\"]\n\n[lints.transitive-panic]\ninherit = \"no-panic-serving\"\n",
        );
        // `entry` calls `inner` (also in scope: direct lint's job) and
        // `outside` (out of scope: transitive finding).
        let files = vec![
            FileModel::build(
                "src/serve/a.rs",
                "fn entry() { inner(); outside(); }\nfn inner() { x.unwrap(); }\n",
            ),
            FileModel::build("src/util.rs", "pub fn outside() { y.unwrap(); }\n"),
        ];
        let report = lint_workspace(files, &cfg);
        let lints: Vec<(&str, usize, &str)> =
            report.diagnostics.iter().map(|d| (d.file.as_str(), d.line, d.lint.as_str())).collect();
        assert_eq!(
            lints,
            vec![
                ("src/serve/a.rs", 1, "transitive-panic"),
                ("src/serve/a.rs", 2, "no-panic-serving"),
            ],
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn lock_order_cycle_is_reported_and_ordered_nesting_is_not() {
        let cfg = config("[lints.lock-order]\npaths = [\"**\"]\n");
        let cycle = vec![FileModel::build(
            "src/a.rs",
            "fn ab(&self) {\n    let a = lock_or_recover(&self.alpha);\n    let b = lock_or_recover(&self.beta);\n}\nfn ba(&self) {\n    let b = lock_or_recover(&self.beta);\n    let a = lock_or_recover(&self.alpha);\n}\n",
        )];
        let report = lint_workspace(cycle, &cfg);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert!(report.diagnostics[0].message.contains("lock-order cycle"));

        let ordered = vec![FileModel::build(
            "src/a.rs",
            "fn ab(&self) {\n    let a = lock_or_recover(&self.alpha);\n    let b = lock_or_recover(&self.beta);\n}\nfn ab2(&self) {\n    let a = lock_or_recover(&self.alpha);\n    let b = lock_or_recover(&self.beta);\n}\n",
        )];
        assert!(lint_workspace(ordered, &cfg).diagnostics.is_empty());
    }

    #[test]
    fn lock_order_sees_through_calls() {
        let cfg = config("[lints.lock-order]\npaths = [\"**\"]\n");
        let files = vec![FileModel::build(
            "src/a.rs",
            "impl T {\nfn ab(&self) {\n    let a = lock_or_recover(&self.alpha);\n    self.take_beta();\n}\nfn take_beta(&self) {\n    let b = lock_or_recover(&self.beta);\n    let a = lock_or_recover(&self.alpha);\n}\n}\n",
        )];
        // ab: alpha -> beta (via call); take_beta: beta -> alpha. Cycle.
        let report = lint_workspace(files, &cfg);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].lint, "lock-order");
    }

    #[test]
    fn blocking_under_lock_direct_and_through_calls() {
        let cfg = config("[lints.blocking-under-lock]\npaths = [\"**\"]\n");
        let files = vec![
            FileModel::build(
                "src/a.rs",
                "fn f(&self) {\n    let g = lock_or_recover(&self.state);\n    self.ring.push_blocking(1);\n}\nfn h(&self) {\n    let g = lock_or_recover(&self.state);\n    helper();\n}\n",
            ),
            FileModel::build("src/b.rs", "pub fn helper() { std::thread::sleep(d); }\n"),
        ];
        let report = lint_workspace(files, &cfg);
        let lines: Vec<usize> = report.diagnostics.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 7], "{:?}", report.diagnostics);
        assert!(report.diagnostics[1].message.contains("may block"));
    }

    #[test]
    fn ring_protocol_flags_push_after_close_and_spin_loops() {
        let cfg = config("[lints.ring-protocol]\npaths = [\"**\"]\n");
        let files = vec![FileModel::build(
            "src/a.rs",
            "fn shutdown(&self) {\n    self.ring.close();\n    let _ = self.ring.try_push(1);\n}\nfn consume(&self) {\n    loop {\n        if let Some(x) = self.ring.try_pop() { work(x); }\n    }\n}\n",
        )];
        let report = lint_workspace(files, &cfg);
        let lints: Vec<(usize, &str)> =
            report.diagnostics.iter().map(|d| (d.line, d.lint.as_str())).collect();
        assert_eq!(lints, vec![(3, "ring-protocol"), (7, "ring-protocol")]);
    }

    #[test]
    fn ring_protocol_accepts_the_close_then_drain_consumer() {
        let cfg = config("[lints.ring-protocol]\npaths = [\"**\"]\n");
        let files = vec![FileModel::build(
            "src/a.rs",
            "fn consume(&self) {\n    loop {\n        if let Some(x) = self.ring.try_pop() { work(x); continue; }\n        if self.ring.is_closed() { break; }\n    }\n}\n",
        )];
        assert!(lint_workspace(files, &cfg).diagnostics.is_empty());
    }

    #[test]
    fn unused_allow_is_flagged_and_used_allow_is_not() {
        let cfg = config(
            "[lints.hot-path-alloc]\npaths = [\"**\"]\n\n[lints.unused-allow]\npaths = [\"**\"]\n",
        );
        let src = "fn f() {\n    // lint: allow(hot-path-alloc) justified\n    let v = Vec::new();\n    // lint: allow(determinism) nothing here matches\n    let x = 1;\n}\n";
        let report = lint_source("src/a.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        let d = &report.diagnostics[0];
        assert_eq!((d.line, d.lint.as_str()), (4, "unused-allow"));
        assert!(d.message.contains("allow(determinism)"));
    }
}
