//! GEMM kernels: the measured host-side compute substrate.

use std::time::Duration;

use microrec_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use microrec_dnn::{
    gemm_blocked, gemm_flops, gemm_naive, gemm_packed, gemv, Matrix, PackedB, Q16, Q32,
};

fn matrices(m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17) as f32 * 0.01).sin() * 0.5);
    let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 7) as f32 * 0.01).cos() * 0.5);
    (a, b)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    // The small production model's second layer at batch 64.
    let (m, k, n) = (64, 1024, 512);
    group.throughput(Throughput::Elements(gemm_flops(m, k, n)));
    let (a, b) = matrices(m, k, n);
    group.bench_function("blocked_64x1024x512", |bench| {
        bench.iter(|| gemm_blocked(black_box(&a), black_box(&b)).unwrap())
    });
    group.throughput(Throughput::Elements(gemm_flops(m, k, n)));
    let packed: PackedB<f32> = PackedB::pack(&b);
    let mut out = vec![0.0f32; m * n];
    group.bench_function("packed_64x1024x512", |bench| {
        bench
            .iter(|| gemm_packed(black_box(a.as_slice()), m, black_box(&packed), &mut out).unwrap())
    });
    let (a2, b2) = matrices(16, 256, 256);
    group.throughput(Throughput::Elements(gemm_flops(16, 256, 256)));
    group.bench_function("naive_16x256x256", |bench| {
        bench.iter(|| gemm_naive(black_box(&a2), black_box(&b2)).unwrap())
    });
    group.finish();
}

fn bench_gemv_precisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv_precision");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    let w = Matrix::from_fn(1024, 352, |r, cix| ((r + cix) as f32 * 0.001).sin() * 0.1);
    let x32: Vec<f32> = (0..352).map(|i| (i as f32 * 0.01).cos() * 0.5).collect();
    group.bench_function("f32_352x1024", |bench| {
        let mut y = vec![0.0f32; 1024];
        bench.iter(|| gemv(black_box(&w), black_box(&x32), &mut y).unwrap())
    });
    let xq16: Vec<Q16> = x32.iter().map(|&v| Q16::from_f32(v)).collect();
    group.bench_function("q16_352x1024", |bench| {
        let mut y = vec![Q16::ZERO; 1024];
        bench.iter(|| gemv(black_box(&w), black_box(&xq16), &mut y).unwrap())
    });
    let xq32: Vec<Q32> = x32.iter().map(|&v| Q32::from_f32(v)).collect();
    group.bench_function("q32_352x1024", |bench| {
        let mut y = vec![Q32::ZERO; 1024];
        bench.iter(|| gemv(black_box(&w), black_box(&xq32), &mut y).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gemv_precisions);
criterion_main!(benches);
