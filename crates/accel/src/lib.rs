//! # microrec-accel
//!
//! Cycle-level model of the MicroRec FPGA accelerator (Jiang et al., MLSys
//! 2021, §4): the deeply pipelined dataflow (embedding lookup feeding three
//! FIFO-connected DNN stages, each split into broadcast / partial-GEMM /
//! gather), the PE-array throughput model, and the resource-utilization
//! estimator behind the appendix's Table 6.
//!
//! The model substitutes for the physical Alveo U280: stage times follow
//! from cycle counts at the design's clock (Table 6 frequencies) and the
//! per-PE MAC rates its DSP budget supports, calibrated to land within
//! ~13 % of every FPGA latency/throughput figure in the paper's Table 2.
//!
//! ## Example
//!
//! ```
//! use microrec_accel::{AccelConfig, Pipeline};
//! use microrec_embedding::{ModelSpec, Precision};
//! use microrec_memsim::SimTime;
//!
//! let model = ModelSpec::small_production();
//! let config = AccelConfig::for_model(&model, Precision::Fixed16);
//! let pipeline = Pipeline::build(&model, &config, SimTime::from_ns(485.0))?;
//! println!(
//!     "latency {}  throughput {:.0} items/s  bottleneck {}",
//!     pipeline.latency(),
//!     pipeline.throughput_items_per_sec(),
//!     pipeline.bottleneck(),
//! );
//! # Ok::<(), microrec_accel::AccelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
mod flow;
mod hostlink;
mod pipeline;
mod resources;

pub use config::{AccelConfig, STREAM_WIDTH};
pub use error::AccelError;
pub use flow::{FlowReport, FlowSim};
pub use hostlink::HostLink;
pub use pipeline::{Pipeline, Stage};
pub use resources::{
    estimate_usage, DeviceCapacity, ResourceUsage, ResourceUtilization, U280_CAPACITY,
};
