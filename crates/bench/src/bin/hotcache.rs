//! Extension study: RecNMP-style hot-entry caching vs MicroRec's channel
//! parallelism, under traffic of varying skew.
//!
//! Ke et al. 2020 (related work, §6) cache frequently-accessed embedding
//! entries near memory. This bench drives the same Zipf query streams
//! through (a) an entry cache in front of a *single* DRAM channel (the
//! CPU-ish topology near-memory caching accelerates) and (b) MicroRec's
//! 34-channel parallel lookup, and compares effective per-item lookup
//! time.

use microrec_bench::print_table;
use microrec_core::MicroRec;
use microrec_embedding::{Catalog, MergePlan, ModelSpec, Precision};
use microrec_memsim::{
    AddressedRead, BankId, CacheConfig, EntryCache, MemTiming, MemoryKind, SimTime,
};
use microrec_workload::{QueryGenConfig, QueryGenerator};

fn main() {
    let model = ModelSpec::small_production();
    let catalog = Catalog::build(&model, &MergePlan::none(), 1).expect("catalog");
    let queries = 2_000usize;
    let dram = MemTiming::ddr4_server();
    // Non-overlapping per-table base addresses.
    let mut bases = Vec::with_capacity(catalog.physical_tables().len());
    let mut cursor = 0u64;
    for table in catalog.physical_tables() {
        bases.push(cursor);
        cursor += table.spec.bytes(Precision::F32);
    }
    let mut rows = Vec::new();

    for (label, zipf) in [("uniform", 0.0), ("zipf-0.9", 0.9), ("zipf-1.2", 1.2)] {
        // (a) Hot-entry cache in front of one DRAM channel.
        let mut cache = EntryCache::new(CacheConfig::recnmp_1mb());
        let mut gen = QueryGenerator::new(&model, QueryGenConfig { zipf_exponent: zipf, seed: 5 })
            .expect("generator");
        let mut cached_total = SimTime::ZERO;
        let bank = BankId::new(MemoryKind::Ddr, 0);
        for _ in 0..queries {
            let q = gen.next_query();
            for lookup in catalog.resolve(&q).expect("resolve") {
                let table = &catalog.physical_tables()[lookup.table];
                let bytes = table.row_bytes(Precision::F32);
                let offset = bases[lookup.table] + lookup.row * u64::from(bytes);
                let read = AddressedRead::new(bank, offset, bytes);
                cached_total += match cache.access(&read) {
                    Some(hit) => hit,
                    None => dram.access_time(bytes),
                };
            }
        }
        let cached_mean = cached_total / queries as u64;

        // (b) MicroRec's parallel lookup on the same stream.
        let mut engine =
            MicroRec::builder(model.clone()).precision(Precision::Fixed16).build().expect("engine");
        let mut gen = QueryGenerator::new(&model, QueryGenConfig { zipf_exponent: zipf, seed: 5 })
            .expect("generator");
        let mut parallel_total = SimTime::ZERO;
        for _ in 0..queries {
            let q = gen.next_query();
            parallel_total += engine.measure_lookup(&q).expect("lookup");
        }
        let parallel_mean = parallel_total / queries as u64;

        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", cache.hit_rate() * 100.0),
            format!("{:.2} us", cached_mean.as_us()),
            format!("{:.2} us", parallel_mean.as_us()),
            format!("{:.1}x", cached_mean.as_ns() / parallel_mean.as_ns()),
        ]);
    }
    print_table(
        "Hot-entry cache (1 channel + 1 MB LRU) vs MicroRec (34 channels)",
        &["Traffic", "Cache hit rate", "Cached lookup", "MicroRec lookup", "MicroRec advantage"],
        &rows,
    );
    println!("\nReading: near-memory caching needs skew to help and still leaves");
    println!("the serial-channel floor; parallel channels cut lookup time for any");
    println!("traffic — the architectural bet MicroRec makes over RecNMP.");
}
