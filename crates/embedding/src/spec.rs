//! Model and table specifications.
//!
//! The paper evaluates two production models from Alibaba (Table 1) and the
//! DLRM-RMC2 class from Facebook's recommendation benchmark (Table 5). The
//! production tables themselves are proprietary, so the presets here are
//! *synthetic reconstructions*: they match every published shape parameter —
//! table count, concatenated feature length, hidden-layer sizes, total model
//! size, and the size skew §2.2 describes (a few enormous id tables plus a
//! long tail of tiny ones) — which are the only quantities the paper's
//! results depend on.

use crate::error::EmbeddingError;
use crate::precision::Precision;

/// Specification of one embedding table.
///
/// # Examples
///
/// ```
/// use microrec_embedding::{Precision, TableSpec};
///
/// let t = TableSpec::new("user_id", 4_000_000, 32);
/// assert_eq!(t.row_bytes(Precision::F32), 128);
/// assert_eq!(t.bytes(Precision::F32), 4_000_000 * 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableSpec {
    /// Table name, unique within a model.
    pub name: String,
    /// Number of embedding vectors (entries).
    pub rows: u64,
    /// Embedding vector length (elements).
    pub dim: u32,
}

impl TableSpec {
    /// Creates a table spec.
    #[must_use]
    pub fn new(name: impl Into<String>, rows: u64, dim: u32) -> Self {
        TableSpec { name: name.into(), rows, dim }
    }

    /// Bytes of one embedding vector at `precision`.
    #[must_use]
    pub fn row_bytes(&self, precision: Precision) -> u32 {
        self.dim * precision.bytes()
    }

    /// Total storage of the table at `precision`.
    #[must_use]
    pub fn bytes(&self, precision: Precision) -> u64 {
        self.rows * u64::from(self.row_bytes(precision))
    }
}

/// Specification of a full deep recommendation model (Figure 1 of the
/// paper, without bottom fully-connected layers — the production models the
/// paper targets feed raw embeddings straight into the top MLP).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name.
    pub name: String,
    /// Every embedding table, in feature order.
    pub tables: Vec<TableSpec>,
    /// Dense input features concatenated as-is (0 for the production
    /// models, which encode everything through tables).
    pub dense_dim: u32,
    /// Bottom MLP widths processing the dense features before
    /// concatenation (empty = dense features pass through raw, the
    /// Wide&Deep / Alibaba style; non-empty = the Facebook/DLRM style of
    /// Gupta et al. 2020b).
    pub bottom_hidden: Vec<u32>,
    /// Hidden layer widths of the top MLP, e.g. `[1024, 512, 256]`.
    pub hidden: Vec<u32>,
    /// Vectors retrieved from each table per inference (1 for the
    /// production models, 4 for DLRM-RMC2).
    pub lookups_per_table: u32,
}

impl ModelSpec {
    /// Creates a model spec.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        tables: Vec<TableSpec>,
        hidden: Vec<u32>,
        lookups_per_table: u32,
    ) -> Self {
        ModelSpec {
            name: name.into(),
            tables,
            dense_dim: 0,
            bottom_hidden: Vec::new(),
            hidden,
            lookups_per_table,
        }
    }

    /// Whether the model processes dense features through a bottom MLP.
    #[must_use]
    pub fn has_bottom_mlp(&self) -> bool {
        !self.bottom_hidden.is_empty()
    }

    /// Width of the dense-feature contribution to the concatenated vector
    /// (the raw dense width, or the bottom MLP's output width).
    #[must_use]
    pub fn dense_output_dim(&self) -> u32 {
        *self.bottom_hidden.last().unwrap_or(&self.dense_dim)
    }

    /// Number of embedding tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Length of the concatenated feature vector fed to the top MLP.
    #[must_use]
    pub fn feature_len(&self) -> u32 {
        self.dense_output_dim()
            + self.tables.iter().map(|t| t.dim).sum::<u32>() * self.lookups_per_table
    }

    /// Embedding lookups per inference.
    #[must_use]
    pub fn lookups_per_item(&self) -> u32 {
        self.tables.len() as u32 * self.lookups_per_table
    }

    /// Total embedding storage at `precision`.
    #[must_use]
    pub fn total_bytes(&self, precision: Precision) -> u64 {
        self.tables.iter().map(|t| t.bytes(precision)).sum()
    }

    /// Multiply-accumulate *operations* of the top MLP per inference item,
    /// counting one multiply and one add each (the paper's GOP/s figures
    /// resolve to exactly this convention).
    #[must_use]
    pub fn flops_per_item(&self) -> u64 {
        let mut flops = 0u64;
        // Bottom MLP over the dense features, if any.
        let mut prev = u64::from(self.dense_dim);
        for &h in &self.bottom_hidden {
            flops += 2 * prev * u64::from(h);
            prev = u64::from(h);
        }
        let mut prev = u64::from(self.feature_len());
        for &h in &self.hidden {
            flops += 2 * prev * u64::from(h);
            prev = u64::from(h);
        }
        // Final CTR output neuron.
        flops += 2 * prev;
        flops
    }

    /// Activation widths of the top MLP, input-first and output-last:
    /// `[feature_len, hidden..., 1]`. Consecutive pairs describe one dense
    /// layer, so routers can reason about per-stage work without building
    /// the network.
    #[must_use]
    pub fn mlp_layer_dims(&self) -> Vec<u64> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(u64::from(self.feature_len()));
        dims.extend(self.hidden.iter().map(|&h| u64::from(h)));
        dims.push(1);
        dims
    }

    /// Bytes of embedding data gathered per inference item at `precision` —
    /// the memory-traffic side of a path cost descriptor, complementing
    /// [`ModelSpec::flops_per_item`] on the compute side.
    #[must_use]
    pub fn gathered_bytes_per_item(&self, precision: Precision) -> u64 {
        u64::from(self.lookups_per_table)
            * self.tables.iter().map(|t| u64::from(t.row_bytes(precision))).sum::<u64>()
    }

    /// Checks internal consistency of the spec.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidMergePlan`] describing the problem if
    /// a table name repeats, any table is empty, or the MLP has no layers.
    pub fn validate(&self) -> Result<(), EmbeddingError> {
        let mut names: Vec<&str> = self.tables.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.tables.len() {
            return Err(EmbeddingError::InvalidMergePlan("duplicate table name".into()));
        }
        if self.tables.iter().any(|t| t.rows == 0 || t.dim == 0) {
            return Err(EmbeddingError::InvalidMergePlan("empty table".into()));
        }
        if self.hidden.is_empty() {
            return Err(EmbeddingError::InvalidMergePlan("model has no hidden layers".into()));
        }
        if self.lookups_per_table == 0 {
            return Err(EmbeddingError::InvalidMergePlan("lookups_per_table is zero".into()));
        }
        if self.has_bottom_mlp() && self.dense_dim == 0 {
            return Err(EmbeddingError::InvalidMergePlan(
                "a bottom MLP requires dense input features".into(),
            ));
        }
        Ok(())
    }

    /// The smaller Alibaba production model of Table 1: 47 tables, 352-dim
    /// concatenated feature, hidden layers (1024, 512, 256), ≈ 1.3 GB.
    ///
    /// Size tiers (synthetic, see module docs):
    /// * 3 id-scale tables of dim 32 (0.77 GB / 0.38 GB / 0.13 GB) that
    ///   dominate storage,
    /// * 4 × dim 16 and 8 × dim 8 mid-size tables,
    /// * 32 × dim 4 tail tables, of which the 8 smallest (60–250 rows) fit
    ///   the on-chip banks and the next 10 (380–660 rows) are the Cartesian
    ///   candidates the heuristic merges.
    #[must_use]
    pub fn small_production() -> Self {
        let mut tables = Vec::new();
        // Tier 1: dim 32 — account/item/category ids.
        for (i, rows) in [6_000_000u64, 3_000_000, 1_000_000].into_iter().enumerate() {
            tables.push(TableSpec::new(format!("big{i:02}_d32"), rows, 32));
        }
        // Tier 2: dim 16.
        for (i, rows) in [200_000u64, 100_000, 50_000, 20_000].into_iter().enumerate() {
            tables.push(TableSpec::new(format!("mid{i:02}_d16"), rows, 16));
        }
        // Tier 3: dim 8.
        for (i, rows) in [100_000u64, 50_000, 30_000, 20_000, 10_000, 5_000, 2_000, 1_000]
            .into_iter()
            .enumerate()
        {
            tables.push(TableSpec::new(format!("sml{i:02}_d8"), rows, 8));
        }
        // Tier 4: dim 4 tail — 14 moderate, 10 Cartesian candidates, 8 tiny.
        let moderate = [
            20_000u64, 16_000, 12_000, 10_000, 8_000, 6_000, 5_000, 4_000, 3_000, 2_500, 2_000,
            1_600, 1_200, 1_000,
        ];
        for (i, rows) in moderate.into_iter().enumerate() {
            tables.push(TableSpec::new(format!("tail{i:02}_d4"), rows, 4));
        }
        let candidates = [660u64, 630, 600, 570, 540, 500, 470, 440, 410, 380];
        for (i, rows) in candidates.into_iter().enumerate() {
            tables.push(TableSpec::new(format!("cand{i:02}_d4"), rows, 4));
        }
        let tiny = [250u64, 220, 190, 160, 130, 100, 80, 60];
        for (i, rows) in tiny.into_iter().enumerate() {
            tables.push(TableSpec::new(format!("tiny{i:02}_d4"), rows, 4));
        }
        ModelSpec::new("alibaba-small", tables, vec![1024, 512, 256], 1)
    }

    /// The larger Alibaba production model of Table 1: 98 tables, 876-dim
    /// concatenated feature, hidden layers (1024, 512, 256), ≈ 15.1 GB.
    ///
    /// Size tiers: 2 × dim 64 giants (7.7 GB / 5.9 GB, DDR-only), 4 × dim 32,
    /// 11 × dim 16, 30 × dim 8, and a 51-table dim-4 tail containing the 16
    /// on-chip residents (50–250 rows) and 28 Cartesian candidates
    /// (500–1 100 rows).
    #[must_use]
    pub fn large_production() -> Self {
        let mut tables = Vec::new();
        // Two DDR-only giants (user/item id scale); everything else fits a
        // 256 MB HBM pseudo-channel.
        for (i, rows) in [30_000_000u64, 23_000_000].into_iter().enumerate() {
            tables.push(TableSpec::new(format!("big{i:02}_d64"), rows, 64));
        }
        for (i, rows) in [1_900_000u64, 1_700_000, 1_500_000, 1_200_000].into_iter().enumerate() {
            tables.push(TableSpec::new(format!("big{i:02}_d32"), rows, 32));
        }
        for (i, rows) in [
            2_000_000u64,
            1_500_000,
            1_000_000,
            800_000,
            600_000,
            500_000,
            400_000,
            300_000,
            200_000,
            100_000,
            50_000,
        ]
        .into_iter()
        .enumerate()
        {
            tables.push(TableSpec::new(format!("mid{i:02}_d16"), rows, 16));
        }
        // 30 × dim 8: 200k down to 1k.
        let d8_rows = [
            200_000u64, 160_000, 130_000, 100_000, 80_000, 65_000, 50_000, 40_000, 32_000, 25_000,
            20_000, 16_000, 13_000, 10_000, 8_000, 6_500, 5_000, 4_000, 3_200, 2_500, 2_000, 1_800,
            1_600, 1_500, 1_400, 1_300, 1_200, 1_100, 1_050, 1_000,
        ];
        for (i, rows) in d8_rows.into_iter().enumerate() {
            tables.push(TableSpec::new(format!("sml{i:02}_d8"), rows, 8));
        }
        // 51 × dim 4: 7 moderate + 28 Cartesian candidates + 16 tiny.
        let moderate = [50_000u64, 30_000, 20_000, 10_000, 5_000, 3_000, 2_000];
        for (i, rows) in moderate.into_iter().enumerate() {
            tables.push(TableSpec::new(format!("tail{i:02}_d4"), rows, 4));
        }
        for i in 0..28u64 {
            // 1100 down to 500 rows in even steps.
            let rows = 1_100 - i * 22;
            tables.push(TableSpec::new(format!("cand{i:02}_d4"), rows, 4));
        }
        for i in 0..16u64 {
            // 250 down to 50 rows.
            let rows = 250 - i * 13;
            tables.push(TableSpec::new(format!("tiny{i:02}_d4"), rows, 4));
        }
        ModelSpec::new("alibaba-large", tables, vec![1024, 512, 256], 1)
    }

    /// A model of Facebook's DLRM-RMC2 class (Gupta et al. 2020b): `tables`
    /// small tables (8–12 in the benchmark) of vector length `dim`, each
    /// looked up 4 times per inference (§5.4.2).
    ///
    /// Table contents are unspecified by the benchmark; following the
    /// paper's own assumption, each table fits comfortably inside one HBM
    /// bank (we use 500 k rows, at most 128 MB at dim 64).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is zero or `dim` is zero.
    #[must_use]
    pub fn dlrm_rmc2(tables: usize, dim: u32) -> Self {
        assert!(tables > 0 && dim > 0, "dlrm_rmc2 requires tables > 0 and dim > 0");
        let specs = (0..tables)
            .map(|i| TableSpec::new(format!("rmc2_{i:02}_d{dim}"), 500_000, dim))
            .collect();
        ModelSpec::new(format!("dlrm-rmc2-{tables}t-d{dim}"), specs, vec![1024, 512, 256], 4)
    }

    /// A Facebook-style DLRM with a bottom MLP (Gupta et al. 2020b; the
    /// paper's Figure 1 mentions this variant even though its own
    /// production models omit bottom FCs): 13 Criteo-style dense features
    /// through a (512, 256, 64) bottom stack, concatenated with the
    /// embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is zero or `dim` is zero.
    #[must_use]
    pub fn dlrm_with_bottom(tables: usize, dim: u32) -> Self {
        let mut model = Self::dlrm_rmc2(tables, dim);
        model.name = format!("dlrm-bottom-{tables}t-d{dim}");
        model.dense_dim = 13;
        model.bottom_hidden = vec![512, 256, 64];
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn small_production_matches_table1() {
        let m = ModelSpec::small_production();
        m.validate().unwrap();
        assert_eq!(m.num_tables(), 47);
        assert_eq!(m.feature_len(), 352);
        assert_eq!(m.hidden, vec![1024, 512, 256]);
        let gb = m.total_bytes(Precision::F32) as f64 / GB;
        assert!((1.25..=1.4).contains(&gb), "small model is {gb:.2} GB, paper says 1.3 GB");
    }

    #[test]
    fn large_production_matches_table1() {
        let m = ModelSpec::large_production();
        m.validate().unwrap();
        assert_eq!(m.num_tables(), 98);
        assert_eq!(m.feature_len(), 876);
        let gb = m.total_bytes(Precision::F32) as f64 / GB;
        assert!((14.5..=15.7).contains(&gb), "large model is {gb:.2} GB, paper says 15.1 GB");
    }

    #[test]
    fn path_descriptor_helpers_match_shape() {
        let m = ModelSpec::new(
            "d",
            vec![TableSpec::new("a", 10, 4), TableSpec::new("b", 10, 8)],
            vec![16, 8],
            2,
        );
        // feature_len = (4 + 8) * 2 = 24.
        assert_eq!(m.mlp_layer_dims(), vec![24, 16, 8, 1]);
        // Consecutive-dims MACs must agree with flops_per_item.
        let dims = m.mlp_layer_dims();
        let macs: u64 = dims.windows(2).map(|w| 2 * w[0] * w[1]).sum();
        assert_eq!(macs, m.flops_per_item());
        // 2 lookups * (4 + 8) elems * 2 bytes.
        assert_eq!(m.gathered_bytes_per_item(Precision::Fixed16), 48);
        assert_eq!(m.gathered_bytes_per_item(Precision::F32), 96);
    }

    #[test]
    fn flops_match_paper_gops_figures() {
        // Paper Table 2: large model at B=2048 runs 56.98 ms and 111.89
        // GOP/s => 3.11 MOP/item. Small model: 28.18 ms, 147.65 GOP/s at
        // 72.7 k items/s => 2.03 MOP/item.
        let small = ModelSpec::small_production().flops_per_item() as f64;
        assert!((small / 2.03e6 - 1.0).abs() < 0.01, "small = {small:.3e}");
        let large = ModelSpec::large_production().flops_per_item() as f64;
        assert!((large / 3.105e6 - 1.0).abs() < 0.01, "large = {large:.3e}");
    }

    #[test]
    fn size_skew_matches_section_2_2() {
        // "some tables only consist of ~100 4-dimensional vectors, large
        // tables contain up to hundreds of millions of entries": the largest
        // table must dominate total storage.
        for m in [ModelSpec::small_production(), ModelSpec::large_production()] {
            let total = m.total_bytes(Precision::F32);
            let biggest = m.tables.iter().map(|t| t.bytes(Precision::F32)).max().unwrap();
            assert!(
                biggest as f64 > 0.3 * total as f64,
                "{}: biggest table should dominate",
                m.name
            );
            let smallest = m.tables.iter().map(|t| t.bytes(Precision::F32)).min().unwrap();
            assert!(smallest < 8 * 1024, "{}: tail tables should be tiny", m.name);
        }
    }

    #[test]
    fn dlrm_rmc2_has_4_lookups_per_table() {
        let m = ModelSpec::dlrm_rmc2(8, 16);
        m.validate().unwrap();
        assert_eq!(m.lookups_per_item(), 32);
        assert_eq!(m.feature_len(), 8 * 16 * 4);
        let m12 = ModelSpec::dlrm_rmc2(12, 64);
        assert_eq!(m12.lookups_per_item(), 48);
        // Every table fits one 256 MB HBM bank, the paper's assumption.
        for t in &m12.tables {
            assert!(t.bytes(Precision::F32) <= 256 * 1024 * 1024);
        }
    }

    #[test]
    fn fixed16_halves_storage() {
        let m = ModelSpec::small_production();
        assert_eq!(m.total_bytes(Precision::Fixed16) * 2, m.total_bytes(Precision::F32));
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut m = ModelSpec::small_production();
        m.tables[1].name = m.tables[0].name.clone();
        assert!(m.validate().is_err());

        let mut m = ModelSpec::small_production();
        m.tables[0].rows = 0;
        assert!(m.validate().is_err());

        let mut m = ModelSpec::small_production();
        m.hidden.clear();
        assert!(m.validate().is_err());

        let mut m = ModelSpec::small_production();
        m.lookups_per_table = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn table_spec_byte_math() {
        let t = TableSpec::new("t", 1000, 16);
        assert_eq!(t.row_bytes(Precision::F32), 64);
        assert_eq!(t.row_bytes(Precision::Fixed16), 32);
        assert_eq!(t.bytes(Precision::F32), 64_000);
    }
}

microrec_json::impl_json_struct!(TableSpec, required { name, rows, dim });
microrec_json::impl_json_struct!(
    ModelSpec,
    required { name, tables, dense_dim, hidden, lookups_per_table },
    default { bottom_hidden }
);
