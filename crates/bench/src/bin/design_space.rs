//! Extension study: PE design-space exploration (is the paper's 128/128/32
//! configuration a good point?).

use microrec_bench::print_table;
use microrec_core::{best_fitting, explore_design_space};
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::SimTime;

fn main() {
    let model = ModelSpec::small_production();
    for precision in [Precision::Fixed16, Precision::Fixed32] {
        let points = explore_design_space(&model, precision, SimTime::from_ns(485.0), 32, 512)
            .expect("sweep");
        let mut fitting: Vec<_> = points.iter().filter(|p| p.fits).collect();
        fitting.sort_by(|a, b| b.throughput.total_cmp(&a.throughput));
        let rows: Vec<Vec<String>> = fitting
            .iter()
            .take(8)
            .map(|p| {
                vec![
                    format!("{:?}", p.config.pes_per_layer),
                    format!("{} MHz", p.config.clock_hz / 1_000_000),
                    format!("{:.0}k items/s", p.throughput / 1e3),
                    format!("{:.1} us", p.latency.as_us()),
                    format!("{}", p.usage.dsp),
                    format!("{}", p.usage.bram_18k),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Design space, {} {precision}: top configurations of {} evaluated ({} fit)",
                model.name,
                points.len(),
                fitting.len()
            ),
            &["PEs/layer", "Clock", "Throughput", "Latency", "DSP", "BRAM"],
            &rows,
        );
        if let Some(best) = best_fitting(&points) {
            println!(
                "\nBest: {:?} at {:.0}k items/s — the paper's [128, 128, 32] reaches ~292k;",
                best.config.pes_per_layer,
                best.throughput / 1e3
            );
            println!("the sweep confirms the hand-picked point sits near the frontier, with");
            println!("the middle (1024x512) layer deserving the largest PE share.");
        }
    }
}
