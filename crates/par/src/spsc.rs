//! Bounded single-producer single-consumer ring-buffer FIFO.
//!
//! The software analogue of the paper's inter-stage FIFOs: each pipeline
//! stage owns the consumer side of its input ring and the producer side
//! of its output ring, so item *i+1* can sit buffered while item *i* is
//! still being computed downstream. Vendored with no external deps
//! (consistent with the rest of this crate): monotonic head/tail counters
//! on their own cache lines, per-slot storage, and a closed flag with
//! drain semantics — after [`SpscRing::close`], pops keep returning
//! buffered items until the ring is empty, then return `None`.
//!
//! The crate forbids `unsafe`, so slots are `Mutex<Option<T>>` rather
//! than `UnsafeCell`s. Under the SPSC contract each slot mutex is touched
//! by exactly one thread at a time (the producer before publishing the
//! tail, the consumer after observing it), so every lock acquisition is
//! uncontended — a compare-and-swap, not a syscall — and push/pop stay
//! allocation-free (proven by `tests/spsc_zero_alloc.rs`).
//!
//! Blocking variants spin briefly, then park on a condvar with a bounded
//! timeout. Wakeups are edge-triggered through a waiter count: the fast
//! path of an uncontended push/pop never takes the park lock.
//!
//! # Examples
//!
//! ```
//! use microrec_par::SpscRing;
//!
//! let ring: SpscRing<u32> = SpscRing::new(2);
//! ring.try_push(1).unwrap();
//! ring.try_push(2).unwrap();
//! assert!(ring.try_push(3).is_err()); // full
//! ring.close();
//! assert_eq!(ring.pop_blocking(), Some(1)); // drain continues after close
//! assert_eq!(ring.pop_blocking(), Some(2));
//! assert_eq!(ring.pop_blocking(), None); // closed and empty
//! ```

use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Why a push did not take the item; the item is handed back either way.
#[derive(Debug, PartialEq, Eq)]
pub enum SpscPushError<T> {
    /// The ring is at capacity (only returned by `try_push`).
    Full(T),
    /// The ring was closed; no further items will be accepted.
    Closed(T),
}

impl<T> SpscPushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            SpscPushError::Full(item) | SpscPushError::Closed(item) => item,
        }
    }
}

/// A monotonic position counter alone on its cache line, so the
/// producer's tail writes never false-share with the consumer's head.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicUsize);

/// Default spin budget before parking: long enough to catch a
/// same-instant partner on another core, short enough to waste nothing
/// measurable when the partner is descheduled (e.g. a single-core host).
/// Per-ring override via [`SpscRing::with_spin`] — a depth-1 ring feeding
/// a near-zero-work stage burns its whole budget on every handoff, so an
/// auto-tuned pipeline plan may want it smaller.
pub const DEFAULT_SPIN_ROUNDS: usize = 48;

/// Park timeout: a backstop against the (fence-guarded, so in practice
/// unreachable) lost-wakeup window; bounds any missed notify to ~200 µs.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// Bounded SPSC ring-buffer FIFO with blocking and non-blocking endpoints.
///
/// The contract is one producer thread and one consumer thread at a time
/// (either side may be handed off between threads with ordinary
/// synchronization). The implementation stays memory-safe under misuse —
/// slots are mutexes — but ordering guarantees assume SPSC use.
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Spin rounds before a blocking endpoint parks on the condvar.
    spin_rounds: usize,
    /// Next position to pop; counts monotonically, slot = head % capacity.
    head: PaddedCounter,
    /// Next position to push; counts monotonically, slot = tail % capacity.
    tail: PaddedCounter,
    closed: AtomicBool,
    park: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    pop_waiters: AtomicUsize,
    push_waiters: AtomicUsize,
}

impl<T> SpscRing<T> {
    /// Creates a ring holding up to `capacity` items (clamped to ≥ 1)
    /// with the default spin budget ([`DEFAULT_SPIN_ROUNDS`]).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_spin(capacity, DEFAULT_SPIN_ROUNDS)
    }

    /// Creates a ring with an explicit spin budget: how many
    /// `spin_loop` rounds a blocking endpoint burns before parking on
    /// the condvar. `0` parks immediately (cheapest when the partner is
    /// known to be descheduled, e.g. more stages than cores).
    #[must_use]
    pub fn with_spin(capacity: usize, spin_rounds: usize) -> Self {
        let slots: Vec<Mutex<Option<T>>> = (0..capacity.max(1)).map(|_| Mutex::new(None)).collect();
        SpscRing {
            slots: slots.into_boxed_slice(),
            spin_rounds,
            head: PaddedCounter::default(),
            tail: PaddedCounter::default(),
            closed: AtomicBool::new(false),
            park: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            pop_waiters: AtomicUsize::new(0),
            push_waiters: AtomicUsize::new(0),
        }
    }

    /// The spin budget blocking endpoints use before parking.
    #[must_use]
    pub fn spin_rounds(&self) -> usize {
        self.spin_rounds
    }

    /// Maximum number of buffered items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently buffered (racy by nature; exact when quiescent).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the ring is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`SpscRing::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Closes the ring: subsequent pushes fail with
    /// [`SpscPushError::Closed`]; pops drain the buffered items and then
    /// return `None`. Idempotent, callable from either side (or a third
    /// party such as a shutdown path).
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Take the park lock so a waiter between predicate re-check and
        // `wait` cannot miss this wakeup.
        drop(self.park.lock().unwrap_or_else(PoisonError::into_inner));
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Attempts to push without blocking.
    ///
    /// # Errors
    ///
    /// [`SpscPushError::Full`] at capacity, [`SpscPushError::Closed`]
    /// after close; the item rides back in the error.
    pub fn try_push(&self, item: T) -> Result<(), SpscPushError<T>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SpscPushError::Closed(item));
        }
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(SpscPushError::Full(item));
        }
        let mut slot =
            self.slots[tail % self.slots.len()].lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(item);
        drop(slot);
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        self.wake_poppers();
        Ok(())
    }

    /// Attempts to pop without blocking; `None` when the ring is empty
    /// (whether or not it is closed).
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = self.slots[head % self.slots.len()]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        self.wake_pushers();
        item
    }

    /// Pushes, blocking while the ring is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the ring is (or becomes) closed before
    /// space frees up.
    pub fn push_blocking(&self, mut item: T) -> Result<(), T> {
        loop {
            match self.try_push(item) {
                Ok(()) => return Ok(()),
                Err(SpscPushError::Closed(rejected)) => return Err(rejected),
                Err(SpscPushError::Full(rejected)) => item = rejected,
            }
            for _ in 0..self.spin_rounds {
                std::hint::spin_loop();
                if self.len() < self.slots.len() || self.is_closed() {
                    break;
                }
            }
            if self.len() < self.slots.len() || self.is_closed() {
                continue;
            }
            let guard = self.park.lock().unwrap_or_else(PoisonError::into_inner);
            self.push_waiters.fetch_add(1, Ordering::SeqCst);
            // Re-check under waiter registration: a pop after our last
            // try_push either sees the waiter count (and notifies under
            // the park lock we hold) or happened before the fetch_add,
            // in which case this re-check observes the freed slot.
            if self.len() >= self.slots.len() && !self.is_closed() {
                drop(self.not_full.wait_timeout(guard, PARK_TIMEOUT));
            } else {
                drop(guard);
            }
            self.push_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Pops, blocking while the ring is empty and open. Returns `None`
    /// only when the ring is closed **and** fully drained.
    pub fn pop_blocking(&self) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            if self.is_closed() {
                // One final check: the producer may have pushed between
                // our failed pop and observing the close.
                return self.try_pop();
            }
            for _ in 0..self.spin_rounds {
                std::hint::spin_loop();
                if !self.is_empty() || self.is_closed() {
                    break;
                }
            }
            if !self.is_empty() || self.is_closed() {
                continue;
            }
            let guard = self.park.lock().unwrap_or_else(PoisonError::into_inner);
            self.pop_waiters.fetch_add(1, Ordering::SeqCst);
            // Same protocol as push_blocking, mirrored.
            if self.is_empty() && !self.is_closed() {
                drop(self.not_empty.wait_timeout(guard, PARK_TIMEOUT));
            } else {
                drop(guard);
            }
            self.pop_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Wakes a parked consumer if one registered. The SeqCst fence orders
    /// our tail publication before the waiter-count read, pairing with
    /// the waiter's SeqCst `fetch_add` before its predicate re-check: one
    /// of the two sides always sees the other.
    fn wake_poppers(&self) {
        fence(Ordering::SeqCst);
        if self.pop_waiters.load(Ordering::SeqCst) > 0 {
            drop(self.park.lock().unwrap_or_else(PoisonError::into_inner));
            self.not_empty.notify_all();
        }
    }

    /// Wakes a parked producer if one registered (mirror of
    /// [`SpscRing::wake_poppers`]).
    fn wake_pushers(&self) {
        fence(Ordering::SeqCst);
        if self.push_waiters.load(Ordering::SeqCst) > 0 {
            drop(self.park.lock().unwrap_or_else(PoisonError::into_inner));
            self.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let ring: SpscRing<u64> = SpscRing::new(4);
        assert_eq!(ring.capacity(), 4);
        assert!(ring.is_empty());
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.len(), 4);
        assert!(matches!(ring.try_push(99), Err(SpscPushError::Full(99))));
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring: SpscRing<u8> = SpscRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.try_push(7).unwrap();
        assert!(ring.try_push(8).is_err());
        assert_eq!(ring.try_pop(), Some(7));
    }

    #[test]
    fn close_rejects_pushes_and_drains_pops() {
        let ring: SpscRing<u32> = SpscRing::new(8);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        ring.close();
        assert!(ring.is_closed());
        assert!(matches!(ring.try_push(3), Err(SpscPushError::Closed(3))));
        assert!(ring.push_blocking(4).is_err());
        assert_eq!(ring.pop_blocking(), Some(1));
        assert_eq!(ring.pop_blocking(), Some(2));
        assert_eq!(ring.pop_blocking(), None);
        assert_eq!(ring.pop_blocking(), None, "closed-and-empty is sticky");
    }

    #[test]
    fn spin_budget_is_configurable_and_defaults_unchanged() {
        let default: SpscRing<u8> = SpscRing::new(2);
        assert_eq!(default.spin_rounds(), DEFAULT_SPIN_ROUNDS);
        // A zero-spin ring still moves items correctly through the
        // blocking endpoints (it just parks immediately when waiting).
        let eager: SpscRing<u32> = SpscRing::with_spin(2, 0);
        assert_eq!(eager.spin_rounds(), 0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..500u32 {
                    eager.push_blocking(i).unwrap();
                }
                eager.close();
            });
            let mut next = 0u32;
            while let Some(v) = eager.pop_blocking() {
                assert_eq!(v, next);
                next += 1;
            }
            assert_eq!(next, 500);
        });
    }

    #[test]
    fn push_error_hands_the_item_back() {
        let ring: SpscRing<String> = SpscRing::new(1);
        ring.try_push("a".to_string()).unwrap();
        let back = ring.try_push("b".to_string()).unwrap_err().into_inner();
        assert_eq!(back, "b");
        ring.close();
        let back = ring.try_push("c".to_string()).unwrap_err().into_inner();
        assert_eq!(back, "c");
    }
}
