//! Synthetic model families.
//!
//! The two production presets reproduce the paper's exact models; this
//! module generates *families* of production-like models around them, for
//! scaling studies (how do lookup latency, rounds, and the Cartesian win
//! move as table count grows?) and for randomized testing. Generated
//! models keep the §2.2 shape: a few giant id tables holding most bytes, a
//! mid tier, and a long tail of tiny tables — with exact control over
//! table count and concatenated feature length.

use microrec_rng::Rng;

use crate::error::EmbeddingError;
use crate::spec::{ModelSpec, TableSpec};

/// Configuration of a synthetic production-like model.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticModelConfig {
    /// Model name.
    pub name: String,
    /// Number of embedding tables (≥ 4).
    pub tables: usize,
    /// Approximate total storage in bytes at f32 (the generator lands
    /// within a few percent).
    pub target_bytes: u64,
    /// Hidden layer widths.
    pub hidden: Vec<u32>,
    /// Lookups per table per inference.
    pub lookups_per_table: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticModelConfig {
    fn default() -> Self {
        SyntheticModelConfig {
            name: "synthetic".to_string(),
            tables: 47,
            target_bytes: 1_300_000_000,
            hidden: vec![1024, 512, 256],
            lookups_per_table: 1,
            seed: 7,
        }
    }
}

/// Generates a production-like [`ModelSpec`] from `config`.
///
/// Tier structure: ~5 % of tables are "giants" (dim 32–64) absorbing ~85 %
/// of the byte budget, ~25 % are mid tables (dim 8–16), and the remaining
/// ~70 % form the dim-4 tail with row counts log-uniform in 60–5 000.
///
/// # Errors
///
/// Returns [`EmbeddingError::InvalidMergePlan`] if `config.tables < 4` or
/// the byte budget is too small to give every table at least one row.
pub fn synthetic_model(config: &SyntheticModelConfig) -> Result<ModelSpec, EmbeddingError> {
    if config.tables < 4 {
        return Err(EmbeddingError::InvalidMergePlan(
            "synthetic models need at least 4 tables".into(),
        ));
    }
    let mut rng = Rng::seed_from_u64(config.seed);
    let n_giant = (config.tables / 20).max(1);
    let n_mid = (config.tables / 4).max(1);
    let n_tail = config.tables - n_giant - n_mid;

    let mut tables = Vec::with_capacity(config.tables);

    // Tail first (cheap, fixed dims) so we know the giants' byte budget.
    let mut spent = 0u64;
    for i in 0..n_tail {
        let rows = log_uniform(&mut rng, 60, 5_000);
        let spec = TableSpec::new(format!("{}_tail{i:03}_d4", config.name), rows, 4);
        spent += spec.bytes(crate::precision::Precision::F32);
        tables.push(spec);
    }
    for i in 0..n_mid {
        let dim = if rng.gen_bool(0.5) { 8 } else { 16 };
        let rows = log_uniform(&mut rng, 5_000, 500_000);
        let spec = TableSpec::new(format!("{}_mid{i:03}_d{dim}", config.name), rows, dim);
        spent += spec.bytes(crate::precision::Precision::F32);
        tables.push(spec);
    }
    let remaining = config.target_bytes.saturating_sub(spent);
    if remaining / (n_giant as u64) < 256 {
        return Err(EmbeddingError::InvalidMergePlan(
            "byte budget too small for the giant tier".into(),
        ));
    }
    // Split the remaining budget over the giants with a 2:1 skew.
    let mut weights: Vec<f64> = (0..n_giant).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total_w: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total_w;
    }
    for (i, w) in weights.iter().enumerate() {
        let dim = if rng.gen_bool(0.5) { 32 } else { 64 };
        let bytes = (remaining as f64 * w) as u64;
        let rows = (bytes / (u64::from(dim) * 4)).max(1);
        tables.push(TableSpec::new(format!("{}_big{i:02}_d{dim}", config.name), rows, dim));
    }

    let model = ModelSpec::new(
        config.name.clone(),
        tables,
        config.hidden.clone(),
        config.lookups_per_table,
    );
    model.validate()?;
    Ok(model)
}

/// A log-uniform sample in `[lo, hi]`.
fn log_uniform(rng: &mut Rng, lo: u64, hi: u64) -> u64 {
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    (rng.gen_range_f64(llo, lhi).exp() as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::Precision;

    #[test]
    fn default_config_resembles_small_production() {
        let model = synthetic_model(&SyntheticModelConfig::default()).unwrap();
        assert_eq!(model.num_tables(), 47);
        let bytes = model.total_bytes(Precision::F32) as f64;
        let target = 1.3e9;
        assert!((bytes - target).abs() / target < 0.1, "total {bytes:.2e}");
        // Tier skew: the biggest table dominates.
        let biggest = model.tables.iter().map(|t| t.bytes(Precision::F32)).max().unwrap() as f64;
        assert!(biggest / bytes > 0.3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_model(&SyntheticModelConfig::default()).unwrap();
        let b = synthetic_model(&SyntheticModelConfig::default()).unwrap();
        assert_eq!(a, b);
        let c =
            synthetic_model(&SyntheticModelConfig { seed: 8, ..SyntheticModelConfig::default() })
                .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn table_count_scales() {
        for tables in [8usize, 20, 100, 200] {
            let model = synthetic_model(&SyntheticModelConfig {
                tables,
                target_bytes: 2_000_000_000,
                ..SyntheticModelConfig::default()
            })
            .unwrap();
            assert_eq!(model.num_tables(), tables);
            model.validate().unwrap();
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(synthetic_model(&SyntheticModelConfig {
            tables: 3,
            ..SyntheticModelConfig::default()
        })
        .is_err());
        assert!(synthetic_model(&SyntheticModelConfig {
            target_bytes: 0,
            ..SyntheticModelConfig::default()
        })
        .is_err());
    }

    #[test]
    fn generated_models_place_on_u280_shapes() {
        // The tail must contain genuinely tiny tables (on-chip candidates).
        let model = synthetic_model(&SyntheticModelConfig::default()).unwrap();
        let tiny = model.tables.iter().filter(|t| t.bytes(Precision::F32) <= 4 * 1024).count();
        assert!(tiny >= 3, "expected several on-chip-sized tables, got {tiny}");
    }
}
