//! Feature interaction operations.
//!
//! §2.1 lists the interaction choices deep recommendation models make
//! before the top MLP: "concatenation, weighted sum, and element-wise
//! multiplication". The paper's production models concatenate (and so do
//! the engines here); the other two are provided as building blocks for
//! alternative model families, with the same shape discipline the FPGA
//! dataflow would impose (equal-dim inputs for the reducing ops).

use crate::error::DnnError;

/// How embedding vectors (and the dense branch) are combined into the top
/// MLP's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureInteraction {
    /// Concatenate all vectors (the production models' choice; output
    /// width = Σ dims).
    #[default]
    Concat,
    /// Weighted sum of equal-dim vectors (output width = dim).
    WeightedSum,
    /// Element-wise product of equal-dim vectors (output width = dim).
    ElementwiseMul,
}

/// Concatenates `vectors` (any dims).
#[must_use]
pub fn concat(vectors: &[&[f32]]) -> Vec<f32> {
    let mut out = Vec::with_capacity(vectors.iter().map(|v| v.len()).sum());
    for v in vectors {
        out.extend_from_slice(v);
    }
    out
}

/// Weighted sum `Σ wᵢ·vᵢ` of equal-dim vectors.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if dims disagree or weights don't
/// match the vector count.
pub fn weighted_sum(vectors: &[&[f32]], weights: &[f32]) -> Result<Vec<f32>, DnnError> {
    if vectors.len() != weights.len() {
        return Err(DnnError::ShapeMismatch {
            context: "weighted_sum weights",
            expected: vectors.len(),
            actual: weights.len(),
        });
    }
    let dim = vectors.first().map_or(0, |v| v.len());
    let mut out = vec![0.0f32; dim];
    for (v, &w) in vectors.iter().zip(weights) {
        if v.len() != dim {
            return Err(DnnError::ShapeMismatch {
                context: "weighted_sum dims",
                expected: dim,
                actual: v.len(),
            });
        }
        for (o, &x) in out.iter_mut().zip(*v) {
            *o += w * x;
        }
    }
    Ok(out)
}

/// Element-wise product of equal-dim vectors.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if dims disagree.
pub fn elementwise_mul(vectors: &[&[f32]]) -> Result<Vec<f32>, DnnError> {
    let dim = vectors.first().map_or(0, |v| v.len());
    let mut out = vec![1.0f32; dim];
    for v in vectors {
        if v.len() != dim {
            return Err(DnnError::ShapeMismatch {
                context: "elementwise_mul dims",
                expected: dim,
                actual: v.len(),
            });
        }
        for (o, &x) in out.iter_mut().zip(*v) {
            *o *= x;
        }
    }
    Ok(out)
}

impl FeatureInteraction {
    /// Output width for inputs of width `dim` each, `count` of them.
    #[must_use]
    pub fn output_dim(self, dim: usize, count: usize) -> usize {
        match self {
            FeatureInteraction::Concat => dim * count,
            FeatureInteraction::WeightedSum | FeatureInteraction::ElementwiseMul => dim,
        }
    }

    /// Applies the interaction with unit weights.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if the reducing interactions see
    /// unequal dims.
    pub fn apply(self, vectors: &[&[f32]]) -> Result<Vec<f32>, DnnError> {
        match self {
            FeatureInteraction::Concat => Ok(concat(vectors)),
            FeatureInteraction::WeightedSum => weighted_sum(vectors, &vec![1.0; vectors.len()]),
            FeatureInteraction::ElementwiseMul => elementwise_mul(vectors),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_any_dims() {
        let out = concat(&[&[1.0, 2.0], &[3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(concat(&[]).is_empty());
    }

    #[test]
    fn weighted_sum_math() {
        let out = weighted_sum(&[&[1.0, 2.0], &[10.0, 20.0]], &[0.5, 0.1]).unwrap();
        assert_eq!(out, vec![1.5, 3.0]);
        assert!(weighted_sum(&[&[1.0], &[1.0, 2.0]], &[1.0, 1.0]).is_err());
        assert!(weighted_sum(&[&[1.0]], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn elementwise_mul_math() {
        let out = elementwise_mul(&[&[2.0, 3.0], &[4.0, 0.5]]).unwrap();
        assert_eq!(out, vec![8.0, 1.5]);
        assert!(elementwise_mul(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(elementwise_mul(&[]).unwrap().is_empty());
    }

    #[test]
    fn interaction_dims_and_apply() {
        assert_eq!(FeatureInteraction::Concat.output_dim(4, 8), 32);
        assert_eq!(FeatureInteraction::WeightedSum.output_dim(4, 8), 4);
        assert_eq!(FeatureInteraction::ElementwiseMul.output_dim(4, 8), 4);
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        assert_eq!(FeatureInteraction::Concat.apply(&[&a, &b]).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(FeatureInteraction::WeightedSum.apply(&[&a, &b]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(FeatureInteraction::ElementwiseMul.apply(&[&a, &b]).unwrap(), vec![3.0, 8.0]);
        assert_eq!(FeatureInteraction::default(), FeatureInteraction::Concat);
    }
}
