//! End-to-end tests for the micro-batching serving runtime: admission,
//! clean drain, bit-identity with sequential prediction, and per-item
//! failure isolation.

use microrec_core::{AdmissionPolicy, MicroRec, RuntimeConfig, RuntimeError, ServingRuntime};
use microrec_embedding::ModelSpec;
use microrec_workload::{QueryGenConfig, RequestTrace};

fn model() -> ModelSpec {
    ModelSpec::dlrm_rmc2(4, 4)
}

fn queries(model: &ModelSpec, n: usize) -> Vec<Vec<u64>> {
    RequestTrace::generate(model, 10_000.0, n, QueryGenConfig::default())
        .expect("trace")
        .queries()
        .to_vec()
}

fn start(model: &ModelSpec, config: RuntimeConfig) -> ServingRuntime {
    ServingRuntime::start(MicroRec::builder(model.clone()).seed(7), config).expect("runtime")
}

#[test]
fn drain_on_shutdown_loses_nothing() {
    let model = model();
    let queries = queries(&model, 300);
    let mut runtime = start(
        &model,
        RuntimeConfig { workers: 2, max_batch: 16, max_wait_us: 5_000, ..Default::default() },
    );
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.admitted, 300);
    assert_eq!(snapshot.completed, 300);
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.rejected, 0);
    for p in pending {
        p.wait().expect("every admitted request must complete");
    }
    assert!(snapshot.mean_latency_us > 0.0);
    assert!(snapshot.latency.p50_us <= snapshot.latency.p999_us);
}

#[test]
fn batched_results_are_bit_identical_to_sequential() {
    let model = model();
    let queries = queries(&model, 64);
    let mut sequential = MicroRec::builder(model.clone()).seed(7).build().expect("engine");
    let expected: Vec<f32> =
        queries.iter().map(|q| sequential.predict(q).expect("predict")).collect();

    let mut runtime = start(
        &model,
        RuntimeConfig { workers: 2, max_batch: 8, max_wait_us: 1_000, ..Default::default() },
    );
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for (p, e) in pending.into_iter().zip(&expected) {
        let got = p.wait().expect("predict");
        assert_eq!(got.to_bits(), e.to_bits(), "batched result diverged from sequential");
    }
    runtime.shutdown();
}

#[test]
fn reject_policy_counts_drops_and_completes_the_rest() {
    let model = model();
    let queries = queries(&model, 50);
    // A tiny queue with one slow-closing worker forces overflow.
    let mut runtime = start(
        &model,
        RuntimeConfig {
            workers: 1,
            max_batch: 4,
            max_wait_us: 200_000,
            queue_depth: 2,
            admission: AdmissionPolicy::Reject,
            ..RuntimeConfig::default()
        },
    );
    let mut pending = Vec::new();
    let mut rejected = 0u64;
    for q in &queries {
        match runtime.submit(q.clone()) {
            Ok(p) => pending.push(p),
            Err(RuntimeError::Rejected) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "burst of 50 into depth-2 queue must drop some");
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.admitted + snapshot.rejected, 50);
    assert_eq!(snapshot.rejected, rejected);
    assert_eq!(snapshot.completed, snapshot.admitted);
    assert!((snapshot.drop_rate() - rejected as f64 / 50.0).abs() < 1e-12);
    for p in pending {
        p.wait().expect("admitted requests must still complete");
    }
}

#[test]
fn block_policy_admits_everything_despite_tiny_queue() {
    let model = model();
    let queries = queries(&model, 100);
    let mut runtime = start(
        &model,
        RuntimeConfig {
            workers: 1,
            max_batch: 4,
            max_wait_us: 500,
            queue_depth: 4,
            admission: AdmissionPolicy::Block,
            ..RuntimeConfig::default()
        },
    );
    let pending: Vec<_> = queries
        .iter()
        .map(|q| runtime.submit(q.clone()).expect("blocking admission never rejects"))
        .collect();
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.admitted, 100);
    assert_eq!(snapshot.completed, 100);
    assert_eq!(snapshot.rejected, 0);
    for p in pending {
        p.wait().expect("predict");
    }
}

#[test]
fn size_closes_dominate_under_saturation() {
    let model = model();
    let queries = queries(&model, 256);
    // Submit everything before workers can drain: batches fill to max_batch.
    let mut runtime = start(
        &model,
        RuntimeConfig {
            workers: 1,
            max_batch: 32,
            max_wait_us: 50_000,
            queue_depth: 1024,
            admission: AdmissionPolicy::Block,
            ..RuntimeConfig::default()
        },
    );
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    let snapshot = runtime.shutdown();
    for p in pending {
        p.wait().expect("predict");
    }
    assert_eq!(snapshot.completed, 256);
    assert!(snapshot.mean_batch_size > 1.0, "mean batch {}", snapshot.mean_batch_size);
    assert!(
        snapshot.size_closes >= snapshot.deadline_closes,
        "saturated load should close mostly on size: size={} deadline={}",
        snapshot.size_closes,
        snapshot.deadline_closes,
    );
}

#[test]
fn wrong_arity_is_rejected_at_submit() {
    let model = model();
    let runtime = start(&model, RuntimeConfig::default());
    let err = runtime.submit(vec![1, 2, 3]).expect_err("arity mismatch must fail fast");
    match err {
        RuntimeError::BadQuery { expected, actual } => {
            assert_eq!(actual, 3);
            assert!(expected > 0 && expected != 3);
        }
        other => panic!("expected BadQuery, got {other}"),
    }
}

#[test]
fn bad_row_fails_alone_and_batch_mates_survive() {
    let model = model();
    let queries = queries(&model, 8);
    let mut sequential = MicroRec::builder(model.clone()).seed(7).build().expect("engine");
    let expected: Vec<f32> =
        queries.iter().map(|q| sequential.predict(q).expect("predict")).collect();

    let mut runtime = start(
        &model,
        RuntimeConfig { workers: 1, max_batch: 16, max_wait_us: 20_000, ..Default::default() },
    );
    // Interleave one poisoned query (out-of-range row) with valid ones so
    // they land in the same batch.
    let arity = queries[0].len();
    let mut pending = Vec::new();
    for q in &queries[..4] {
        pending.push((true, runtime.submit(q.clone()).expect("submit")));
    }
    pending.push((false, runtime.submit(vec![u64::MAX; arity]).expect("submit")));
    for q in &queries[4..] {
        pending.push((true, runtime.submit(q.clone()).expect("submit")));
    }
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.failed, 1, "exactly the poisoned request fails");
    assert_eq!(snapshot.completed, 8);

    let mut good = expected.iter();
    for (valid, p) in pending {
        let result = p.wait();
        if valid {
            let got = result.expect("valid batch-mates must survive");
            assert_eq!(got.to_bits(), good.next().unwrap().to_bits());
        } else {
            match result.expect_err("poisoned request must fail") {
                RuntimeError::Failed(_) => {}
                other => panic!("expected Failed, got {other}"),
            }
        }
    }
}

#[test]
fn submit_after_shutdown_reports_shutting_down() {
    let model = model();
    let queries = queries(&model, 1);
    let mut runtime = start(&model, RuntimeConfig::default());
    runtime.shutdown();
    match runtime.submit(queries[0].clone()) {
        Err(RuntimeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn cache_enabled_runtime_reports_lookup_stats() {
    use microrec_embedding::RowFormat;
    let model = model();
    let queries = queries(&model, 200);
    let lookups_per_query = queries[0].len() as u64;
    let mut sequential = MicroRec::builder(model.clone()).seed(7).build().expect("engine");
    let expected: Vec<f32> =
        queries.iter().map(|q| sequential.predict(q).expect("predict")).collect();

    // f32 arena + hot-row cache: bit-identical to the legacy path by
    // construction, so the stats come for free, not at accuracy cost.
    let builder =
        MicroRec::builder(model.clone()).seed(7).embedding_arena(RowFormat::F32).hot_row_cache(512);
    let mut runtime = ServingRuntime::start(
        builder,
        RuntimeConfig { workers: 2, max_batch: 8, max_wait_us: 1_000, ..Default::default() },
    )
    .expect("runtime");
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for (p, e) in pending.into_iter().zip(&expected) {
        let got = p.wait().expect("predict");
        assert_eq!(got.to_bits(), e.to_bits(), "arena+cache runtime diverged from legacy");
    }
    // Workers publish counter deltas per batch; shutdown joins them, so
    // the aggregate must account for every lookup served.
    runtime.shutdown();
    let stats = runtime.lookup_stats().expect("cache-enabled runtime exposes lookup stats");
    assert_eq!(stats.format, "f32");
    assert_eq!(stats.cache_rows, 512);
    assert_eq!(
        stats.hits + stats.misses,
        queries.len() as u64 * lookups_per_query,
        "every embedding lookup must be counted as a hit or a miss"
    );
    assert!(stats.hits > 0, "repeated rows in the trace must hit the cache");
    assert_eq!(stats.per_table_hits.iter().sum::<u64>(), stats.hits);
    assert_eq!(stats.per_table_misses.iter().sum::<u64>(), stats.misses);
    assert!(stats.bytes_from_memory > 0);
    assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);

    // A runtime without the fast path reports no lookup stats.
    let mut plain = start(&model, RuntimeConfig::default());
    plain.shutdown();
    assert!(plain.lookup_stats().is_none());
}
