//! # microrec-cpu
//!
//! The CPU baseline of the MicroRec reproduction (Jiang et al., MLSys
//! 2021): a calibrated analytical timing model of the TensorFlow-Serving
//! deployment the paper benchmarks against (16 vCPU, AVX2, 8-channel
//! DDR4), plus a functional `f32` reference engine that really executes
//! recommendation inference on the host and anchors numerical correctness.
//!
//! ## Example
//!
//! ```
//! use microrec_cpu::CpuTimingModel;
//! use microrec_embedding::ModelSpec;
//!
//! let model = ModelSpec::small_production();
//! let cpu = CpuTimingModel::aws_16vcpu();
//! // Paper Table 2: 28.18 ms at batch 2048.
//! let t = cpu.total_time(&model, 2048);
//! assert!((t.as_ms() - 28.18).abs() / 28.18 < 0.15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod opgraph;
mod timing_model;

pub use engine::{CpuReferenceEngine, QueryBatch};
pub use error::CpuError;
pub use opgraph::{Op, OpGraph, OpKind};
pub use timing_model::{facebook_rmc2_baseline_lookup, CpuTimingModel, EMBEDDING_OP_TYPES};
