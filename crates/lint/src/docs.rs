//! The one table describing every lint: invariant, rationale, and the
//! allow-comment grammar. `--explain <id>` prints from here, and the
//! README's lint table is generated from the same entries
//! ([`render_markdown_table`]), so the CLI and the docs cannot drift.

use crate::config::MALFORMED_ALLOW;

/// Documentation for one lint id.
#[derive(Debug, Clone, Copy)]
pub struct LintDoc {
    pub id: &'static str,
    /// The invariant the lint enforces, one line.
    pub invariant: &'static str,
    /// Why the MicroRec reproduction needs it.
    pub rationale: &'static str,
    /// A well-formed escape-hatch example (empty when not allowable).
    pub allow_example: &'static str,
}

/// Every documented lint, in [`LINT_IDS`] order plus `malformed-allow`.
pub const LINT_DOCS: [LintDoc; 12] = [
    LintDoc {
        id: "hot-path-alloc",
        invariant: "designated hot functions perform no heap allocation (Vec::new, vec!, .to_vec(), .clone(), format!, Box::new, .collect(), String::from)",
        rationale: "the batched GEMM and lookup paths are measured in microseconds; one allocation is a double-digit-percent latency regression and a jitter source",
        allow_example: "// lint: allow(hot-path-alloc) one-time buffer, reused across batches",
    },
    LintDoc {
        id: "no-panic-serving",
        invariant: "the serving runtime never calls .unwrap()/.expect()/panic!/todo!/unimplemented! outside tests",
        rationale: "a panic in a worker tears down the whole pipeline; serving code must degrade by returning errors",
        allow_example: "// lint: allow(no-panic-serving) index bounded by the loop above",
    },
    LintDoc {
        id: "unsafe-audit",
        invariant: "every unsafe block/fn/impl carries an adjacent // SAFETY: comment (or a # Safety doc section)",
        rationale: "the few unsafe sites (aligned loads, FFI) each need a written argument a reviewer can check",
        allow_example: "// lint: allow(unsafe-audit) argument lives in the module header",
    },
    LintDoc {
        id: "determinism",
        invariant: "bit-identity crates avoid HashMap/HashSet iteration order, Instant/SystemTime, and thread_rng",
        rationale: "placement and memory simulation must reproduce bit-identically across runs and machines",
        allow_example: "// lint: allow(determinism) map is never iterated, only probed",
    },
    LintDoc {
        id: "condvar-loop",
        invariant: "Condvar::wait/wait_timeout sits inside a while/loop predicate re-check",
        rationale: "spurious wakeups are legal; a bare wait is a lost-wakeup deadlock seed",
        allow_example: "// lint: allow(condvar-loop) single-shot latch, predicate set exactly once",
    },
    LintDoc {
        id: "transitive-hot-path-alloc",
        invariant: "no function reachable from a designated hot function allocates (reported with the full call chain)",
        rationale: "the direct lint stops at the function boundary; an allocation buried two helpers deep costs the same microseconds",
        allow_example: "// lint: allow(transitive-hot-path-alloc) cold error path, hit once per run",
    },
    LintDoc {
        id: "transitive-panic",
        invariant: "no function reachable from the serving runtime can panic (reported with the full call chain)",
        rationale: "a helper's .unwrap() in another crate tears down a worker just as surely as one written inline",
        allow_example: "// lint: allow(transitive-panic) arithmetic cannot overflow: bounded by config",
    },
    LintDoc {
        id: "lock-order",
        invariant: "the lock-acquisition graph (label held -> label acquired, including through calls) has no cycles",
        rationale: "two threads taking the same pair of mutexes in opposite orders is the classic ABBA deadlock; the runtime/pool/router web has enough locks to get this wrong silently",
        allow_example: "// lint: allow(lock-order) both orders run under the scheduler big lock",
    },
    LintDoc {
        id: "blocking-under-lock",
        invariant: "no blocking operation (SPSC blocking push/pop, condvar wait on another lock's guard, thread::park/sleep, JoinHandle::join) runs while a mutex guard is held, directly or via callees",
        rationale: "a thread that blocks while holding a lock stalls every other thread that needs it; with rings in the middle this becomes a distributed deadlock",
        allow_example: "// lint: allow(blocking-under-lock) guard protects only this thread's slot",
    },
    LintDoc {
        id: "ring-protocol",
        invariant: "ring endpoints follow the close-then-drain protocol: no push after close, no bare try_pop loop without an is_closed check or exit, no reorder-buffer insert without an occupancy check",
        rationale: "the SPSC rings shut down by close-then-drain; protocol violations manifest as lost items or spin-forever consumers only under load",
        allow_example: "// lint: allow(ring-protocol) push races close by design: items dropped on shutdown",
    },
    LintDoc {
        id: "unused-allow",
        invariant: "every // lint: allow(<id>) comment suppresses at least one finding",
        rationale: "an allow that no longer matches anything is a stale exemption: the code it justified is gone, but the hole in enforcement remains",
        allow_example: "// lint: allow(unused-allow) kept for the cfg(feature) variant below",
    },
    LintDoc {
        id: MALFORMED_ALLOW,
        invariant: "every lint: allow comment parses as allow(<known-id>) <non-empty reason>",
        rationale: "a typoed escape hatch must fail loudly, never silently not-suppress (or worse, silently suppress)",
        allow_example: "",
    },
];

/// Doc entry for one lint id.
#[must_use]
pub fn explain(id: &str) -> Option<&'static LintDoc> {
    LINT_DOCS.iter().find(|d| d.id == id)
}

/// The README lint table, generated from [`LINT_DOCS`].
#[must_use]
pub fn render_markdown_table() -> String {
    let mut out = String::from("| id | invariant |\n|----|-----------|\n");
    for doc in &LINT_DOCS {
        out.push_str(&format!("| `{}` | {} |\n", doc.id, doc.invariant));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LINT_IDS;

    #[test]
    fn every_lint_id_is_documented() {
        for id in LINT_IDS {
            assert!(explain(id).is_some(), "missing doc for `{id}`");
        }
        assert!(explain(MALFORMED_ALLOW).is_some());
        assert_eq!(LINT_DOCS.len(), LINT_IDS.len() + 1);
    }

    #[test]
    fn allow_examples_parse_under_the_allow_grammar() {
        for doc in &LINT_DOCS {
            if doc.allow_example.is_empty() {
                continue;
            }
            let rest = doc
                .allow_example
                .trim_start_matches('/')
                .trim_start()
                .strip_prefix("lint:")
                .and_then(|r| r.trim_start().strip_prefix("allow"))
                .and_then(|r| r.trim_start().strip_prefix('('))
                .expect("example must match the grammar");
            let close = rest.find(')').expect("unterminated id");
            assert_eq!(rest[..close].trim(), doc.id);
            assert!(!rest[close + 1..].trim().is_empty(), "example needs a reason");
        }
    }
}
