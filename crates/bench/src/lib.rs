//! # microrec-bench
//!
//! Benchmark harness for the MicroRec reproduction (Jiang et al., MLSys
//! 2021). Each binary regenerates one table or figure of the paper,
//! printing the paper's published values next to the model's output:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3` | Figure 3 — embedding layer share of CPU inference |
//! | `table1` | Table 1 — model specifications |
//! | `table2` | Table 2 — end-to-end CPU vs FPGA |
//! | `table3` | Table 3 — Cartesian benefit and overhead |
//! | `table4` | Table 4 — embedding layer CPU vs HBM vs HBM+Cartesian |
//! | `table5` | Table 5 — DLRM-RMC2 lookup latency sweep |
//! | `table6` | Table 6 — FPGA resource utilization |
//! | `fig7`  | Figure 7 — throughput vs lookup rounds |
//! | `cost`  | Appendix — AWS cost comparison |
//! | `ablation` | Extra — allocator / merge / precision ablations |
//!
//! The Criterion benches (`cargo bench -p microrec-bench`) measure the
//! *host-executed* substrate: real Cartesian merges, catalog gathers,
//! blocked GEMM, and placement search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::fmt::Display;

/// Prints a Markdown-style table: a header row, a separator, then rows.
pub fn print_table<H: Display>(title: &str, headers: &[H], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let header_strings: Vec<String> = headers.iter().map(ToString::to_string).collect();
    let mut widths: Vec<usize> = header_strings.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        format!("| {} |", padded.join(" | "))
    };
    println!("{}", fmt_row(&header_strings));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a ratio as `12.3x`.
#[must_use]
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats `model` vs `paper` with a deviation percentage.
#[must_use]
pub fn fmt_vs_paper(model: f64, paper: f64) -> String {
    let dev = (model - paper) / paper * 100.0;
    format!("{model:.3} (paper {paper:.3}, {dev:+.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_speedup(4.19), "4.19x");
        let s = fmt_vs_paper(110.0, 100.0);
        assert!(s.contains("+10.0%"), "{s}");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
