//! Cross-thread tests for the SPSC ring FIFO: seeded producer/consumer
//! stress at awkward capacities, wraparound, blocking handoff, and
//! drop-mid-stream drain semantics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use microrec_par::{SpscPushError, SpscRing};

/// Minimal xorshift for deterministic jitter — the test must not depend
/// on the OS scheduler alone to exercise full/empty transitions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn seeded_stress_across_capacities() {
    // Capacity 1 (lockstep), 2, odd, and power-of-two; the monotonic
    // counters wrap the slot index many times over at n = 5000.
    for (capacity, seed) in [(1usize, 0xA11CE), (2, 0xB0B), (7, 0x5EED), (64, 0xFEED)] {
        let ring: SpscRing<u64> = SpscRing::new(capacity);
        let n = 5000u64;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut rng = Rng(seed as u64 | 1);
                for i in 0..n {
                    // Mix try- and blocking pushes, with occasional yields
                    // so the consumer sees both full and empty rings.
                    if rng.next().is_multiple_of(4) {
                        let mut item = i;
                        loop {
                            match ring.try_push(item) {
                                Ok(()) => break,
                                Err(SpscPushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(SpscPushError::Closed(_)) => panic!("ring closed early"),
                            }
                        }
                    } else {
                        ring.push_blocking(i).expect("ring closed early");
                    }
                    if rng.next().is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                }
                ring.close();
            });
            let consumer = scope.spawn(|| {
                let mut rng = Rng(seed as u64 ^ 0xDEAD_BEEF);
                let mut got = Vec::new();
                loop {
                    let item = if rng.next().is_multiple_of(4) {
                        match ring.try_pop() {
                            Some(item) => Some(item),
                            None if ring.is_closed() && ring.is_empty() => None,
                            None => {
                                std::thread::yield_now();
                                continue;
                            }
                        }
                    } else {
                        ring.pop_blocking()
                    };
                    match item {
                        Some(item) => got.push(item),
                        None => break,
                    }
                    if rng.next().is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                }
                got
            });
            let got = consumer.join().expect("consumer");
            let want: Vec<u64> = (0..n).collect();
            assert_eq!(got, want, "capacity {capacity}: items lost, duplicated, or reordered");
        });
    }
}

#[test]
fn wraparound_preserves_order_at_every_phase() {
    // Walk the head/tail counters through every slot-index phase of a
    // small ring: push 3 / pop 3 repeatedly over a capacity-4 ring.
    let ring: SpscRing<u32> = SpscRing::new(4);
    let mut next_in = 0u32;
    let mut next_out = 0u32;
    for _ in 0..100 {
        for _ in 0..3 {
            ring.try_push(next_in).unwrap();
            next_in += 1;
        }
        for _ in 0..3 {
            assert_eq!(ring.try_pop(), Some(next_out));
            next_out += 1;
        }
    }
    assert!(ring.is_empty());
}

#[test]
fn blocking_handoff_full_and_empty() {
    // A capacity-1 ring forces the producer to block on every push and
    // the consumer to block on every pop.
    let ring: SpscRing<u64> = SpscRing::new(1);
    let n = 500u64;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..n {
                ring.push_blocking(i).unwrap();
            }
            ring.close();
        });
        let consumer = scope.spawn(|| {
            let mut got = Vec::new();
            while let Some(item) = ring.pop_blocking() {
                got.push(item);
            }
            got
        });
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    });
}

/// An item whose drop is observable, to pin down who destroys what when
/// a ring is dropped mid-stream.
#[derive(Debug)]
struct Tracked(Arc<AtomicUsize>);

impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn drop_mid_stream_releases_undrained_items() {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let ring: SpscRing<Tracked> = SpscRing::new(8);
        for _ in 0..5 {
            ring.try_push(Tracked(Arc::clone(&drops))).unwrap();
        }
        // Two consumed items die with their bindings; three stay buffered.
        drop(ring.try_pop());
        drop(ring.try_pop());
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        assert_eq!(ring.len(), 3);
    }
    // Dropping the ring itself released the three buffered items.
    assert_eq!(drops.load(Ordering::SeqCst), 5);
}

#[test]
fn close_then_drain_hands_over_every_buffered_item() {
    // Producer dies (closes) with items still buffered: the consumer must
    // receive all of them, then see the end of stream.
    let ring: SpscRing<u32> = SpscRing::new(16);
    for i in 0..10 {
        ring.try_push(i).unwrap();
    }
    ring.close();
    let mut got = Vec::new();
    while let Some(item) = ring.pop_blocking() {
        got.push(item);
    }
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn close_wakes_a_blocked_consumer_and_producer() {
    // Consumer parked on an empty ring.
    let ring: Arc<SpscRing<u8>> = Arc::new(SpscRing::new(4));
    let r = Arc::clone(&ring);
    let waiter = std::thread::spawn(move || r.pop_blocking());
    std::thread::sleep(std::time::Duration::from_millis(10));
    ring.close();
    assert_eq!(waiter.join().unwrap(), None);

    // Producer parked on a full ring.
    let ring: Arc<SpscRing<u8>> = Arc::new(SpscRing::new(1));
    ring.try_push(1).unwrap();
    let r = Arc::clone(&ring);
    let waiter = std::thread::spawn(move || r.push_blocking(2));
    std::thread::sleep(std::time::Duration::from_millis(10));
    ring.close();
    assert_eq!(waiter.join().unwrap(), Err(2));
}
