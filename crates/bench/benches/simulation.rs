//! Simulator-infrastructure benchmarks: event-driven pipeline flow,
//! quantized inference, operator-graph execution, and the entry cache.

use std::time::Duration;

use microrec_accel::{AccelConfig, FlowSim, Pipeline};
use microrec_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use microrec_cpu::{CpuReferenceEngine, OpGraph};
use microrec_dnn::QuantizedMlp;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::{AddressedRead, BankId, CacheConfig, EntryCache, MemoryKind, SimTime};

fn bench_flow_sim(c: &mut Criterion) {
    let model = ModelSpec::small_production();
    let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
    let pipe = Pipeline::build(&model, &cfg, SimTime::from_ns(485.0)).unwrap();
    let sim = FlowSim::new(&pipe, 2);
    let mut group = c.benchmark_group("flow_sim");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    for n in [100usize, 1000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("saturated_{n}"), |b| {
            b.iter(|| sim.run_saturated(black_box(n)))
        });
    }
    group.finish();
}

fn bench_quantized_mlp(c: &mut Criterion) {
    let model = ModelSpec::dlrm_rmc2(8, 16);
    let engine = CpuReferenceEngine::build(&model, 3).unwrap();
    let cal: Vec<Vec<f32>> = (0..4)
        .map(|i| (0..512).map(|j| ((i * 512 + j) as f32 * 0.01).sin() * 0.5).collect())
        .collect();
    let q8 = QuantizedMlp::quantize(engine.mlp(), 8, &cal).unwrap();
    let x = cal[0].clone();
    let mut group = c.benchmark_group("quantized_mlp");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));
    group.bench_function("int8_forward", |b| b.iter(|| q8.predict_ctr(black_box(&x)).unwrap()));
    group.bench_function("f32_forward", |b| {
        b.iter(|| engine.mlp().predict_ctr(black_box(&x)).unwrap())
    });
    group.finish();
}

fn bench_opgraph(c: &mut Criterion) {
    let mut model = ModelSpec::dlrm_rmc2(8, 16);
    model.lookups_per_table = 1;
    let engine = CpuReferenceEngine::build(&model, 3).unwrap();
    let graph = OpGraph::full_inference(&model);
    let query: Vec<u64> = (0..8).map(|i| i * 3_001).collect();
    let mut group = c.benchmark_group("opgraph");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(graph.invocation_count() as u64));
    group.bench_function("execute_full_graph", |b| {
        b.iter(|| graph.execute(engine.catalog(), engine.mlp(), black_box(&query)).unwrap())
    });
    group.finish();
}

fn bench_entry_cache(c: &mut Criterion) {
    let mut cache = EntryCache::new(CacheConfig::recnmp_1mb());
    let reads: Vec<AddressedRead> = (0..1024u64)
        .map(|i| {
            AddressedRead::new(
                BankId::new(MemoryKind::Ddr, 0),
                (i % 300) * 64 + (i % 7) * 1_000_000,
                64,
            )
        })
        .collect();
    let mut group = c.benchmark_group("entry_cache");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(reads.len() as u64));
    group.bench_function("access_1024", |b| {
        b.iter(|| {
            for r in &reads {
                black_box(cache.access(r));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flow_sim, bench_quantized_mlp, bench_opgraph, bench_entry_cache);
criterion_main!(benches);
