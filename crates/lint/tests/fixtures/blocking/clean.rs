//! The guard is released (scope exit) before the blocking call: no
//! contending thread can stall on `items` during the sleep.

impl Backoff {
    pub fn drain_one(&self) -> Option<u32> {
        let out = {
            let mut g = lock_or_recover(&self.items);
            g.pop()
        };
        std::thread::sleep(self.pause);
        out
    }
}
