//! Regenerates Figure 7: end-to-end throughput as the number of embedding
//! lookup rounds grows (robustness of the pipelined design).

use microrec_bench::print_table;
use microrec_core::MicroRec;
use microrec_embedding::{ModelSpec, Precision};

fn main() {
    let mut rows = Vec::new();
    let mut knees = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for precision in [Precision::Fixed16, Precision::Fixed32] {
            let engine =
                MicroRec::builder(model.clone()).precision(precision).build().expect("engine");
            let pipe = engine.pipeline();
            let base = pipe.throughput_items_per_sec();
            let mut knee = None;
            let mut cells = vec![format!("{} {precision}", model.name)];
            for rounds in 1..=8u32 {
                let t = pipe.with_lookup_rounds(rounds).throughput_items_per_sec();
                if knee.is_none() && t < base * 0.999 {
                    knee = Some(rounds);
                }
                cells.push(format!("{:.0}k", t / 1e3));
            }
            knees.push((model.name.clone(), precision, knee));
            rows.push(cells);
        }
    }
    let mut headers = vec!["Config".to_string()];
    headers.extend((1..=8).map(|r| format!("{r} rounds")));
    print_table("Figure 7: Throughput (items/s) vs lookup rounds", &headers, &rows);

    println!();
    for (model, precision, knee) in knees {
        match knee {
            Some(k) => println!("{model} {precision}: throughput degrades from {k} rounds"),
            None => println!("{model} {precision}: flat across the whole sweep"),
        }
    }
    println!("\nPaper: the smaller and larger models tolerate 6 and 4 rounds of");
    println!("lookups at fixed-16 before end-to-end throughput degrades at all.");
}
