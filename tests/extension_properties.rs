//! Randomized tests over the extension modules: sharding, hybrid routing,
//! the DRAM request scheduler, and per-tensor quantization. Cases come from
//! a seeded RNG so every run is reproducible.

use microrec_rng::Rng;

use microrec_core::{simulate_hybrid_serving, HybridConfig, MicroRec, MicroRecCluster};
use microrec_cpu::{CpuReferenceEngine, CpuTimingModel};
use microrec_embedding::{ModelSpec, Precision, TableSpec};
use microrec_memsim::{schedule_channel, BankRequest, DetailedTiming, SchedulerPolicy, SimTime};

/// Sharded engines predict exactly what the monolithic reference does, for
/// any per-device budget that admits the largest table.
#[test]
fn cluster_is_shard_invariant() {
    let mut rng = Rng::seed_from_u64(0x5A4D);
    for _ in 0..16 {
        let budget_tables = rng.gen_range_usize(1, 8);
        let seed = rng.next_u64();
        let model = ModelSpec::new(
            "prop-shard",
            (0..8).map(|i| TableSpec::new(format!("t{i}"), 500 + 50 * i as u64, 4)).collect(),
            vec![32, 16],
            1,
        );
        // Budget sized to hold `budget_tables` of the largest tables.
        let max_table = model.tables.iter().map(|t| t.bytes(Precision::F32)).max().unwrap();
        let budget = max_table * budget_tables as u64;
        let reference = CpuReferenceEngine::build(&model, seed).unwrap();
        let mut cluster = MicroRecCluster::build(&model, budget, Precision::F32, seed).unwrap();
        let q: Vec<u64> = (0..8).map(|j| (seed.wrapping_add(j * 31)) % 500).collect();
        let a = cluster.predict(&q).unwrap();
        let b = reference.predict(&q).unwrap();
        assert!((a - b).abs() < 1e-6, "{a} vs {b} at {} devices", cluster.devices());
    }
}

/// The hybrid router serves every query exactly once, whatever the load,
/// and its latency stats are well-formed.
#[test]
fn hybrid_router_conserves_queries() {
    let mut rng = Rng::seed_from_u64(0x4B2D);
    let model = ModelSpec::dlrm_rmc2(4, 4);
    let engine = MicroRec::builder(model.clone()).seed(1).build().unwrap();
    let cpu = CpuTimingModel::aws_16vcpu();
    for _ in 0..8 {
        let count = rng.gen_range_usize(10, 200);
        let backlog_us = rng.gen_range_u64(1, 5_000);
        let mut t = SimTime::ZERO;
        let arrivals: Vec<SimTime> = (0..count)
            .map(|_| {
                t += SimTime::from_ps(rng.gen_range_u64(1, 40_000_000) * 1000);
                t
            })
            .collect();
        let config = HybridConfig {
            backlog_limit: SimTime::from_us(backlog_us as f64),
            ..Default::default()
        };
        let report = simulate_hybrid_serving(
            &engine,
            &cpu,
            &model,
            &config,
            &arrivals,
            SimTime::from_ms(25.0),
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&report.fpga_fraction));
        assert!((0.0..=1.0).contains(&report.combined.sla_hit_rate));
        assert!(report.combined.latency.p50 <= report.combined.latency.p99);
        assert!(report.combined.latency.p99 <= report.combined.latency.max);
    }
}

/// The bank-parallel scheduler is never slower than the serial AXI
/// controller, and both produce per-request completions bounded below by a
/// single isolated access.
#[test]
fn scheduler_orderings() {
    let mut rng = Rng::seed_from_u64(0x5EDC);
    let timing = DetailedTiming::hbm2();
    for _ in 0..40 {
        let count = rng.gen_range_usize(1, 40);
        let requests: Vec<BankRequest> = (0..count)
            .map(|i| BankRequest {
                bank: rng.gen_range_usize(0, 16),
                row: i as u64,
                bytes: rng.gen_range_u64(1, 512) as u32,
            })
            .collect();
        let serial = schedule_channel(&timing, SchedulerPolicy::SerialAxi, &requests);
        let parallel = schedule_channel(&timing, SchedulerPolicy::BankParallel, &requests);
        assert!(parallel.makespan <= serial.makespan);
        let min_single = requests
            .iter()
            .map(|r| timing.t_controller + timing.t_rcd + timing.t_cas + timing.burst_time(r.bytes))
            .min()
            .unwrap();
        assert!(parallel.completions[0] >= min_single.saturating_sub(SimTime::from_ns(1.0)));
        assert_eq!(serial.completions.len(), requests.len());
    }
}

/// Quantized-storage row bytes halve exactly, for any table shape.
#[test]
fn storage_precision_halves() {
    let mut rng = Rng::seed_from_u64(0x57A6);
    for _ in 0..200 {
        let rows = rng.gen_range_u64(1, 100_000);
        let dim = rng.gen_range_u64(1, 128) as u32;
        let t = TableSpec::new("t", rows, dim);
        assert_eq!(t.bytes(Precision::F32), 2 * t.bytes(Precision::Fixed16));
        assert_eq!(t.bytes(Precision::F32), t.bytes(Precision::Fixed32));
    }
}
