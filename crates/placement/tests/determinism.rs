//! Cross-process determinism: the Algorithm-1 heuristic search must be
//! byte-identical across two *fresh processes*, not just two calls.
//! Per-process hasher seeds (`RandomState`), ASLR, and environment
//! layout are exactly the perturbations an in-process repeat cannot see
//! — and exactly what the `determinism` lint (no `HashMap`, no clocks,
//! no OS-seeded RNG in `microrec-placement`) exists to rule out.
//!
//! The test re-executes its own binary in a child mode (selected by an
//! environment variable) that prints a digest of the full search
//! outcome, runs two children with deliberately different environments,
//! and requires all digests — both children's and its own — to agree.

use std::process::Command;

use microrec_embedding::{synthetic_model, Precision, SyntheticModelConfig};
use microrec_memsim::MemoryConfig;
use microrec_placement::{
    heuristic_search, heuristic_search_with_traffic, HeuristicOptions, TrafficProfile,
};

const CHILD_ENV: &str = "MICROREC_DETERMINISM_CHILD";
const TAG_ENV: &str = "MICROREC_DETERMINISM_TAG";

/// FNV-1a over the `Debug` rendering of the whole search outcome: plan,
/// per-table bank assignments, cost model output, and evaluation count.
fn search_digest() -> u64 {
    let model = synthetic_model(&SyntheticModelConfig {
        tables: 24,
        target_bytes: 400_000_000,
        seed: 0xD15C,
        ..Default::default()
    })
    .unwrap();
    let outcome = heuristic_search(
        &model,
        &MemoryConfig::u280(),
        Precision::F32,
        &HeuristicOptions::default(),
    )
    .unwrap();
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for b in format!("{outcome:?}").bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn fnv(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Digest of the traffic-adaptive pipeline: distill a profile from a fixed
/// counter snapshot (the same numbers both processes would read from
/// `lookup_stats()`), then run the traffic-weighted search and hash the
/// profile together with the full re-scored outcome.
fn traffic_digest() -> u64 {
    let model = synthetic_model(&SyntheticModelConfig {
        tables: 24,
        target_bytes: 400_000_000,
        seed: 0xD15C,
        ..Default::default()
    })
    .unwrap();
    // A fixed counter snapshot: skewed per-table hits and misses as the
    // runtime's hot-row cache counters would report them.
    let n = model.num_tables();
    let hits: Vec<u64> = (0..n).map(|i| 1_000 + (i as u64 * 37) % 500).collect();
    let misses: Vec<u64> = (0..n).map(|i| (i as u64 * i as u64 * 13) % 900).collect();
    let profile = TrafficProfile::from_lookup_counts(&hits, &misses);
    let outcome = heuristic_search_with_traffic(
        &model,
        &MemoryConfig::u280(),
        Precision::F32,
        &HeuristicOptions::default(),
        &profile,
    )
    .unwrap();
    fnv(format!("{profile:?}|{outcome:?}").bytes())
}

#[test]
fn traffic_profile_and_rescored_plan_are_bit_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        println!("DIGEST={:016x}", traffic_digest());
        return;
    }

    let exe = std::env::current_exe().unwrap();
    let run_child = |tag: &str| -> String {
        let output = Command::new(&exe)
            .args([
                "traffic_profile_and_rescored_plan_are_bit_identical_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .env(TAG_ENV, tag)
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "child process failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        let at = stdout
            .find("DIGEST=")
            .unwrap_or_else(|| panic!("no DIGEST marker in child output:\n{stdout}"));
        stdout[at + "DIGEST=".len()..][..16].to_string()
    };

    let first = run_child("b");
    let second = run_child("b-much-longer-tag-value-to-shift-the-environment-block");
    assert_eq!(first, second, "traffic-adaptive outcome differs between two fresh processes");
    assert_eq!(
        first,
        format!("{:016x}", traffic_digest()),
        "child digest differs from the parent's in-process digest"
    );
}

#[test]
fn heuristic_search_is_bit_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        // Child mode: emit the digest for the parent and stop.
        println!("DIGEST={:016x}", search_digest());
        return;
    }

    let exe = std::env::current_exe().unwrap();
    let run_child = |tag: &str| -> String {
        let output = Command::new(&exe)
            .args(["heuristic_search_is_bit_identical_across_processes", "--exact", "--nocapture"])
            .env(CHILD_ENV, "1")
            // Different env contents shift the process's initial memory
            // layout — a perturbation a deterministic search must shrug off.
            .env(TAG_ENV, tag)
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "child process failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        // `--nocapture` interleaves the digest with harness output, so
        // locate the marker anywhere rather than at a line start.
        let at = stdout
            .find("DIGEST=")
            .unwrap_or_else(|| panic!("no DIGEST marker in child output:\n{stdout}"));
        stdout[at + "DIGEST=".len()..][..16].to_string()
    };

    let first = run_child("a");
    let second = run_child("a-much-longer-tag-value-to-shift-the-environment-block");
    assert_eq!(first, second, "search outcome differs between two fresh processes");
    assert_eq!(
        first,
        format!("{:016x}", search_digest()),
        "child digest differs from the parent's in-process digest"
    );
}
