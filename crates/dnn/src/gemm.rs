//! GEMM / GEMV kernels.
//!
//! The accelerator's compute stages and the CPU baseline both reduce to
//! dense matrix–vector and matrix–matrix products. Three kernels are
//! provided: a naive triple loop (the correctness oracle), a cache-blocked
//! `f32` GEMM, and a packed kernel ([`PackedB`] + [`gemm_packed`]) whose B
//! operand is pre-transposed once so every inner product runs over two
//! contiguous slices — the kernel behind the batched inference fast path.
//!
//! All precision-generic kernels accumulate through one shared [`dot`]
//! routine (4 independent lanes, combined pairwise), so the single-item
//! GEMV path and the batched packed path produce **bit-identical** results
//! at every precision — the property `MicroRec::predict_batch` relies on.

use crate::error::DnnError;
use crate::fixed::FixedNum;
use crate::tensor::Matrix;

/// Block edge for the cache-blocked GEMM.
const BLOCK: usize = 64;

/// Below this many multiply–accumulates the blocked kernel's loop overhead
/// outweighs its cache wins and [`gemm_auto`] picks the naive loop.
const AUTO_NAIVE_MACS: usize = 32 * 32 * 32;

/// Inner product of two equal-length slices with 4 unrolled accumulator
/// lanes, combined pairwise (`(l0+l1)+(l2+l3)`), remainder appended last.
///
/// Every kernel in this module funnels through this routine (or its
/// weight-quantizing twin [`dot_quantizing`], which has the identical lane
/// structure), which is what makes batched and single-item inference
/// bit-identical: same element products, same summation order.
///
/// At `T = f32` on x86-64 machines with AVX2 the reduction runs through a
/// vectorized kernel ([`dot_f32_avx2`]) that keeps the exact same 4-lane
/// accumulation order, so the dispatch is invisible in the results — the
/// test `dispatched_dot_matches_scalar_reference` pins this down bit for
/// bit.
#[inline]
pub fn dot<T: FixedNum>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if let (Some(af), Some(bf)) = (as_f32_slice(a), as_f32_slice(b)) {
        if avx2_available() {
            // SAFETY: the feature check above guarantees AVX2.
            let sum = unsafe { dot_f32_avx2(af, bf) };
            return from_f32_value::<T>(sum);
        }
    }
    dot_scalar(a, b)
}

/// The portable 4-lane reference reduction behind [`dot`].
#[inline]
pub fn dot_scalar<T: FixedNum>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [T::ZERO; 4];
    let quads = a.len() / 4;
    for i in 0..quads {
        let j = i * 4;
        lanes[0] = lanes[0] + a[j] * b[j];
        lanes[1] = lanes[1] + a[j + 1] * b[j + 1];
        lanes[2] = lanes[2] + a[j + 2] * b[j + 2];
        lanes[3] = lanes[3] + a[j + 3] * b[j + 3];
    }
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for j in quads * 4..a.len() {
        sum = sum + a[j] * b[j];
    }
    sum
}

/// Reinterprets a `FixedNum` slice as `f32` when `T` *is* `f32`.
#[cfg(target_arch = "x86_64")]
#[inline]
fn as_f32_slice<T: FixedNum>(s: &[T]) -> Option<&[f32]> {
    if std::any::TypeId::of::<T>() == std::any::TypeId::of::<f32>() {
        // SAFETY: T is exactly f32 (same layout, same lifetime).
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<f32>(), s.len()) })
    } else {
        None
    }
}

/// Returns an `f32` result as `T`, where `T` is statically known to be
/// `f32` (only reachable behind the [`as_f32_slice`] check).
#[cfg(target_arch = "x86_64")]
#[inline]
fn from_f32_value<T: FixedNum>(v: f32) -> T {
    debug_assert_eq!(std::any::TypeId::of::<T>(), std::any::TypeId::of::<f32>());
    // SAFETY: T == f32, checked by the caller's TypeId guard.
    unsafe { std::mem::transmute_copy::<f32, T>(&v) }
}

/// Caches the AVX2 CPUID probe so the hot path pays one atomic load.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 no, 2 yes
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// AVX2 `f32` dot product with the scalar kernel's exact summation order.
///
/// One 4-wide accumulator (`__m128`) plays the role of the scalar 4-lane
/// array: each 8-float chunk is multiplied and added in two sequential
/// 128-bit halves (low quad then high quad), and a trailing 4-float quad
/// gets one more mul/add — every operation is a single-rounded IEEE mul or
/// add on the same values in the same order as [`dot_scalar`], and no FMA
/// contraction is used, so the result is bit-identical. The lanes combine
/// pairwise (`(l0+l1)+(l2+l3)`) and the scalar tail appends last, exactly
/// like the scalar kernel.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and `a.len() == b.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_loadu_ps, _mm_add_ps, _mm_loadu_ps,
        _mm_mul_ps, _mm_setzero_ps, _mm_storeu_ps,
    };
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = _mm_setzero_ps();
    let mut j = 0usize;
    while j + 8 <= n {
        // SAFETY: `j + 8 <= n` bounds both unaligned 8-float loads.
        let av = unsafe { _mm256_loadu_ps(a.as_ptr().add(j)) };
        // SAFETY: as above; `b.len() == a.len()` per the fn contract.
        let bv = unsafe { _mm256_loadu_ps(b.as_ptr().add(j)) };
        // Low quad first, then high quad — the order the scalar loop
        // feeds its lanes.
        let lo = _mm_mul_ps(_mm256_castps256_ps128(av), _mm256_castps256_ps128(bv));
        acc = _mm_add_ps(acc, lo);
        let hi = _mm_mul_ps(_mm256_extractf128_ps(av, 1), _mm256_extractf128_ps(bv, 1));
        acc = _mm_add_ps(acc, hi);
        j += 8;
    }
    if j + 4 <= n {
        // SAFETY: `j + 4 <= n` bounds both unaligned 4-float loads.
        let av = unsafe { _mm_loadu_ps(a.as_ptr().add(j)) };
        // SAFETY: as above; `b.len() == a.len()` per the fn contract.
        let bv = unsafe { _mm_loadu_ps(b.as_ptr().add(j)) };
        acc = _mm_add_ps(acc, _mm_mul_ps(av, bv));
        j += 4;
    }
    let mut lanes = [0.0f32; 4];
    // SAFETY: `lanes` is exactly 4 floats, the width of one 128-bit store.
    unsafe { _mm_storeu_ps(lanes.as_mut_ptr(), acc) };
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while j < n {
        // SAFETY: the loop condition keeps `j` in bounds for both slices.
        sum += unsafe { *a.get_unchecked(j) * *b.get_unchecked(j) };
        j += 1;
    }
    sum
}

/// [`dot`] with `f32` weights quantized element-wise on the fly.
///
/// `T::from_f32(w) * x` yields the same `T` value whether the weight was
/// converted here or pre-converted during packing, and the lane structure
/// matches [`dot`] exactly — so GEMV over master weights and the packed
/// kernel over pre-quantized weights agree bit for bit.
#[inline]
pub fn dot_quantizing<T: FixedNum>(w: &[f32], x: &[T]) -> T {
    debug_assert_eq!(w.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if let Some(xf) = as_f32_slice(x) {
        // At T = f32 the on-the-fly quantization is the identity, so this
        // is exactly [`dot`] and may take the same vector path.
        if avx2_available() {
            // SAFETY: the feature check above guarantees AVX2.
            let sum = unsafe { dot_f32_avx2(w, xf) };
            return from_f32_value::<T>(sum);
        }
    }
    let mut lanes = [T::ZERO; 4];
    let quads = w.len() / 4;
    for i in 0..quads {
        let j = i * 4;
        lanes[0] = lanes[0] + T::from_f32(w[j]) * x[j];
        lanes[1] = lanes[1] + T::from_f32(w[j + 1]) * x[j + 1];
        lanes[2] = lanes[2] + T::from_f32(w[j + 2]) * x[j + 2];
        lanes[3] = lanes[3] + T::from_f32(w[j + 3]) * x[j + 3];
    }
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for j in quads * 4..w.len() {
        sum = sum + T::from_f32(w[j]) * x[j];
    }
    sum
}

/// `y = W · x` for a row-major `W` (`out × in`), generic over precision.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `x` or `y` disagree with `W`'s
/// shape.
pub fn gemv<T: FixedNum>(weights: &Matrix, x: &[T], y: &mut [T]) -> Result<(), DnnError> {
    if x.len() != weights.cols() {
        return Err(DnnError::ShapeMismatch {
            context: "gemv input",
            expected: weights.cols(),
            actual: x.len(),
        });
    }
    if y.len() != weights.rows() {
        return Err(DnnError::ShapeMismatch {
            context: "gemv output",
            expected: weights.rows(),
            actual: y.len(),
        });
    }
    for (r, slot) in y.iter_mut().enumerate() {
        *slot = dot_quantizing(weights.row(r), x);
    }
    Ok(())
}

/// `C = A · B` with a naive loop over whole rows (reference kernel).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if inner dimensions disagree.
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Result<Matrix, DnnError> {
    if a.cols() != b.rows() {
        return Err(DnnError::ShapeMismatch {
            context: "gemm inner dimension",
            expected: a.cols(),
            actual: b.rows(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = vec![0.0f32; m * n];
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    for i in 0..m {
        let arow = &a_s[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &b_s[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
    Matrix::from_vec(m, n, c)
}

/// `C = A · B` with cache blocking — the kernel used by the measured CPU
/// path and the GEMM benches.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if inner dimensions disagree.
pub fn gemm_blocked(a: &Matrix, b: &Matrix) -> Result<Matrix, DnnError> {
    if a.cols() != b.rows() {
        return Err(DnnError::ShapeMismatch {
            context: "gemm inner dimension",
            expected: a.cols(),
            actual: b.rows(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = vec![0.0f32; m * n];
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    for i0 in (0..m).step_by(BLOCK) {
        for k0 in (0..k).step_by(BLOCK) {
            for j0 in (0..n).step_by(BLOCK) {
                let i_end = (i0 + BLOCK).min(m);
                let k_end = (k0 + BLOCK).min(k);
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    for kk in k0..k_end {
                        let aik = a_s[i * k + kk];
                        let brow = &b_s[kk * n + j0..kk * n + j_end];
                        let crow = &mut c[i * n + j0..i * n + j_end];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
    Matrix::from_vec(m, n, c)
}

/// `C = A · B`, choosing [`gemm_naive`] for small shapes (where the blocked
/// kernel's bookkeeping dominates) and [`gemm_blocked`] otherwise.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if inner dimensions disagree.
pub fn gemm_auto(a: &Matrix, b: &Matrix) -> Result<Matrix, DnnError> {
    if a.rows() * a.cols() * b.cols() <= AUTO_NAIVE_MACS {
        gemm_naive(a, b)
    } else {
        gemm_blocked(a, b)
    }
}

/// The B operand of [`gemm_packed`], pre-transposed to column-major and
/// pre-quantized to `T` so each output element is a contiguous-slice dot
/// product with no per-MAC conversion.
///
/// Packing costs one pass over B; amortize it by packing once per layer
/// and reusing across batches (what `PackedMlp` does).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB<T> {
    k: usize,
    n: usize,
    /// Column `j` of B stored contiguously at `data[j*k .. (j+1)*k]`.
    data: Vec<T>,
}

impl<T: FixedNum> PackedB<T> {
    /// Packs a row-major `B` (`k × n`).
    #[must_use]
    pub fn pack(b: &Matrix) -> Self {
        let (k, n) = (b.rows(), b.cols());
        let b_s = b.as_slice();
        let mut data = Vec::with_capacity(k * n);
        for j in 0..n {
            for kk in 0..k {
                data.push(T::from_f32(b_s[kk * n + j]));
            }
        }
        PackedB { k, n, data }
    }

    /// Packs from `Bᵀ` (`n × k`, row-major) — a straight copy, since a
    /// row-major transpose *is* the packed layout. Dense-layer weight
    /// matrices (`out × in`) are exactly this shape.
    #[must_use]
    pub fn from_transposed(bt: &Matrix) -> Self {
        let (n, k) = (bt.rows(), bt.cols());
        // lint: allow(transitive-hot-path-alloc) packing is a one-time quantizing copy, amortized across batches
        let data = bt.as_slice().iter().map(|&w| T::from_f32(w)).collect();
        PackedB { k, n, data }
    }

    /// Inner dimension `k` (rows of B).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension `n` (columns of B).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed column `j` as a contiguous slice of length `k`.
    #[must_use]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.k..(j + 1) * self.k]
    }
}

/// `C = A · B` over a pre-packed B, writing into caller-provided scratch
/// (`c`, length `m·n`) — no allocation on the hot path.
///
/// `a` is row-major `m × k`. Each `C[i][j]` is [`dot`] over two contiguous
/// slices, so results match [`gemv`] over the master weights bit for bit.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `a` or `c` disagree with the
/// packed shape.
pub fn gemm_packed<T: FixedNum>(
    a: &[T],
    m: usize,
    b: &PackedB<T>,
    c: &mut [T],
) -> Result<(), DnnError> {
    if a.len() != m * b.k {
        return Err(DnnError::ShapeMismatch {
            context: "gemm_packed input",
            expected: m * b.k,
            actual: a.len(),
        });
    }
    if c.len() != m * b.n {
        return Err(DnnError::ShapeMismatch {
            context: "gemm_packed output",
            expected: m * b.n,
            actual: c.len(),
        });
    }
    for i in 0..m {
        let arow = &a[i * b.k..(i + 1) * b.k];
        let crow = &mut c[i * b.n..(i + 1) * b.n];
        for (j, slot) in crow.iter_mut().enumerate() {
            *slot = dot(arow, b.col(j));
        }
    }
    Ok(())
}

/// Multiply–accumulate operation count of a GEMM (2·m·k·n, the convention
/// behind the paper's GOP/s numbers).
#[must_use]
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{Q16, Q32};

    fn det_matrix(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            // Small deterministic values in [-0.5, 0.5).
            let v = ((r * 31 + c * 17) as f32 * seed).sin();
            v * 0.5
        })
    }

    #[test]
    fn gemv_matches_manual_dot() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = [1.0f32, 0.5, -1.0];
        let mut y = [0.0f32; 2];
        gemv(&w, &x, &mut y).unwrap();
        assert_eq!(y, [1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn gemv_shape_errors() {
        let w = Matrix::zeros(2, 3);
        let mut y = [0.0f32; 2];
        assert!(gemv(&w, &[0.0; 4], &mut y).is_err());
        let mut y3 = [0.0f32; 3];
        assert!(gemv(&w, &[0.0; 3], &mut y3).is_err());
    }

    #[test]
    fn blocked_matches_naive() {
        let a = det_matrix(70, 65, 0.37);
        let b = det_matrix(65, 130, 0.73);
        let c1 = gemm_naive(&a, &b).unwrap();
        let c2 = gemm_blocked(&a, &b).unwrap();
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn auto_matches_naive_at_both_scales() {
        for (m, k, n) in [(4usize, 8usize, 4usize), (70, 65, 130)] {
            let a = det_matrix(m, k, 0.37);
            let b = det_matrix(k, n, 0.73);
            let c1 = gemm_naive(&a, &b).unwrap();
            let c2 = gemm_auto(&a, &b).unwrap();
            for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn packed_matches_gemv_bit_for_bit() {
        // The packed kernel and GEMV must agree *exactly*, not within a
        // tolerance: predict_batch's bit-identical guarantee rests on it.
        let w = det_matrix(33, 50, 0.19); // odd shapes exercise remainders
        let packed_f: PackedB<f32> = PackedB::from_transposed(&w);
        let packed_q16: PackedB<Q16> = PackedB::from_transposed(&w);
        let packed_q32: PackedB<Q32> = PackedB::from_transposed(&w);
        for batch in [1usize, 3, 8] {
            let x_f: Vec<f32> = (0..batch * 50).map(|i| ((i as f32) * 0.23).cos() * 0.4).collect();

            let mut c = vec![0.0f32; batch * 33];
            gemm_packed(&x_f, batch, &packed_f, &mut c).unwrap();
            for item in 0..batch {
                let mut y = vec![0.0f32; 33];
                gemv(&w, &x_f[item * 50..(item + 1) * 50], &mut y).unwrap();
                for (a, b) in c[item * 33..(item + 1) * 33].iter().zip(&y) {
                    assert_eq!(a.to_bits(), b.to_bits(), "f32 batch {batch}");
                }
            }

            let x_q: Vec<Q16> = x_f.iter().map(|&v| Q16::from_f32(v)).collect();
            let mut c = vec![Q16::ZERO; batch * 33];
            gemm_packed(&x_q, batch, &packed_q16, &mut c).unwrap();
            for item in 0..batch {
                let mut y = vec![Q16::ZERO; 33];
                gemv(&w, &x_q[item * 50..(item + 1) * 50], &mut y).unwrap();
                assert_eq!(&c[item * 33..(item + 1) * 33], &y[..], "Q16 batch {batch}");
            }

            let x_q: Vec<Q32> = x_f.iter().map(|&v| Q32::from_f32(v)).collect();
            let mut c = vec![Q32::ZERO; batch * 33];
            gemm_packed(&x_q, batch, &packed_q32, &mut c).unwrap();
            for item in 0..batch {
                let mut y = vec![Q32::ZERO; 33];
                gemv(&w, &x_q[item * 50..(item + 1) * 50], &mut y).unwrap();
                assert_eq!(&c[item * 33..(item + 1) * 33], &y[..], "Q32 batch {batch}");
            }
        }
    }

    #[test]
    fn dispatched_dot_matches_scalar_reference() {
        // The runtime-dispatched kernel (AVX2 where available) must agree
        // with the portable 4-lane reduction bit for bit at every length
        // class: empty, sub-quad, quad-multiples, 8-multiples, and tails.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 11, 15, 16, 31, 64, 127, 350] {
            let a: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.417).sin() * 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.713).cos() * 2.0).collect();
            let reference = dot_scalar(&a, &b);
            let dispatched = dot(&a, &b);
            assert_eq!(
                dispatched.to_bits(),
                reference.to_bits(),
                "n={n}: dispatched {dispatched} vs scalar {reference}"
            );
            let quantizing = dot_quantizing::<f32>(&a, &b);
            assert_eq!(quantizing.to_bits(), reference.to_bits(), "n={n} quantizing path");
        }
        // Fixed-point types must be untouched by the dispatch.
        let a: Vec<Q16> = (0..37).map(|i| Q16::from_f32((i as f32 * 0.1).sin())).collect();
        let b: Vec<Q16> = (0..37).map(|i| Q16::from_f32((i as f32 * 0.2).cos())).collect();
        assert_eq!(dot(&a, &b), dot_scalar(&a, &b));
    }

    #[test]
    fn pack_and_from_transposed_agree() {
        let b = det_matrix(20, 13, 0.41);
        let packed: PackedB<f32> = PackedB::pack(&b);
        let packed_t: PackedB<f32> = PackedB::from_transposed(&b.transposed());
        assert_eq!(packed, packed_t);
        assert_eq!(packed.k(), 20);
        assert_eq!(packed.n(), 13);
        assert_eq!(packed.col(5)[3], b.get(3, 5));
    }

    #[test]
    fn packed_shape_errors() {
        let b: PackedB<f32> = PackedB::pack(&Matrix::zeros(4, 3));
        let mut c = vec![0.0f32; 6];
        assert!(gemm_packed(&[0.0f32; 7], 2, &b, &mut c).is_err());
        let mut short = vec![0.0f32; 5];
        assert!(gemm_packed(&[0.0f32; 8], 2, &b, &mut short).is_err());
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm_naive(&a, &b).is_err());
        assert!(gemm_blocked(&a, &b).is_err());
        assert!(gemm_auto(&a, &b).is_err());
    }

    #[test]
    fn fixed_point_gemv_tracks_f32() {
        let w = det_matrix(16, 32, 0.11);
        let x_f: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.3).cos() * 0.5).collect();

        let mut y_f = vec![0.0f32; 16];
        gemv(&w, &x_f, &mut y_f).unwrap();

        let x_q: Vec<Q32> = x_f.iter().map(|&v| Q32::from_f32(v)).collect();
        let mut y_q = vec![Q32::ZERO; 16];
        gemv(&w, &x_q, &mut y_q).unwrap();
        for (f, q) in y_f.iter().zip(&y_q) {
            assert!((f - q.to_f32()).abs() < 1e-2, "Q32 {f} vs {}", q.to_f32());
        }

        let x_q: Vec<Q16> = x_f.iter().map(|&v| Q16::from_f32(v)).collect();
        let mut y_q = vec![Q16::ZERO; 16];
        gemv(&w, &x_q, &mut y_q).unwrap();
        for (f, q) in y_f.iter().zip(&y_q) {
            assert!((f - q.to_f32()).abs() < 0.3, "Q16 {f} vs {}", q.to_f32());
        }
    }

    #[test]
    fn flops_convention() {
        // The small production model's first layer: 352 x 1024.
        assert_eq!(gemm_flops(1, 352, 1024), 720_896);
    }
}
