//! Bounded fan-out / fan-in over SPSC rings, with an order-restoring
//! reorder buffer at the join.
//!
//! The software analogue of replicating a pipeline stage across N
//! parallel lanes: a single producer deals seq-numbered items round-robin
//! over N rings ([`FanOut`]), each lane consumes its own ring (so every
//! ring keeps the strict single-producer / single-consumer contract of
//! [`SpscRing`]), and the join side ([`FanIn`]) re-emits items in global
//! sequence order. Because dispatch is deterministic round-robin and each
//! ring is FIFO, the next-expected item is always at the head of a known
//! ring; the [`ReorderBuffer`] exists to *drain fast lanes early* — items
//! that arrive ahead of their turn are parked in pre-allocated slots,
//! freeing their ring slots so a fast lane is not backpressured by a slow
//! sibling.
//!
//! Two stages with different lane counts (P producers, C consumers) are
//! connected by a P×C ring mesh: producer lane `p` pushes item `q` to
//! ring `[p][q mod C]`, consumer lane `c` pops its rings following the
//! deterministic cycle `(c + k·C) mod P`. Both sides are expressed with
//! the same two primitives by handing them the cyclic ring *schedule*;
//! with P = C = 1 they degenerate to a single plain ring.
//!
//! Everything here is allocation-free at steady state (construction
//! allocates the schedules and the reorder slots once) and `unsafe`-free
//! like the rest of the crate.

use std::sync::Arc;

use crate::spsc::{SpscPushError, SpscRing};

/// An item that knows its position in the global submission order.
///
/// [`FanIn`] uses the sequence number to restore output order at the
/// join; [`FanOut`] does not need it (dispatch order *defines* the
/// sequence) but the two are documented together because the numbers
/// must agree: the k-th item pushed into a [`FanOut`] must report
/// `first_seq + k * stride` of the consuming [`FanIn`].
pub trait Sequenced {
    /// This item's global sequence number.
    fn seq(&self) -> u64;
}

impl Sequenced for u64 {
    fn seq(&self) -> u64 {
        *self
    }
}

/// Fixed-capacity holding pen for items that arrived ahead of their
/// turn. Slots are pre-allocated; insert and take are linear scans over
/// the (small) slot array, so the steady state never allocates.
#[derive(Debug)]
pub struct ReorderBuffer<T: Sequenced> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T: Sequenced> ReorderBuffer<T> {
    /// A buffer holding up to `capacity` out-of-order items (clamped to
    /// ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(capacity.max(1), || None);
        ReorderBuffer { slots, len: 0 }
    }

    /// Maximum number of parked items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently parked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every slot is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Parks `item` until its sequence number comes up.
    ///
    /// # Errors
    ///
    /// Hands the item back when the buffer is full.
    pub fn insert(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        for slot in &mut self.slots {
            if slot.is_none() {
                *slot = Some(item);
                self.len += 1;
                return Ok(());
            }
        }
        unreachable!("len < capacity implies an empty slot");
    }

    /// Removes and returns the parked item with sequence `seq`, if any.
    pub fn take(&mut self, seq: u64) -> Option<T> {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|item| item.seq() == seq) {
                self.len -= 1;
                return slot.take();
            }
        }
        None
    }
}

/// Single-producer round-robin dispatcher over N SPSC rings.
///
/// The k-th pushed item goes to `rings[schedule[k mod schedule.len()]]`;
/// with the identity schedule `[0, 1, …, N-1]` that is plain round-robin
/// over the lanes. The producer side of every ring belongs exclusively
/// to this `FanOut`, preserving the SPSC contract per ring.
#[derive(Debug)]
pub struct FanOut<T> {
    rings: Vec<Arc<SpscRing<T>>>,
    schedule: Vec<usize>,
    cursor: usize,
}

impl<T> FanOut<T> {
    /// A dispatcher over `rings` following the cyclic `schedule` of ring
    /// indices. An empty schedule defaults to the identity round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `rings` is empty or a schedule entry is out of range
    /// (construction-time misuse, never data-dependent).
    #[must_use]
    pub fn new(rings: Vec<Arc<SpscRing<T>>>, schedule: Vec<usize>) -> Self {
        assert!(!rings.is_empty(), "FanOut needs at least one ring");
        let schedule = if schedule.is_empty() { (0..rings.len()).collect() } else { schedule };
        assert!(
            schedule.iter().all(|&r| r < rings.len()),
            "FanOut schedule references a ring that does not exist"
        );
        FanOut { rings, schedule, cursor: 0 }
    }

    /// Number of lanes (rings) this dispatcher feeds.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.rings.len()
    }

    /// The ring the next push targets.
    fn target(&self) -> &SpscRing<T> {
        &self.rings[self.schedule[self.cursor]]
    }

    /// Whether the next push would block (target ring at capacity).
    #[must_use]
    pub fn would_block(&self) -> bool {
        let target = self.target();
        target.len() >= target.capacity()
    }

    /// Attempts to push without blocking; the cursor advances only on
    /// success, so a `Full` rejection retries the same lane (dispatch
    /// order is part of the ordering contract and never skips ahead).
    ///
    /// # Errors
    ///
    /// [`SpscPushError::Full`] or [`SpscPushError::Closed`], with the
    /// item riding back.
    pub fn try_push(&mut self, item: T) -> Result<(), SpscPushError<T>> {
        self.target().try_push(item)?;
        self.advance();
        Ok(())
    }

    /// Pushes, blocking while the target lane is full.
    ///
    /// # Errors
    ///
    /// Hands the item back if the target ring is closed.
    pub fn push_blocking(&mut self, item: T) -> Result<(), T> {
        self.target().push_blocking(item)?;
        self.advance();
        Ok(())
    }

    /// Closes every lane (idempotent; see [`SpscRing::close`]).
    pub fn close_all(&self) {
        for ring in &self.rings {
            ring.close();
        }
    }

    fn advance(&mut self) {
        self.cursor += 1;
        if self.cursor == self.schedule.len() {
            self.cursor = 0;
        }
    }
}

/// Single-consumer order-restoring join over N SPSC rings.
///
/// Expects item `first_seq + k * stride` to arrive on ring
/// `schedule[k mod schedule.len()]` (the mirror of the producer side's
/// round-robin dispatch). [`FanIn::pop`] emits items in exactly that
/// sequence order; while the expected lane is empty it eagerly drains
/// the other lanes into the [`ReorderBuffer`], so a fast lane's ring
/// never stays full just because a slow sibling holds the next turn.
#[derive(Debug)]
pub struct FanIn<T: Sequenced> {
    rings: Vec<Arc<SpscRing<T>>>,
    schedule: Vec<usize>,
    cursor: usize,
    reorder: ReorderBuffer<T>,
    next_seq: u64,
    stride: u64,
}

impl<T: Sequenced> FanIn<T> {
    /// A join over `rings` following the cyclic `schedule`, expecting
    /// sequence numbers `first_seq, first_seq + stride, …`. The reorder
    /// buffer holds up to `reorder_capacity` early items (clamped ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `rings` is empty, a schedule entry is out of range, or
    /// `stride` is 0 (construction-time misuse, never data-dependent).
    #[must_use]
    pub fn new(
        rings: Vec<Arc<SpscRing<T>>>,
        schedule: Vec<usize>,
        first_seq: u64,
        stride: u64,
        reorder_capacity: usize,
    ) -> Self {
        assert!(!rings.is_empty(), "FanIn needs at least one ring");
        assert!(stride > 0, "FanIn stride must be positive");
        let schedule = if schedule.is_empty() { (0..rings.len()).collect() } else { schedule };
        assert!(
            schedule.iter().all(|&r| r < rings.len()),
            "FanIn schedule references a ring that does not exist"
        );
        FanIn {
            rings,
            schedule,
            cursor: 0,
            reorder: ReorderBuffer::new(reorder_capacity),
            next_seq: first_seq,
            stride,
        }
    }

    /// Number of lanes (rings) this join collects from.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.rings.len()
    }

    /// The sequence number the next [`FanIn::pop`] will emit.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether the next item is already available (no blocking needed).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        !self.reorder.take_would_miss(self.next_seq) || !self.expected_ring().is_empty()
    }

    /// Items visible to the join right now: parked early arrivals plus
    /// whatever sits in the expected lane (including the next item).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.reorder.len() + self.expected_ring().len()
    }

    /// Whether the lane the next item is scheduled on has been closed
    /// (a blocked [`FanIn::pop`] will not wait forever; counters can
    /// tell a shutdown apart from a genuine stall).
    #[must_use]
    pub fn expected_closed(&self) -> bool {
        self.expected_ring().is_closed()
    }

    fn expected_ring(&self) -> &SpscRing<T> {
        &self.rings[self.schedule[self.cursor]]
    }

    /// Pops the next item in sequence order. Blocks while the expected
    /// lane is empty and open; returns `None` once the expected lane is
    /// closed and drained (the lane died or the pipeline shut down —
    /// order past the break cannot be restored, so parked later items
    /// are dropped with the join).
    pub fn pop(&mut self) -> Option<T> {
        if let Some(item) = self.reorder.take(self.next_seq) {
            return Some(self.emit(item));
        }
        loop {
            // The next item can only surface at the head of the expected
            // ring: dispatch was round-robin and each ring is FIFO.
            if let Some(item) = self.expected_ring().try_pop() {
                debug_assert_eq!(item.seq(), self.next_seq, "lane delivered out of schedule");
                return Some(self.emit(item));
            }
            // Expected lane empty: drain the other lanes into the
            // reorder buffer so their producers keep moving.
            self.drain_early();
            let ring = self.expected_ring();
            if ring.is_empty() {
                if ring.is_closed() {
                    // One final race check, mirroring SpscRing::pop_blocking.
                    if let Some(item) = ring.try_pop() {
                        return Some(self.emit(item));
                    }
                    return None;
                }
                // Park on the expected ring; it is the only place the
                // next item can appear.
                let item = ring.pop_blocking()?;
                debug_assert_eq!(item.seq(), self.next_seq, "lane delivered out of schedule");
                return Some(self.emit(item));
            }
        }
    }

    /// Moves early arrivals from non-expected lanes into the reorder
    /// buffer while there is space for them.
    fn drain_early(&mut self) {
        let expected = self.schedule[self.cursor];
        for (index, ring) in self.rings.iter().enumerate() {
            if index == expected {
                continue;
            }
            while !self.reorder.is_full() {
                match ring.try_pop() {
                    Some(item) => {
                        // Space was checked above, so insert cannot fail.
                        let _ = self.reorder.insert(item);
                    }
                    None => break,
                }
            }
            if self.reorder.is_full() {
                break;
            }
        }
    }

    fn emit(&mut self, item: T) -> T {
        self.cursor += 1;
        if self.cursor == self.schedule.len() {
            self.cursor = 0;
        }
        self.next_seq += self.stride;
        item
    }

    /// Closes every lane (idempotent; see [`SpscRing::close`]).
    pub fn close_all(&self) {
        for ring in &self.rings {
            ring.close();
        }
    }
}

impl<T: Sequenced> ReorderBuffer<T> {
    /// Whether `take(seq)` would find nothing (helper for
    /// [`FanIn::is_ready`] without consuming the item).
    fn take_would_miss(&self, seq: u64) -> bool {
        !self.slots.iter().any(|slot| slot.as_ref().is_some_and(|item| item.seq() == seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings(n: usize, depth: usize) -> Vec<Arc<SpscRing<u64>>> {
        (0..n).map(|_| Arc::new(SpscRing::new(depth))).collect()
    }

    #[test]
    fn reorder_buffer_parks_and_releases_by_seq() {
        let mut buf: ReorderBuffer<u64> = ReorderBuffer::new(3);
        assert!(buf.is_empty());
        buf.insert(7).unwrap();
        buf.insert(5).unwrap();
        buf.insert(9).unwrap();
        assert!(buf.is_full());
        assert_eq!(buf.insert(11).unwrap_err(), 11, "full buffer hands the item back");
        assert_eq!(buf.take(6), None);
        assert_eq!(buf.take(5), Some(5));
        assert_eq!(buf.take(5), None, "taken items leave the buffer");
        assert_eq!(buf.take(9), Some(9));
        assert_eq!(buf.take(7), Some(7));
        assert!(buf.is_empty());
    }

    #[test]
    fn fanout_round_robin_then_fanin_restores_order() {
        for lanes in [1usize, 2, 3, 5] {
            let shared = rings(lanes, 4);
            let mut out = FanOut::new(shared.clone(), Vec::new());
            let mut join = FanIn::new(shared, Vec::new(), 0, 1, 8);
            let mut emitted = Vec::new();
            let mut next = 0u64;
            // Interleave pushes and pops so the rings never overflow.
            while next < 64 || emitted.len() < 64 {
                while next < 64 && !out.would_block() {
                    out.try_push(next).unwrap();
                    next += 1;
                }
                if emitted.len() < 64 {
                    emitted.push(join.pop().unwrap());
                }
            }
            assert_eq!(emitted, (0..64).collect::<Vec<u64>>(), "{lanes} lanes");
        }
    }

    #[test]
    fn mesh_schedules_cross_lane_counts() {
        // 3 producers x 2 consumers: producer p pushes item q to mesh
        // ring [p][q % 2]; consumer c pops ring [(c + 2k) % 3][c].
        let (producers, consumers) = (3u64, 2u64);
        let mesh: Vec<Vec<Arc<SpscRing<u64>>>> =
            (0..producers).map(|_| rings(consumers as usize, 4)).collect();
        let total = 60u64;
        std::thread::scope(|scope| {
            for p in 0..producers {
                let row = mesh[p as usize].clone();
                scope.spawn(move || {
                    let schedule: Vec<usize> = (0..consumers)
                        .map(|k| ((p + k * producers) % consumers) as usize)
                        .collect();
                    let mut out = FanOut::new(row, schedule);
                    let mut q = p;
                    while q < total {
                        out.push_blocking(q).unwrap();
                        q += producers;
                    }
                    out.close_all();
                });
            }
            for c in 0..consumers {
                let column: Vec<Arc<SpscRing<u64>>> =
                    mesh.iter().map(|row| row[c as usize].clone()).collect();
                scope.spawn(move || {
                    let period = (producers / gcd(consumers, producers)) as usize;
                    let schedule: Vec<usize> = (0..period as u64)
                        .map(|k| ((c + k * consumers) % producers) as usize)
                        .collect();
                    let mut join = FanIn::new(column, schedule, c, consumers, 16);
                    let mut want = c;
                    while let Some(item) = join.pop() {
                        assert_eq!(item, want, "consumer {c} out of order");
                        want += consumers;
                    }
                    assert_eq!(want, total + c - (total + c) % consumers + c % consumers,);
                });
            }
        });

        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
    }

    #[test]
    fn fanin_drains_fast_lanes_into_the_reorder_buffer() {
        let shared = rings(2, 2);
        let mut out = FanOut::new(shared.clone(), Vec::new());
        let mut join = FanIn::new(shared.clone(), Vec::new(), 0, 1, 4);
        // Lane 1 runs ahead: items 1 and 3 arrive; 0 (lane 0) is absent.
        shared[1].try_push(1).unwrap();
        shared[1].try_push(3).unwrap();
        assert!(!join.is_ready());
        // A pop would block on lane 0; instead push 0 and pop everything.
        shared[0].try_push(0).unwrap();
        assert!(join.is_ready());
        assert_eq!(join.pop(), Some(0));
        assert_eq!(join.pop(), Some(1));
        // 2 hasn't arrived; 3 sits parked after the eager drain.
        shared[0].try_push(2).unwrap();
        assert_eq!(join.pop(), Some(2));
        assert_eq!(join.pop(), Some(3));
        drop(out.try_push(4)); // keep the producer side alive to lane 0
        out.close_all();
        assert_eq!(join.pop(), Some(4));
        assert_eq!(join.pop(), None, "closed and drained");
    }

    #[test]
    fn closed_expected_lane_ends_the_join() {
        let shared = rings(3, 2);
        let join_rings = shared.clone();
        let mut join = FanIn::new(join_rings, Vec::new(), 0, 1, 4);
        shared[1].try_push(1).unwrap(); // early arrival for a later turn
        shared[0].close(); // lane 0 dies before delivering item 0
        assert_eq!(join.pop(), None, "order past the dead lane cannot be restored");
    }

    #[test]
    fn fanout_cursor_does_not_advance_on_full() {
        let shared = rings(2, 1);
        let mut out = FanOut::new(shared.clone(), Vec::new());
        out.try_push(0).unwrap();
        out.try_push(1).unwrap();
        // Lane 0 (item 2's turn) is full; the rejection must not skip
        // the lane, or ordering would break.
        assert!(matches!(out.try_push(2), Err(SpscPushError::Full(2))));
        assert_eq!(shared[0].try_pop(), Some(0));
        out.try_push(2).unwrap();
        assert_eq!(shared[1].try_pop(), Some(1));
        assert_eq!(shared[0].try_pop(), Some(2), "item 2 landed on its scheduled lane");
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        for lanes in [2usize, 3] {
            let shared = rings(lanes, 4);
            let total = 20_000u64;
            std::thread::scope(|scope| {
                let producer_rings = shared.clone();
                scope.spawn(move || {
                    let mut out = FanOut::new(producer_rings, Vec::new());
                    for i in 0..total {
                        out.push_blocking(i).unwrap();
                    }
                    out.close_all();
                });
                let mut join = FanIn::new(shared.clone(), Vec::new(), 0, 1, 8);
                let mut want = 0u64;
                while let Some(item) = join.pop() {
                    assert_eq!(item, want);
                    want += 1;
                }
                assert_eq!(want, total, "{lanes} lanes");
            });
        }
    }
}
