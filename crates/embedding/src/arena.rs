//! Arena-backed embedding storage.
//!
//! An [`EmbeddingArena`] materializes a model's logical tables into one
//! contiguous, 64-byte-aligned buffer per memory channel, so a
//! round-combined batch gather walks sequential stride-indexed slices
//! instead of pointer-chasing per-table `Vec`s (and, for procedural
//! tables, instead of re-hashing every element on every read). Rows can
//! be stored in three formats:
//!
//! * [`RowFormat::F32`] — exact copies of the table values; reads are
//!   bit-identical to [`crate::EmbeddingTable::read_row`].
//! * [`RowFormat::F16`] — IEEE half precision, 2 bytes/element (2× fewer
//!   row bytes moved per gather).
//! * [`RowFormat::I8`] — symmetric 8-bit quantization with one `f32`
//!   scale per row, ~1 byte/element (4× fewer row bytes).
//!
//! Decoding is fused with the copy into the destination buffer by the
//! runtime-dispatched kernels in `microrec-dnn` (`f16_decode_slice`,
//! `i8_dequant_slice`), which are bit-identical to their scalar
//! references. Alignment is achieved without `unsafe` by over-allocating
//! each channel buffer and skipping a computed element pad; table bases
//! are then kept on 64-byte boundaries by construction.

use crate::error::EmbeddingError;
use crate::table::EmbeddingTable;
use microrec_dnn::{f16_decode_slice, f16_encode_slice, i8_dequant_slice, i8_quant_slice};

/// Bytes of alignment for channel buffers and table bases.
const ALIGN: usize = 64;

/// How arena rows are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowFormat {
    /// Exact `f32` values (bit-identical to the source tables).
    F32,
    /// IEEE 754 binary16, 2 bytes per element.
    F16,
    /// 8-bit symmetric quantization with a per-row `f32` scale.
    I8,
}

impl RowFormat {
    /// Bytes per stored element (excluding the `i8` per-row scale).
    #[must_use]
    pub fn bytes_per_elem(self) -> usize {
        match self {
            RowFormat::F32 => 4,
            RowFormat::F16 => 2,
            RowFormat::I8 => 1,
        }
    }

    /// Stable lowercase name (used in bench/report records).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RowFormat::F32 => "f32",
            RowFormat::F16 => "f16",
            RowFormat::I8 => "i8",
        }
    }
}

impl std::fmt::Display for RowFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One channel's backing store in the arena's row format.
#[derive(Debug, Clone)]
enum ChannelBuf {
    F32(Vec<f32>),
    F16(Vec<u16>),
    I8(Vec<i8>),
}

impl ChannelBuf {
    fn len(&self) -> usize {
        match self {
            ChannelBuf::F32(v) => v.len(),
            ChannelBuf::F16(v) => v.len(),
            ChannelBuf::I8(v) => v.len(),
        }
    }

    /// Address of element `idx`, for alignment accounting.
    fn addr_of(&self, idx: usize) -> usize {
        match self {
            ChannelBuf::F32(v) => v.as_ptr() as usize + idx * 4,
            ChannelBuf::F16(v) => v.as_ptr() as usize + idx * 2,
            ChannelBuf::I8(v) => v.as_ptr() as usize + idx,
        }
    }

    /// Appends `len` encoded elements starting at `start` in `src`. Both
    /// buffers come from the same arena format by construction; a
    /// mismatched pair appends nothing (debug-asserted).
    fn extend_from_range(&mut self, src: &ChannelBuf, start: usize, len: usize) {
        match (self, src) {
            (ChannelBuf::F32(d), ChannelBuf::F32(s)) => d.extend_from_slice(&s[start..start + len]),
            (ChannelBuf::F16(d), ChannelBuf::F16(s)) => d.extend_from_slice(&s[start..start + len]),
            (ChannelBuf::I8(d), ChannelBuf::I8(s)) => d.extend_from_slice(&s[start..start + len]),
            _ => debug_assert!(false, "channel format mismatch"),
        }
    }
}

/// Where one logical table lives inside the arena.
#[derive(Debug, Clone, Copy)]
struct TableLoc {
    channel: usize,
    /// Element offset of row 0 within the channel buffer.
    base: usize,
    rows: u64,
    dim: usize,
    /// Index of this table's first per-row scale (I8 only).
    scale_base: usize,
}

/// Contiguous, aligned, optionally quantized storage for a model's
/// logical embedding tables.
///
/// # Examples
///
/// ```
/// use microrec_embedding::{EmbeddingArena, EmbeddingTable, RowFormat, TableSpec};
///
/// let tables = vec![
///     EmbeddingTable::procedural(TableSpec::new("a", 100, 8), 1),
///     EmbeddingTable::procedural(TableSpec::new("b", 50, 8), 2),
/// ];
/// let arena = EmbeddingArena::build(&tables, RowFormat::F32, &[0, 0], u64::MAX)?;
/// let mut row = [0.0f32; 8];
/// arena.read_row_into(1, 7, &mut row)?;
/// let mut expect = [0.0f32; 8];
/// tables[1].read_row(7, &mut expect)?;
/// assert_eq!(row, expect); // F32 arena reads are bit-identical
/// # Ok::<(), microrec_embedding::EmbeddingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingArena {
    format: RowFormat,
    channels: Vec<ChannelBuf>,
    tables: Vec<TableLoc>,
    names: Vec<String>,
    /// Per-row dequantization scales (I8 format only, else empty).
    scales: Vec<f32>,
    feature_len: usize,
    total_bytes: u64,
    /// Layout generation: 0 for a freshly built arena, bumped by
    /// [`EmbeddingArena::rebuild_with_channels`] during online re-sharding.
    generation: u64,
}

/// Rounds `n` elements up so the next table base lands on a 64-byte
/// boundary (relative to an aligned origin).
fn align_up(n: usize, elem_bytes: usize) -> usize {
    let step = ALIGN / elem_bytes;
    n.div_ceil(step) * step
}

impl EmbeddingArena {
    /// Materializes `tables` into channel arenas. `channel_of[i]` assigns
    /// logical table `i` to a memory channel (use all zeros for a single
    /// arena). Fails if the encoded arena would exceed `limit_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::BufferSizeMismatch`] if `channel_of` does
    /// not have one entry per table, or
    /// [`EmbeddingError::TooLargeToMaterialize`] over `limit_bytes`.
    pub fn build(
        tables: &[EmbeddingTable],
        format: RowFormat,
        channel_of: &[usize],
        limit_bytes: u64,
    ) -> Result<Self, EmbeddingError> {
        if channel_of.len() != tables.len() {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: tables.len(),
                actual: channel_of.len(),
            });
        }
        let num_channels = channel_of.iter().map(|&c| c + 1).max().unwrap_or(1);
        let elem_bytes = format.bytes_per_elem();

        // Size each channel (element counts include inter-table padding).
        let mut channel_elems = vec![0usize; num_channels];
        let mut total_rows = 0u64;
        for (table, &ch) in tables.iter().zip(channel_of) {
            let elems = (table.rows() as usize) * table.dim() as usize;
            channel_elems[ch] = align_up(channel_elems[ch] + elems, elem_bytes);
            total_rows += table.rows();
        }
        let scale_bytes = if format == RowFormat::I8 { total_rows.saturating_mul(4) } else { 0 };
        let total_bytes = channel_elems
            .iter()
            .map(|&e| (e * elem_bytes) as u64)
            .sum::<u64>()
            .saturating_add(scale_bytes);
        if total_bytes > limit_bytes {
            return Err(EmbeddingError::TooLargeToMaterialize {
                table: "<arena>".into(),
                bytes: total_bytes,
                limit: limit_bytes,
            });
        }

        // Allocate each channel with slack for the alignment pad; capacity
        // is reserved up front so the data pointer (and thus the measured
        // pad) stays valid while the buffer grows within it.
        let slack = ALIGN / elem_bytes;
        let mut channels: Vec<ChannelBuf> = channel_elems
            .iter()
            .map(|&elems| match format {
                RowFormat::F32 => ChannelBuf::F32(Vec::with_capacity(elems + slack)),
                RowFormat::F16 => ChannelBuf::F16(Vec::with_capacity(elems + slack)),
                RowFormat::I8 => ChannelBuf::I8(Vec::with_capacity(elems + slack)),
            })
            .collect();
        let mut pads = vec![0usize; num_channels];
        for (buf, pad) in channels.iter_mut().zip(&mut pads) {
            let misalign = buf.addr_of(0) % ALIGN;
            let pad_bytes = (ALIGN - misalign) % ALIGN;
            debug_assert_eq!(pad_bytes % elem_bytes, 0);
            *pad = pad_bytes / elem_bytes;
            match buf {
                ChannelBuf::F32(v) => v.resize(*pad, 0.0),
                ChannelBuf::F16(v) => v.resize(*pad, 0),
                ChannelBuf::I8(v) => v.resize(*pad, 0),
            }
        }

        // Encode every table row-by-row into its channel.
        let mut locs = Vec::with_capacity(tables.len());
        let mut names = Vec::with_capacity(tables.len());
        let mut scales = Vec::new();
        if format == RowFormat::I8 {
            scales.reserve(total_rows as usize);
        }
        let max_dim = tables.iter().map(|t| t.dim() as usize).max().unwrap_or(0);
        let mut tmp = vec![0.0f32; max_dim];
        for (table, &ch) in tables.iter().zip(channel_of) {
            let dim = table.dim() as usize;
            let buf = &mut channels[ch];
            let base = buf.len() - pads[ch]; // aligned-origin-relative
            let scale_base = scales.len();
            for row in 0..table.rows() {
                table.read_row(row, &mut tmp[..dim])?;
                match buf {
                    ChannelBuf::F32(v) => v.extend_from_slice(&tmp[..dim]),
                    ChannelBuf::F16(v) => {
                        let start = v.len();
                        v.resize(start + dim, 0);
                        f16_encode_slice(&tmp[..dim], &mut v[start..]);
                    }
                    ChannelBuf::I8(v) => {
                        let start = v.len();
                        v.resize(start + dim, 0);
                        scales.push(i8_quant_slice(&tmp[..dim], &mut v[start..]));
                    }
                }
            }
            // Pad so the next table base stays 64-byte aligned.
            let padded = align_up(buf.len() - pads[ch], elem_bytes) + pads[ch];
            match buf {
                ChannelBuf::F32(v) => v.resize(padded, 0.0),
                ChannelBuf::F16(v) => v.resize(padded, 0),
                ChannelBuf::I8(v) => v.resize(padded, 0),
            }
            locs.push(TableLoc {
                channel: ch,
                base: base + pads[ch],
                rows: table.rows(),
                dim,
                scale_base,
            });
            names.push(table.name().to_string());
        }

        let feature_len = tables.iter().map(|t| t.dim() as usize).sum();
        Ok(EmbeddingArena {
            format,
            channels,
            tables: locs,
            names,
            scales,
            feature_len,
            total_bytes,
            generation: 0,
        })
    }

    /// Re-materializes this arena under a new channel assignment without
    /// touching the source tables: every table's already-encoded bytes are
    /// relocated verbatim (per-row `i8` scales shared untouched), so each
    /// row of the new arena decodes bit-identically to the old one — the
    /// invariant the online re-sharding swap depends on. The new arena is
    /// tagged with `generation`.
    ///
    /// Relocation is a raw copy, not a decode/re-encode round trip: it
    /// costs one memcpy per table and cannot drift quantized values.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::BufferSizeMismatch`] if `channel_of` does
    /// not have one entry per table.
    pub fn rebuild_with_channels(
        &self,
        channel_of: &[usize],
        generation: u64,
    ) -> Result<Self, EmbeddingError> {
        if channel_of.len() != self.tables.len() {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: self.tables.len(),
                actual: channel_of.len(),
            });
        }
        let num_channels = channel_of.iter().map(|&c| c + 1).max().unwrap_or(1);
        let elem_bytes = self.format.bytes_per_elem();

        let mut channel_elems = vec![0usize; num_channels];
        for (loc, &ch) in self.tables.iter().zip(channel_of) {
            let elems = loc.rows as usize * loc.dim;
            channel_elems[ch] = align_up(channel_elems[ch] + elems, elem_bytes);
        }
        let scale_bytes = (self.scales.len() as u64) * 4;
        let total_bytes = channel_elems
            .iter()
            .map(|&e| (e * elem_bytes) as u64)
            .sum::<u64>()
            .saturating_add(scale_bytes);

        let slack = ALIGN / elem_bytes;
        let mut channels: Vec<ChannelBuf> = channel_elems
            .iter()
            .map(|&elems| match self.format {
                RowFormat::F32 => ChannelBuf::F32(Vec::with_capacity(elems + slack)),
                RowFormat::F16 => ChannelBuf::F16(Vec::with_capacity(elems + slack)),
                RowFormat::I8 => ChannelBuf::I8(Vec::with_capacity(elems + slack)),
            })
            .collect();
        let mut pads = vec![0usize; num_channels];
        for (buf, pad) in channels.iter_mut().zip(&mut pads) {
            let misalign = buf.addr_of(0) % ALIGN;
            let pad_bytes = (ALIGN - misalign) % ALIGN;
            debug_assert_eq!(pad_bytes % elem_bytes, 0);
            *pad = pad_bytes / elem_bytes;
            match buf {
                ChannelBuf::F32(v) => v.resize(*pad, 0.0),
                ChannelBuf::F16(v) => v.resize(*pad, 0),
                ChannelBuf::I8(v) => v.resize(*pad, 0),
            }
        }

        let mut locs = Vec::with_capacity(self.tables.len());
        for (loc, &ch) in self.tables.iter().zip(channel_of) {
            let elems = loc.rows as usize * loc.dim;
            let src = &self.channels[loc.channel];
            let buf = &mut channels[ch];
            let base = buf.len() - pads[ch];
            buf.extend_from_range(src, loc.base, elems);
            let padded = align_up(buf.len() - pads[ch], elem_bytes) + pads[ch];
            match buf {
                ChannelBuf::F32(v) => v.resize(padded, 0.0),
                ChannelBuf::F16(v) => v.resize(padded, 0),
                ChannelBuf::I8(v) => v.resize(padded, 0),
            }
            locs.push(TableLoc {
                channel: ch,
                base: base + pads[ch],
                rows: loc.rows,
                dim: loc.dim,
                scale_base: loc.scale_base,
            });
        }

        Ok(EmbeddingArena {
            format: self.format,
            channels,
            tables: locs,
            names: self.names.clone(),
            scales: self.scales.clone(),
            feature_len: self.feature_len,
            total_bytes,
            generation,
        })
    }

    /// The layout generation this arena belongs to (0 = as built).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The row storage format.
    #[must_use]
    pub fn format(&self) -> RowFormat {
        self.format
    }

    /// Number of logical tables stored.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Concatenated feature length (Σ dims) for one lookup round.
    #[must_use]
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// Encoded size of the arena in bytes (rows + `i8` scales + padding).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Vector length of table `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    #[must_use]
    pub fn dim(&self, table: usize) -> usize {
        self.tables[table].dim
    }

    /// Bytes one row read moves from memory in this format (row elements
    /// plus the per-row scale for `i8`).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    #[must_use]
    pub fn source_row_bytes(&self, table: usize) -> usize {
        let loc = &self.tables[table];
        loc.dim * self.format.bytes_per_elem() + if self.format == RowFormat::I8 { 4 } else { 0 }
    }

    /// Whether this arena stores exactly the shapes of `tables` (used to
    /// validate a shared arena against an engine's catalog).
    #[must_use]
    pub fn matches(&self, tables: &[EmbeddingTable]) -> bool {
        self.tables.len() == tables.len()
            && self
                .tables
                .iter()
                .zip(tables)
                .all(|(loc, t)| loc.rows == t.rows() && loc.dim == t.dim() as usize)
    }

    /// Whether every table base sits on a 64-byte boundary.
    #[must_use]
    pub fn is_aligned(&self) -> bool {
        self.tables.iter().all(|loc| {
            let base_addr = self.channels[loc.channel].addr_of(loc.base);
            base_addr.is_multiple_of(ALIGN)
        })
    }

    /// Decodes row `row` of logical table `table` into `out` (length must
    /// equal the table's dim). For [`RowFormat::F32`] this is bit-identical
    /// to [`EmbeddingTable::read_row`] on the source table.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::IndexOutOfRange`] or
    /// [`EmbeddingError::BufferSizeMismatch`].
    #[inline]
    pub fn read_row_into(
        &self,
        table: usize,
        row: u64,
        out: &mut [f32],
    ) -> Result<(), EmbeddingError> {
        let loc = match self.tables.get(table) {
            Some(loc) if row < loc.rows => *loc,
            _ => {
                return Err(EmbeddingError::IndexOutOfRange {
                    table: self.names.get(table).cloned().unwrap_or_default(),
                    index: row,
                    rows: self.tables.get(table).map_or(0, |l| l.rows),
                });
            }
        };
        if out.len() != loc.dim {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: loc.dim,
                actual: out.len(),
            });
        }
        let start = loc.base + row as usize * loc.dim;
        match &self.channels[loc.channel] {
            ChannelBuf::F32(v) => out.copy_from_slice(&v[start..start + loc.dim]),
            ChannelBuf::F16(v) => f16_decode_slice(&v[start..start + loc.dim], out),
            ChannelBuf::I8(v) => {
                let scale = self.scales[loc.scale_base + row as usize];
                i8_dequant_slice(&v[start..start + loc.dim], scale, out);
            }
        }
        Ok(())
    }

    /// Gathers the concatenated feature vector for one query (a row index
    /// per logical table) into `out`, in logical table order — the arena
    /// equivalent of [`crate::Catalog::gather`].
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::ArityMismatch`],
    /// [`EmbeddingError::BufferSizeMismatch`], or
    /// [`EmbeddingError::IndexOutOfRange`].
    #[inline]
    pub fn gather_into(&self, indices: &[u64], out: &mut [f32]) -> Result<(), EmbeddingError> {
        if indices.len() != self.tables.len() {
            return Err(EmbeddingError::ArityMismatch {
                expected: self.tables.len(),
                actual: indices.len(),
            });
        }
        if out.len() != self.feature_len {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: self.feature_len,
                actual: out.len(),
            });
        }
        let mut offset = 0usize;
        for (table, &row) in indices.iter().enumerate() {
            let dim = self.tables[table].dim;
            self.read_row_into(table, row, &mut out[offset..offset + dim])?;
            offset += dim;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TableSpec;

    fn tables() -> Vec<EmbeddingTable> {
        vec![
            EmbeddingTable::procedural(TableSpec::new("a", 40, 8), 1),
            EmbeddingTable::procedural(TableSpec::new("b", 25, 12), 2),
            EmbeddingTable::procedural(TableSpec::new("c", 60, 4), 3),
        ]
    }

    #[test]
    fn f32_arena_is_bit_identical_to_tables() {
        let tabs = tables();
        let arena = EmbeddingArena::build(&tabs, RowFormat::F32, &[0, 0, 0], u64::MAX).unwrap();
        for (t, table) in tabs.iter().enumerate() {
            let dim = table.dim() as usize;
            let mut got = vec![0.0f32; dim];
            let mut want = vec![0.0f32; dim];
            for row in 0..table.rows() {
                arena.read_row_into(t, row, &mut got).unwrap();
                table.read_row(row, &mut want).unwrap();
                assert_eq!(got, want, "table {t} row {row}");
            }
        }
    }

    #[test]
    fn gather_matches_catalog_order() {
        let tabs = tables();
        let arena = EmbeddingArena::build(&tabs, RowFormat::F32, &[0, 1, 0], u64::MAX).unwrap();
        assert_eq!(arena.feature_len(), 24);
        let indices = [7u64, 3, 59];
        let mut got = vec![0.0f32; 24];
        arena.gather_into(&indices, &mut got).unwrap();
        let mut want = Vec::new();
        for (t, &row) in indices.iter().enumerate() {
            want.extend(tabs[t].row(row).unwrap());
        }
        assert_eq!(got, want);
    }

    #[test]
    fn quantized_formats_bound_error() {
        let tabs = tables();
        for (format, tol) in [(RowFormat::F16, 1e-3f32), (RowFormat::I8, 1.0 / 127.0)] {
            let arena = EmbeddingArena::build(&tabs, format, &[0, 0, 0], u64::MAX).unwrap();
            let mut got = [0.0f32; 12];
            let mut want = [0.0f32; 12];
            for (t, table) in tabs.iter().enumerate() {
                let dim = table.dim() as usize;
                for row in [0, table.rows() - 1] {
                    arena.read_row_into(t, row, &mut got[..dim]).unwrap();
                    table.read_row(row, &mut want[..dim]).unwrap();
                    for (g, w) in got[..dim].iter().zip(&want[..dim]) {
                        // Values lie in [-1, 1): absolute tolerance works.
                        assert!((g - w).abs() <= tol, "{format}: {g} vs {w}");
                    }
                }
            }
        }
    }

    #[test]
    fn arena_bases_are_aligned() {
        for format in [RowFormat::F32, RowFormat::F16, RowFormat::I8] {
            let arena = EmbeddingArena::build(&tables(), format, &[0, 0, 1], u64::MAX).unwrap();
            assert!(arena.is_aligned(), "{format} arena misaligned");
        }
    }

    #[test]
    fn quantized_formats_shrink_storage() {
        let tabs = tables();
        let f32a = EmbeddingArena::build(&tabs, RowFormat::F32, &[0, 0, 0], u64::MAX).unwrap();
        let f16a = EmbeddingArena::build(&tabs, RowFormat::F16, &[0, 0, 0], u64::MAX).unwrap();
        let i8a = EmbeddingArena::build(&tabs, RowFormat::I8, &[0, 0, 0], u64::MAX).unwrap();
        assert!(f16a.total_bytes() < f32a.total_bytes());
        assert!(i8a.total_bytes() < f16a.total_bytes());
        assert_eq!(f32a.source_row_bytes(0), 32);
        assert_eq!(f16a.source_row_bytes(0), 16);
        assert_eq!(i8a.source_row_bytes(0), 12); // 8 elems + 4-byte scale
    }

    #[test]
    fn rebuild_relocates_bit_identically_in_every_format() {
        let tabs = tables();
        for format in [RowFormat::F32, RowFormat::F16, RowFormat::I8] {
            let old = EmbeddingArena::build(&tabs, format, &[0, 1, 0], u64::MAX).unwrap();
            // Rotate the channel assignment: table moves across channels.
            let new = old.rebuild_with_channels(&[1, 0, 0], 3).unwrap();
            assert_eq!(new.generation(), 3);
            assert_eq!(old.generation(), 0);
            assert!(new.is_aligned(), "{format} rebuilt arena misaligned");
            assert_eq!(new.feature_len(), old.feature_len());
            let mut got = vec![0.0f32; 12];
            let mut want = vec![0.0f32; 12];
            for (t, table) in tabs.iter().enumerate() {
                let dim = table.dim() as usize;
                for row in 0..table.rows() {
                    new.read_row_into(t, row, &mut got[..dim]).unwrap();
                    old.read_row_into(t, row, &mut want[..dim]).unwrap();
                    assert_eq!(
                        got[..dim].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        want[..dim].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "{format}: table {t} row {row} drifted across relocation"
                    );
                }
            }
        }
    }

    #[test]
    fn rebuild_to_fewer_channels_compacts() {
        let tabs = tables();
        let spread = EmbeddingArena::build(&tabs, RowFormat::F16, &[0, 1, 2], u64::MAX).unwrap();
        let packed = spread.rebuild_with_channels(&[0, 0, 0], 1).unwrap();
        let direct = EmbeddingArena::build(&tabs, RowFormat::F16, &[0, 0, 0], u64::MAX).unwrap();
        assert_eq!(packed.total_bytes(), direct.total_bytes());
        let mut a = vec![0.0f32; 8];
        let mut b = vec![0.0f32; 8];
        packed.read_row_into(0, 5, &mut a).unwrap();
        direct.read_row_into(0, 5, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rebuild_rejects_wrong_arity() {
        let arena = EmbeddingArena::build(&tables(), RowFormat::F32, &[0, 0, 0], u64::MAX).unwrap();
        assert!(matches!(
            arena.rebuild_with_channels(&[0, 0], 1),
            Err(EmbeddingError::BufferSizeMismatch { .. })
        ));
    }

    #[test]
    fn build_respects_limit() {
        assert!(matches!(
            EmbeddingArena::build(&tables(), RowFormat::F32, &[0, 0, 0], 64),
            Err(EmbeddingError::TooLargeToMaterialize { .. })
        ));
    }

    #[test]
    fn bad_reads_fail() {
        let arena = EmbeddingArena::build(&tables(), RowFormat::F32, &[0, 0, 0], u64::MAX).unwrap();
        let mut out = [0.0f32; 8];
        assert!(arena.read_row_into(0, 40, &mut out).is_err());
        assert!(arena.read_row_into(9, 0, &mut out).is_err());
        assert!(arena.read_row_into(1, 0, &mut out).is_err()); // dim 12 != 8
        assert!(arena.gather_into(&[0, 0], &mut [0.0; 24]).is_err());
        assert!(arena.gather_into(&[0, 0, 0], &mut [0.0; 23]).is_err());
        assert!(arena.matches(&tables()));
        assert!(!arena.matches(&tables()[..2]));
    }
}
